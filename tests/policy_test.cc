// Tests for the advance reservation policies (brute-force, aggregate,
// static, meeting-room, cafeteria, default lounge).
#include <gtest/gtest.h>

#include <memory>
#include <unordered_map>

#include "mobility/floorplan.h"
#include "mobility/manager.h"
#include "profiles/profile_server.h"
#include "reservation/lounge_policy.h"
#include "reservation/policy.h"

namespace imrm::reservation {
namespace {

using mobility::CellClass;
using mobility::CellMap;
using qos::kbps;
using sim::Duration;
using sim::SimTime;

/// Harness wiring a policy environment over the Figure 4 map.
class PolicyFixture : public ::testing::Test {
 protected:
  PolicyFixture()
      : map_(mobility::fig4_environment()), cells_(mobility::fig4_cells(map_)),
        manager_(map_, simulator_, Duration::minutes(3)), server_(net::ZoneId{0}) {
    for (const auto& cell : map_.cells()) directory_.add_cell(cell.id, kbps(1600));
  }

  PolicyEnv env() {
    PolicyEnv e;
    e.map = &map_;
    e.directory = &directory_;
    e.profiles = &server_;
    e.demand = [this](PortableId p) {
      const auto it = demand_.find(p);
      return it == demand_.end() ? 0.0 : it->second;
    };
    e.classify = [this](PortableId p) { return manager_.classify(p); };
    e.portables_in = [this](CellId c) { return manager_.portables_in(c); };
    return e;
  }

  PortableId spawn(CellId cell, qos::BitsPerSecond demand) {
    const PortableId p = manager_.add_portable(cell);
    demand_[p] = demand;
    return p;
  }

  sim::Simulator simulator_;
  CellMap map_;
  mobility::Fig4Cells cells_;
  mobility::MobilityManager manager_;
  profiles::ProfileServer server_;
  ReservationDirectory directory_;
  std::unordered_map<PortableId, qos::BitsPerSecond> demand_;
};

TEST_F(PolicyFixture, BruteForceReservesInAllNeighbors) {
  const PortableId p = spawn(cells_.d, kbps(16));
  BruteForcePolicy policy(env());
  policy.refresh(simulator_.now());
  // D's neighbors: C, A, E, F, G — all hold a reservation for p.
  for (CellId n : map_.cell(cells_.d).neighbors) {
    EXPECT_DOUBLE_EQ(directory_.at(n).reservation_for(p), kbps(16))
        << map_.cell(n).name;
  }
  EXPECT_DOUBLE_EQ(directory_.at(cells_.d).reservation_for(p), 0.0);
}

TEST_F(PolicyFixture, BruteForceSkipsStaticPortables) {
  const PortableId p = spawn(cells_.d, kbps(16));
  simulator_.run_until(SimTime::minutes(10));  // p turns static
  BruteForcePolicy policy(env());
  policy.refresh(simulator_.now());
  for (CellId n : map_.cell(cells_.d).neighbors) {
    EXPECT_DOUBLE_EQ(directory_.at(n).reservation_for(p), 0.0);
  }
}

TEST_F(PolicyFixture, BruteForceSkipsConnectionlessPortables) {
  const PortableId p = spawn(cells_.d, 0.0);
  BruteForcePolicy policy(env());
  policy.refresh(simulator_.now());
  for (CellId n : map_.cell(cells_.d).neighbors) {
    EXPECT_DOUBLE_EQ(directory_.at(n).reservation_for(p), 0.0);
  }
}

TEST_F(PolicyFixture, AggregateReservesProbabilityScaledBandwidth) {
  // Cell profile of D: 75% of departures go to A, 25% to E.
  for (int i = 0; i < 3; ++i) server_.record_handoff(PortableId{900}, cells_.c, cells_.d, cells_.a);
  server_.record_handoff(PortableId{900}, cells_.c, cells_.d, cells_.e);

  const PortableId p1 = spawn(cells_.d, kbps(16));
  const PortableId p2 = spawn(cells_.d, kbps(64));
  AggregatePolicy policy(env());
  policy.refresh(simulator_.now());

  // Each portable's bandwidth lands in A and E scaled by the probabilities.
  EXPECT_NEAR(directory_.at(cells_.a).reservation_for(p1), kbps(16) * 0.75, 1.0);
  EXPECT_NEAR(directory_.at(cells_.a).reservation_for(p2), kbps(64) * 0.75, 1.0);
  EXPECT_NEAR(directory_.at(cells_.e).reservation_for(p1), kbps(16) * 0.25, 1.0);
  EXPECT_NEAR(directory_.at(cells_.e).reserved_total(), kbps(80) * 0.25, 1.0);
  EXPECT_DOUBLE_EQ(directory_.at(cells_.f).reserved_total(), 0.0);
}

TEST_F(PolicyFixture, AggregateWithoutProfilesReservesNothing) {
  spawn(cells_.d, kbps(16));
  AggregatePolicy policy(env());
  policy.refresh(simulator_.now());
  for (const auto& cell : map_.cells()) {
    EXPECT_DOUBLE_EQ(directory_.at(cell.id).anonymous_reservation(), 0.0);
  }
}

TEST_F(PolicyFixture, StaticPolicyReservesGuardFraction) {
  StaticPolicy policy(env(), 0.15);
  policy.refresh(simulator_.now());
  for (const auto& cell : map_.cells()) {
    EXPECT_DOUBLE_EQ(directory_.at(cell.id).anonymous_reservation(), 0.15 * kbps(1600));
  }
}

TEST_F(PolicyFixture, NoReservationPolicyClearsEverything) {
  directory_.at(cells_.a).reserve_for(PortableId{5}, kbps(50));
  NoReservationPolicy policy(env());
  policy.refresh(simulator_.now());
  EXPECT_DOUBLE_EQ(directory_.at(cells_.a).reserved_total(), 0.0);
}

class MeetingRoomFixture : public PolicyFixture {
 protected:
  // Use office A as the "classroom" cell for simplicity: D is its corridor.
  MeetingRoomPolicy make_policy(std::size_t attendees) {
    profiles::BookingCalendar calendar;
    calendar.book({SimTime::minutes(60), SimTime::minutes(110), attendees});
    MeetingRoomPolicy::Params params;
    params.per_user_bandwidth = kbps(28);
    return MeetingRoomPolicy(env(), cells_.a, std::move(calendar), params);
  }
};

TEST_F(MeetingRoomFixture, ReservesForExpectedAttendeesBeforeStart) {
  auto policy = make_policy(10);
  policy.refresh(SimTime::minutes(40));  // before the window
  EXPECT_DOUBLE_EQ(directory_.at(cells_.a).anonymous_reservation(), 0.0);

  policy.refresh(SimTime::minutes(51));  // inside T_s - 10 min
  EXPECT_DOUBLE_EQ(directory_.at(cells_.a).anonymous_reservation(), 10 * kbps(28));
}

TEST_F(MeetingRoomFixture, ArrivalsShrinkTheReservation) {
  auto policy = make_policy(10);
  policy.refresh(SimTime::minutes(51));
  // 4 attendees arrive.
  for (int i = 0; i < 4; ++i) {
    mobility::HandoffEvent e;
    e.portable = PortableId{net::PortableId::underlying(10 + i)};
    e.from = cells_.d;
    e.to = cells_.a;
    policy.on_handoff(e);
  }
  policy.refresh(SimTime::minutes(55));
  EXPECT_DOUBLE_EQ(directory_.at(cells_.a).anonymous_reservation(), 6 * kbps(28));
  EXPECT_EQ(policy.arrived(), 4u);
}

TEST_F(MeetingRoomFixture, StartTimerReleasesUnusedReservation) {
  auto policy = make_policy(10);
  policy.refresh(SimTime::minutes(64));  // within the 5-min post-start timer
  EXPECT_GT(directory_.at(cells_.a).anonymous_reservation(), 0.0);
  policy.refresh(SimTime::minutes(66));  // timer expired
  EXPECT_DOUBLE_EQ(directory_.at(cells_.a).anonymous_reservation(), 0.0);
}

TEST_F(MeetingRoomFixture, ConclusionReservesInNeighbors) {
  auto policy = make_policy(10);
  // All 10 arrived during the inbound window.
  for (int i = 0; i < 10; ++i) {
    mobility::HandoffEvent e;
    e.portable = PortableId{net::PortableId::underlying(10 + i)};
    e.from = cells_.d;
    e.to = cells_.a;
    policy.on_handoff(e);
  }
  policy.refresh(SimTime::minutes(106));  // T_a - 5 min window open
  // A's only neighbor is D: the full outbound reservation lands there.
  EXPECT_DOUBLE_EQ(directory_.at(cells_.d).anonymous_reservation(), 10 * kbps(28));

  // 7 leave; the outbound reservation tracks N_m - N_left.
  for (int i = 0; i < 7; ++i) {
    mobility::HandoffEvent e;
    e.portable = PortableId{net::PortableId::underlying(10 + i)};
    e.from = cells_.a;
    e.to = cells_.d;
    policy.on_handoff(e);
  }
  policy.refresh(SimTime::minutes(112));
  EXPECT_DOUBLE_EQ(directory_.at(cells_.d).anonymous_reservation(), 3 * kbps(28));

  policy.refresh(SimTime::minutes(126));  // 15-min release timer expired
  EXPECT_DOUBLE_EQ(directory_.at(cells_.d).anonymous_reservation(), 0.0);
}

TEST_F(MeetingRoomFixture, CountersResetBetweenMeetings) {
  profiles::BookingCalendar calendar;
  calendar.book({SimTime::minutes(60), SimTime::minutes(70), 5});
  calendar.book({SimTime::minutes(180), SimTime::minutes(190), 8});
  MeetingRoomPolicy::Params params;
  params.per_user_bandwidth = kbps(28);
  MeetingRoomPolicy policy(env(), cells_.a, std::move(calendar), params);

  policy.refresh(SimTime::minutes(55));
  mobility::HandoffEvent e;
  e.portable = PortableId{11};
  e.from = cells_.d;
  e.to = cells_.a;
  policy.on_handoff(e);
  policy.refresh(SimTime::minutes(56));
  EXPECT_EQ(policy.arrived(), 1u);

  policy.refresh(SimTime::minutes(175));  // second meeting's window
  EXPECT_EQ(policy.arrived(), 0u);        // counters reset
  EXPECT_DOUBLE_EQ(directory_.at(cells_.a).anonymous_reservation(), 8 * kbps(28));
}

// ---- lounge policies ----------------------------------------------------

class LoungeFixture : public ::testing::Test {
 protected:
  LoungeFixture()
      : map_(mobility::campus_environment()), manager_(map_, simulator_, Duration::minutes(3)),
        server_(net::ZoneId{0}) {
    for (const auto& cell : map_.cells()) directory_.add_cell(cell.id, kbps(1600));
    cafeteria_ = *map_.find("cafeteria");
    lounge_ = *map_.find("lounge");
  }

  PolicyEnv env() {
    PolicyEnv e;
    e.map = &map_;
    e.directory = &directory_;
    e.profiles = &server_;
    e.demand = [](PortableId) { return kbps(28); };
    e.classify = [this](PortableId p) { return manager_.classify(p); };
    e.portables_in = [this](CellId c) { return manager_.portables_in(c); };
    return e;
  }

  void feed_outgoing(LoungePolicyBase& policy, CellId from, double count) {
    for (int i = 0; i < int(count); ++i) {
      mobility::HandoffEvent e;
      e.portable = PortableId{net::PortableId::underlying(500 + i)};
      e.from = from;
      e.to = map_.cell(from).neighbors.front();
      policy.on_handoff(e);
    }
  }

  sim::Simulator simulator_;
  CellMap map_;
  mobility::MobilityManager manager_;
  profiles::ProfileServer server_;
  ReservationDirectory directory_;
  CellId cafeteria_, lounge_;
};

TEST_F(LoungeFixture, CafeteriaPredictsLinearTrend) {
  CafeteriaPolicy policy(env(), cafeteria_, Duration::minutes(1), kbps(28));
  // Slots with 2, 4, 6 outgoing handoffs -> prediction 8 for the next slot.
  feed_outgoing(policy, cafeteria_, 2);
  policy.refresh(SimTime::minutes(1));
  feed_outgoing(policy, cafeteria_, 4);
  policy.refresh(SimTime::minutes(2));
  feed_outgoing(policy, cafeteria_, 6);
  policy.refresh(SimTime::minutes(3));

  double reserved = 0.0;
  for (CellId n : map_.cell(cafeteria_).neighbors) {
    reserved += directory_.at(n).anonymous_reservation();
  }
  EXPECT_NEAR(reserved, 8 * kbps(28), 1.0);
}

TEST_F(LoungeFixture, CafeteriaSelfReservesWithDefaultNeighbor) {
  // The campus cafeteria neighbors the default lounge, so it must also
  // reserve locally for its own predicted arrivals.
  ASSERT_TRUE([&] {
    for (CellId n : map_.cell(cafeteria_).neighbors) {
      if (map_.cell(n).cell_class == CellClass::kLounge) return true;
    }
    return false;
  }());
  CafeteriaPolicy policy(env(), cafeteria_, Duration::minutes(1), kbps(28));
  // 3 incoming per slot, constant.
  for (int slot = 1; slot <= 3; ++slot) {
    for (int i = 0; i < 3; ++i) {
      mobility::HandoffEvent e;
      e.portable = PortableId{net::PortableId::underlying(600 + i)};
      e.from = map_.cell(cafeteria_).neighbors.front();
      e.to = cafeteria_;
      policy.on_handoff(e);
    }
    policy.refresh(SimTime::minutes(double(slot)));
  }
  EXPECT_NEAR(directory_.at(cafeteria_).anonymous_reservation(), 3 * kbps(28), 1.0);
}

TEST_F(LoungeFixture, DefaultLoungeUsesOneStepMemory) {
  DefaultLoungePolicy policy(env(), lounge_, Duration::minutes(1), kbps(28));
  feed_outgoing(policy, lounge_, 5);
  policy.refresh(SimTime::minutes(1));
  double reserved = 0.0;
  for (CellId n : map_.cell(lounge_).neighbors) {
    reserved += directory_.at(n).anonymous_reservation();
  }
  EXPECT_NEAR(reserved, 5 * kbps(28), 1.0);

  // Next slot sees no handoffs: prediction falls to 0.
  policy.refresh(SimTime::minutes(2));
  reserved = 0.0;
  for (CellId n : map_.cell(lounge_).neighbors) {
    reserved += directory_.at(n).anonymous_reservation();
  }
  EXPECT_DOUBLE_EQ(reserved, 0.0);
}

TEST_F(LoungeFixture, DefaultLoungeAppliesProbabilisticBound) {
  ProbabilisticReservation::Config config;
  config.capacity_units = 40;
  // Short window: most connections stay put, so eq. 6 binds below the
  // physical capacity and eq. 7 yields a positive reservation.
  config.window = 0.01;
  config.p_qos = 0.01;
  config.handoff_prob = 0.7;
  ProbabilisticReservation prob(config, {{1, 0.2}});

  // The campus lounge neighbors the cafeteria (not a default cell) and a
  // corridor — also not default. Build a tiny map where the lounge has a
  // default neighbor to trigger the probabilistic path.
  CellMap map;
  const CellId l1 = map.add_cell(CellClass::kLounge, "l1");
  const CellId l2 = map.add_cell(CellClass::kLounge, "l2");
  map.connect(l1, l2);
  ReservationDirectory directory;
  directory.add_cell(l1, kbps(1600));
  directory.add_cell(l2, kbps(1600));
  mobility::MobilityManager manager(map, simulator_, Duration::minutes(3));
  for (int i = 0; i < 10; ++i) manager.add_portable(l2);  // neighbor load

  PolicyEnv e;
  e.map = &map;
  e.directory = &directory;
  e.profiles = &server_;
  e.demand = [](PortableId) { return kbps(28); };
  e.classify = [&manager](PortableId p) { return manager.classify(p); };
  e.portables_in = [&manager](CellId c) { return manager.portables_in(c); };

  DefaultLoungePolicy policy(std::move(e), l1, Duration::minutes(1), kbps(28),
                             std::move(prob));
  policy.refresh(SimTime::minutes(1));
  // The probabilistic bound reserves for potential arrivals from the loaded
  // default neighbor.
  EXPECT_GT(directory.at(l1).anonymous_reservation(), 0.0);
}

}  // namespace
}  // namespace imrm::reservation
