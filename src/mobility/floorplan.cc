#include "mobility/floorplan.h"

#include <cassert>

namespace imrm::mobility {

CellId CellMap::add_cell(CellClass cell_class, std::string name, ZoneId zone) {
  const CellId id{static_cast<CellId::underlying>(cells_.size())};
  Cell cell;
  cell.id = id;
  cell.cell_class = cell_class;
  cell.name = std::move(name);
  cell.zone = zone;
  cells_.push_back(std::move(cell));
  return id;
}

void CellMap::connect(CellId a, CellId b) {
  assert(a != b && "a cell cannot neighbor itself");
  Cell& ca = cell(a);
  Cell& cb = cell(b);
  if (!ca.is_neighbor(b)) ca.neighbors.push_back(b);
  if (!cb.is_neighbor(a)) cb.neighbors.push_back(a);
}

std::optional<CellId> CellMap::find(const std::string& name) const {
  for (const Cell& c : cells_) {
    if (c.name == name) return c.id;
  }
  return std::nullopt;
}

void CellMap::add_occupant(CellId office, PortableId portable) {
  Cell& c = cell(office);
  assert(c.cell_class == CellClass::kOffice);
  if (!c.is_occupant(portable)) c.occupants.push_back(portable);
}

std::vector<CellId> CellMap::cells_of_class(CellClass cls) const {
  std::vector<CellId> out;
  for (const Cell& c : cells_) {
    if (c.cell_class == cls) out.push_back(c.id);
  }
  return out;
}

bool CellMap::neighbor_relation_valid() const {
  for (const Cell& c : cells_) {
    for (CellId n : c.neighbors) {
      if (n == c.id) return false;
      if (n.value() >= cells_.size()) return false;
      if (!cell(n).is_neighbor(c.id)) return false;
    }
  }
  return true;
}

CellMap fig4_environment() {
  CellMap map;
  const CellId a = map.add_cell(CellClass::kOffice, "A");    // faculty office
  const CellId b = map.add_cell(CellClass::kOffice, "B");    // student office
  const CellId c = map.add_cell(CellClass::kCorridor, "C");
  const CellId d = map.add_cell(CellClass::kCorridor, "D");
  const CellId e = map.add_cell(CellClass::kCorridor, "E");
  const CellId f = map.add_cell(CellClass::kCorridor, "F");
  const CellId g = map.add_cell(CellClass::kCorridor, "G");
  map.connect(c, d);
  map.connect(d, a);
  map.connect(d, e);
  map.connect(d, f);
  map.connect(d, g);
  map.connect(e, b);
  assert(map.neighbor_relation_valid());
  return map;
}

Fig4Cells fig4_cells(const CellMap& map) {
  return Fig4Cells{*map.find("A"), *map.find("B"), *map.find("C"), *map.find("D"),
                   *map.find("E"), *map.find("F"), *map.find("G")};
}

CellMap campus_environment(const CampusConfig& config) {
  assert(config.offices >= 1 && config.corridor_segments >= 1);
  CellMap map;

  // Corridor backbone.
  std::vector<CellId> corridor;
  for (int i = 0; i < config.corridor_segments; ++i) {
    corridor.push_back(map.add_cell(CellClass::kCorridor, "corridor-" + std::to_string(i)));
    if (i > 0) map.connect(corridor[std::size_t(i) - 1], corridor[std::size_t(i)]);
  }

  // Offices hang off the corridor, round-robin.
  for (int i = 0; i < config.offices; ++i) {
    const CellId office = map.add_cell(CellClass::kOffice, "office-" + std::to_string(i));
    map.connect(office, corridor[std::size_t(i) % corridor.size()]);
  }

  if (config.with_meeting_room) {
    const CellId room = map.add_cell(CellClass::kMeetingRoom, "meeting-room");
    map.connect(room, corridor.front());
  }
  if (config.with_cafeteria) {
    const CellId caf = map.add_cell(CellClass::kCafeteria, "cafeteria");
    map.connect(caf, corridor.back());
  }
  if (config.with_default_lounge) {
    const CellId lounge = map.add_cell(CellClass::kLounge, "lounge");
    map.connect(lounge, corridor[corridor.size() / 2]);
    if (config.with_cafeteria) {
      // The cafeteria-with-default-neighbor case of Section 6.2.2.
      map.connect(lounge, *map.find("cafeteria"));
    }
  }
  assert(map.neighbor_relation_valid());
  return map;
}

CellMap building_environment(const BuildingConfig& config) {
  assert(config.floors >= 1);
  CellMap map;
  std::vector<CellId> stairwells;  // one per floor, linking to the next

  for (int f = 0; f < config.floors; ++f) {
    const std::string prefix = "f" + std::to_string(f) + "/";
    const ZoneId zone{static_cast<ZoneId::underlying>(f)};

    // Corridor backbone of the floor.
    std::vector<CellId> corridor;
    for (int i = 0; i < config.floor.corridor_segments; ++i) {
      corridor.push_back(map.add_cell(CellClass::kCorridor,
                                      prefix + "corridor-" + std::to_string(i), zone));
      if (i > 0) map.connect(corridor[std::size_t(i) - 1], corridor[std::size_t(i)]);
    }
    for (int i = 0; i < config.floor.offices; ++i) {
      const CellId office =
          map.add_cell(CellClass::kOffice, prefix + "office-" + std::to_string(i), zone);
      map.connect(office, corridor[std::size_t(i) % corridor.size()]);
    }
    if (config.floor.with_meeting_room) {
      const CellId room = map.add_cell(CellClass::kMeetingRoom, prefix + "meeting-room", zone);
      map.connect(room, corridor.front());
    }
    if (config.floor.with_cafeteria) {
      const CellId caf = map.add_cell(CellClass::kCafeteria, prefix + "cafeteria", zone);
      map.connect(caf, corridor.back());
    }
    if (config.floor.with_default_lounge) {
      const CellId lounge = map.add_cell(CellClass::kLounge, prefix + "lounge", zone);
      map.connect(lounge, corridor[corridor.size() / 2]);
    }

    // Stairwell: a corridor cell hanging off this floor's first segment,
    // connected to the previous floor's stairwell.
    const CellId stairs =
        map.add_cell(CellClass::kCorridor, prefix + "stairs", zone);
    map.connect(stairs, corridor.front());
    if (f > 0) map.connect(stairs, stairwells.back());
    stairwells.push_back(stairs);
  }
  assert(map.neighbor_relation_valid());
  return map;
}

}  // namespace imrm::mobility
