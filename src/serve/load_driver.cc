#include "serve/load_driver.h"

#include <array>
#include <chrono>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "serve/ring_transport.h"

namespace imrm::serve {

namespace {

template <class... Ts>
struct Overloaded : Ts... {
  using Ts::operator()...;
};
template <class... Ts>
Overloaded(Ts...) -> Overloaded<Ts...>;

[[noreturn]] void trace_error(const std::string& path, std::size_t line,
                              const std::string& what) {
  throw std::runtime_error(path + ":" + std::to_string(line) + ": " + what);
}

}  // namespace

std::vector<TraceEvent> parse_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace file '" + path + "'");
  std::vector<TraceEvent> events;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream fields(line);
    double at = 0.0;
    std::string kind;
    if (!(fields >> at)) continue;  // blank / comment-only line
    if (!(fields >> kind)) trace_error(path, lineno, "missing event kind");
    TraceEvent event;
    event.at_seconds = at;
    if (at < 0.0) trace_error(path, lineno, "negative timestamp");
    if (!events.empty() && at < events.back().at_seconds) {
      trace_error(path, lineno, "events not sorted by time");
    }
    bool wants_cell = false;
    if (kind == "admit") {
      event.kind = MsgType::kAdmit;
      wants_cell = true;
    } else if (kind == "teardown") {
      event.kind = MsgType::kTeardown;
    } else if (kind == "handoff") {
      event.kind = MsgType::kHandoff;
      wants_cell = true;
    } else if (kind == "probe") {
      event.kind = MsgType::kProbe;
    } else {
      trace_error(path, lineno, "unknown event kind '" + kind +
                                    "' (want admit|teardown|handoff|probe)");
    }
    if (event.kind != MsgType::kProbe) {
      if (!(fields >> event.portable)) {
        trace_error(path, lineno, "missing portable id");
      }
    }
    if (wants_cell && !(fields >> event.cell)) {
      trace_error(path, lineno, "missing cell for '" + kind + "'");
    }
    std::string extra;
    if (fields >> extra) {
      trace_error(path, lineno, "trailing token '" + extra + "'");
    }
    events.push_back(event);
  }
  return events;
}

LoadDriver::LoadDriver(const DriveConfig& config)
    : config_(config),
      cell_of_(config.portables, 0),
      admitted_(config.portables, false),
      seen_(config.portables, false) {
  if (config_.portables == 0) config_.portables = 1;
  if (config_.cells < 2) config_.cells = 2;
  cell_of_.resize(config_.portables);
  admitted_.resize(config_.portables, false);
  seen_.resize(config_.portables, false);
  for (std::uint32_t p = 0; p < config_.portables; ++p) {
    cell_of_[p] = p % config_.cells;
  }
  if (config_.metrics != nullptr) {
    h_latency_us_ =
        &config_.metrics->histogram("drive.latency_us", latency_histogram_spec());
    c_sent_ = &config_.metrics->counter("drive.sent");
    c_shed_ = &config_.metrics->counter("drive.shed");
  }
}

void LoadDriver::record_latency(double us) {
  if (h_latency_us_ != nullptr) h_latency_us_->record(std::max(0.0, us));
}

Request LoadDriver::next_request(sim::Rng& rng) {
  const auto p =
      std::uint32_t(rng.uniform_int(0, int(config_.portables) - 1));
  const std::array<double, 4> weights{config_.admit_weight, config_.teardown_weight,
                                      config_.handoff_weight, config_.probe_weight};
  std::size_t kind = rng.discrete(weights);
  // Keep the mix well-formed per portable: an admit for a portable the
  // driver believes holds a session becomes a teardown; a teardown/handoff
  // for a portable the service has never met becomes an admit.
  if (kind == 0 && admitted_[p]) kind = 1;
  if ((kind == 1 || kind == 2) && !seen_[p]) kind = 0;
  last_intent_ = Intent{};
  switch (kind) {
    case 0: {
      AdmitRequest req;
      req.portable = p;
      req.cell = cell_of_[p];
      req.uplink = rng.bernoulli(0.5);
      req.qos = config_.qos;
      seen_[p] = true;
      admitted_[p] = true;  // optimistic; rolled back if shed
      last_intent_ = Intent{1, p, 0, 0};
      return req;
    }
    case 1: {
      admitted_[p] = false;
      last_intent_ = Intent{2, p, 0, 0};
      return TeardownRequest{p};
    }
    case 2: {
      // Corridor-chain neighbor: one step left or right, clamped at ends.
      const std::uint32_t cur = cell_of_[p];
      std::uint32_t to;
      if (cur == 0) {
        to = 1;
      } else if (cur == config_.cells - 1) {
        to = cur - 1;
      } else {
        to = rng.bernoulli(0.5) ? cur + 1 : cur - 1;
      }
      cell_of_[p] = to;
      last_intent_ = Intent{3, p, cur, to};
      return HandoffRequest{p, to};
    }
    default:
      return ProbeRequest{};
  }
}

void LoadDriver::note_sent(std::uint64_t request_id) {
  if (last_intent_.kind != 0) inflight_.emplace(request_id, last_intent_);
  last_intent_ = Intent{};
}

void LoadDriver::account_reply(const ReplyFrame& frame, DriveStats& stats) {
  const bool executed = !std::holds_alternative<ShedReply>(frame.body) &&
                        !std::holds_alternative<ErrorReply>(frame.body);
  if (const auto it = inflight_.find(frame.request_id); it != inflight_.end()) {
    if (!executed) {
      // The service never ran this request: undo the optimistic belief
      // update unless a later request already moved the same state on.
      const Intent& intent = it->second;
      const std::uint32_t p = intent.portable;
      if (intent.kind == 1) {
        admitted_[p] = false;
      } else if (intent.kind == 2) {
        admitted_[p] = true;
      } else if (intent.kind == 3 && cell_of_[p] == intent.new_cell) {
        cell_of_[p] = intent.prev_cell;
      }
    }
    inflight_.erase(it);
  }
  std::visit(Overloaded{
                 [&](const AdmitReply& r) {
                   if (r.accepted) {
                     ++stats.accepted;
                   } else {
                     ++stats.rejected;
                   }
                 },
                 [&](const TeardownReply&) { ++stats.accepted; },
                 [&](const HandoffReply& r) {
                   if (r.completed) {
                     ++stats.accepted;
                   } else {
                     ++stats.rejected;
                   }
                 },
                 [&](const ProbeReply&) { ++stats.accepted; },
                 [&](const ShutdownReply&) { ++stats.accepted; },
                 [&](const ShedReply&) {
                   ++stats.shed;
                   if (c_shed_ != nullptr) c_shed_->add();
                 },
                 [&](const ErrorReply&) { ++stats.errors; },
             },
             frame.body);
}

namespace {

Request trace_to_request(const TraceEvent& event, const DriveConfig& config) {
  switch (event.kind) {
    case MsgType::kAdmit: {
      AdmitRequest req;
      req.portable = event.portable;
      req.cell = event.cell;
      req.qos = config.qos;
      return req;
    }
    case MsgType::kTeardown:
      return TeardownRequest{event.portable};
    case MsgType::kHandoff:
      return HandoffRequest{event.portable, event.cell};
    default:
      return ProbeRequest{};
  }
}

}  // namespace

DriveStats LoadDriver::run_virtual(sim::Simulator& simulator, RingTransport& transport,
                                   AdmissionService& service) {
  DriveStats stats;
  inflight_.clear();
  auto rng = std::make_shared<sim::Rng>(config_.seed);
  auto& client = transport.client();
  std::unordered_map<std::uint64_t, double> sent_at_us;
  std::uint64_t next_id = 1;
  const double t0_s = simulator.now().to_seconds();

  const auto now_us = [&simulator] { return simulator.now().to_seconds() * 1e6; };
  const auto drain = [&] {
    std::vector<std::uint8_t> bytes;
    while (client.next_reply(bytes, std::chrono::microseconds(0))) {
      try {
        const ReplyFrame frame = decode_reply(bytes);
        account_reply(frame, stats);
        if (const auto it = sent_at_us.find(frame.request_id);
            it != sent_at_us.end()) {
          record_latency(now_us() - it->second);
          sent_at_us.erase(it);
        }
      } catch (const CodecError&) {
        ++stats.errors;
      }
    }
  };
  const auto send_one = [&](const Request& request) {
    const std::uint64_t id = next_id++;
    note_sent(id);
    sent_at_us.emplace(id, now_us());
    ++stats.sent;
    if (c_sent_ != nullptr) c_sent_->add();
    client.send_request(encode_request(id, request));
    service.pump_virtual(transport.server());
    drain();
  };

  if (!config_.trace.empty()) {
    for (const TraceEvent& event : config_.trace) {
      simulator.at(sim::SimTime::seconds(t0_s + event.at_seconds),
                   [&, event] { send_one(trace_to_request(event, config_)); });
    }
  } else {
    const double t_end_s = t0_s + config_.duration_s;
    // Self-perpetuating Poisson arrival: each firing schedules the next gap
    // until the driven window closes. `fire` outlives every scheduled copy
    // because run() completes before this function returns.
    auto fire = std::make_shared<std::function<void()>>();
    *fire = [&, fire_ptr = fire.get()] {
      if (simulator.now().to_seconds() >= t_end_s) return;
      send_one(next_request(*rng));
      simulator.after(sim::Duration::seconds(rng->exponential_rate(config_.rate)),
                      [fire_ptr] { (*fire_ptr)(); });
    };
    simulator.after(sim::Duration::seconds(rng->exponential_rate(config_.rate)),
                    [fire_ptr = fire.get()] { (*fire_ptr)(); });
    simulator.run();
    drain();
    stats.unanswered = sent_at_us.size();
    stats.duration_s = simulator.now().to_seconds() - t0_s;
    return stats;
  }

  simulator.run();
  drain();
  stats.unanswered = sent_at_us.size();
  stats.duration_s = simulator.now().to_seconds() - t0_s;
  return stats;
}

DriveStats LoadDriver::run_wall(ClientTransport& client, double drain_wait_s) {
  using clock = std::chrono::steady_clock;
  DriveStats stats;
  inflight_.clear();
  sim::Rng rng(config_.seed);
  std::unordered_map<std::uint64_t, double> sent_at_us;
  std::uint64_t next_id = 1;
  const auto start = clock::now();
  const auto elapsed_us = [&start] {
    return std::chrono::duration<double, std::micro>(clock::now() - start).count();
  };

  const auto handle_replies = [&](std::chrono::microseconds wait) {
    std::vector<std::uint8_t> bytes;
    while (client.next_reply(bytes, wait)) {
      try {
        const ReplyFrame frame = decode_reply(bytes);
        account_reply(frame, stats);
        if (const auto it = sent_at_us.find(frame.request_id);
            it != sent_at_us.end()) {
          record_latency(elapsed_us() - it->second);
          sent_at_us.erase(it);
        }
      } catch (const CodecError&) {
        ++stats.errors;
      }
      wait = std::chrono::microseconds(0);
    }
  };
  const auto send_one = [&](const Request& request) {
    const std::uint64_t id = next_id++;
    note_sent(id);
    ++stats.sent;
    if (c_sent_ != nullptr) c_sent_->add();
    if (client.send_request(encode_request(id, request))) {
      sent_at_us.emplace(id, elapsed_us());
    } else {
      // Transport full or closed. Open loop: count it and keep the pace.
      ++stats.unanswered;
      inflight_.erase(id);
    }
  };

  const bool use_trace = !config_.trace.empty();
  std::size_t trace_index = 0;
  double next_at_us = use_trace ? config_.trace[0].at_seconds * 1e6
                                : rng.exponential_rate(config_.rate) * 1e6;
  while (true) {
    if (use_trace) {
      if (trace_index >= config_.trace.size()) break;
    } else if (next_at_us > config_.duration_s * 1e6) {
      break;
    }
    // Hold to the open-loop schedule, draining replies while we wait.
    while (elapsed_us() < next_at_us) {
      const double slack_us = next_at_us - elapsed_us();
      handle_replies(std::chrono::microseconds(
          std::int64_t(std::min(slack_us, 1000.0))));
    }
    if (use_trace) {
      send_one(trace_to_request(config_.trace[trace_index], config_));
      ++trace_index;
      if (trace_index < config_.trace.size()) {
        next_at_us = config_.trace[trace_index].at_seconds * 1e6;
      }
    } else {
      send_one(next_request(rng));
      next_at_us += rng.exponential_rate(config_.rate) * 1e6;
    }
    handle_replies(std::chrono::microseconds(0));
  }

  if (config_.shutdown_after) send_one(ShutdownRequest{});

  const auto drain_deadline =
      clock::now() + std::chrono::microseconds(std::int64_t(drain_wait_s * 1e6));
  while (!sent_at_us.empty() && clock::now() < drain_deadline) {
    handle_replies(std::chrono::microseconds(10000));
  }
  stats.unanswered += sent_at_us.size();
  stats.duration_s = elapsed_us() * 1e-6;
  client.close();
  return stats;
}

}  // namespace imrm::serve
