// Randomized stress campaigns over the full backbone environment: random
// opens, closes, handoffs and renegotiations, with per-step invariant
// checks. Failure injection included: wireless capacity collapses mid-run.
#include <gtest/gtest.h>

#include <random>

#include "core/network_environment.h"
#include "mobility/floorplan.h"

namespace imrm::core {
namespace {

using qos::kbps;

qos::QosRequest random_request(std::mt19937_64& rng) {
  std::uniform_real_distribution<double> lo(16.0, 128.0);
  std::uniform_real_distribution<double> factor(1.0, 6.0);
  qos::QosRequest r;
  const double b_min = lo(rng);
  r.bandwidth = {kbps(b_min), kbps(b_min * factor(rng))};
  r.delay_bound = 30.0;
  r.jitter_bound = 30.0;
  r.loss_bound = 0.1;
  r.traffic = {8000.0, 8000.0};
  return r;
}

class StressCampaign : public ::testing::TestWithParam<int> {
 protected:
  void check_invariants(const NetworkEnvironment& env) {
    const net::NetworkState& net = env.network();
    for (const auto& cell : env.map().cells()) {
      const auto& link = net.link(env.wireless_link(cell.id));
      // Reservations never go negative and guaranteed minima never exceed
      // what admission could have allowed.
      EXPECT_GE(link.advance_reserved(), -1e-6);
      EXPECT_LE(link.sum_b_min(), link.capacity() + 1e-6) << cell.name;
      // Every allocation sits within its connection's bounds and the link's
      // allocations are feasible.
      double allocated = 0.0;
      for (const auto& [id, share] : link.shares()) {
        EXPECT_GE(share.allocated, share.bounds.b_min - 1e-6);
        EXPECT_LE(share.allocated, share.bounds.b_max + 1e-6);
        allocated += share.allocated;
      }
      EXPECT_LE(allocated, link.capacity() + 1e-6) << cell.name;
    }
  }
};

TEST_P(StressCampaign, RandomOperationsPreserveInvariants) {
  std::mt19937_64 rng{std::uint64_t(GetParam())};
  sim::Simulator simulator;
  BackboneConfig config;
  NetworkEnvironment env(mobility::fig4_environment(), simulator, config);

  std::vector<PortableId> portables;
  std::vector<mobility::CellId> all_cells;
  for (const auto& cell : env.map().cells()) all_cells.push_back(cell.id);
  for (int i = 0; i < 12; ++i) {
    portables.push_back(
        env.add_portable(all_cells[std::size_t(rng() % all_cells.size())]));
  }

  std::size_t ops = 0;
  for (int step = 0; step < 300; ++step) {
    simulator.run_until(simulator.now() + sim::Duration::seconds(30));
    const PortableId p = portables[std::size_t(rng() % portables.size())];
    switch (rng() % 5) {
      case 0:
        if (!env.has_connection(p)) {
          env.open_connection(p, random_request(rng),
                              rng() % 2 ? Direction::kDownlink : Direction::kUplink);
          ++ops;
        }
        break;
      case 1:
        if (env.has_connection(p)) {
          env.close_connection(p);
          ++ops;
        }
        break;
      case 2: {  // handoff to a random neighbor
        const auto& cell = env.map().cell(env.mobility().portable(p).current_cell);
        const auto next = cell.neighbors[std::size_t(rng() % cell.neighbors.size())];
        env.handoff(p, next);
        ++ops;
        break;
      }
      case 3:
        if (env.has_connection(p)) {
          env.renegotiate(p, random_request(rng));
          ++ops;
        }
        break;
      case 4:
        env.adapt();
        break;
    }
    check_invariants(env);
    if (HasFailure()) {
      ADD_FAILURE() << "invariant broke at step " << step << " (seed " << GetParam()
                    << ")";
      return;
    }
  }
  EXPECT_GT(ops, 50u);  // the campaign actually did things
}

TEST_P(StressCampaign, WirelessCapacityCollapseIsSurvivable) {
  std::mt19937_64 rng{std::uint64_t(GetParam()) + 99};
  sim::Simulator simulator;
  BackboneConfig config;
  NetworkEnvironment env(mobility::fig4_environment(), simulator, config);
  const auto cells = mobility::fig4_cells(env.map());

  std::vector<PortableId> users;
  for (int i = 0; i < 8; ++i) {
    const auto p = env.add_portable(cells.d);
    if (env.open_connection(p, random_request(rng))) users.push_back(p);
  }
  ASSERT_GE(users.size(), 4u);

  // Failure injection: the wireless link collapses to a quarter capacity,
  // then recovers. Adaptation must keep allocations feasible throughout.
  auto& link = env.network_mut().link(env.wireless_link(cells.d));
  link.set_capacity(qos::mbps(0.4));
  env.adapt();
  double allocated = 0.0;
  for (const auto& [id, share] : link.shares()) allocated += share.allocated;
  // The guaranteed minima may exceed a collapsed link (that is what
  // renegotiation is for), but adaptation must not allocate *excess* beyond
  // the collapsed capacity.
  const double sum_min = link.sum_b_min();
  EXPECT_LE(allocated, std::max(qos::mbps(0.4), sum_min) + 1e-6);

  link.set_capacity(qos::mbps(1.6));
  env.adapt();
  check_invariants(env);

  // Life goes on: handoffs and closes still work.
  EXPECT_TRUE(env.handoff(users[0], cells.c) || !env.has_connection(users[0]));
  for (const PortableId p : users) {
    if (env.has_connection(p)) env.close_connection(p);
  }
  EXPECT_EQ(env.network().connection_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressCampaign, ::testing::Range(1, 7));

}  // namespace
}  // namespace imrm::core
