
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/maxmin/advertised_rate.cc" "src/maxmin/CMakeFiles/imrm_maxmin.dir/advertised_rate.cc.o" "gcc" "src/maxmin/CMakeFiles/imrm_maxmin.dir/advertised_rate.cc.o.d"
  "/root/repo/src/maxmin/bridge.cc" "src/maxmin/CMakeFiles/imrm_maxmin.dir/bridge.cc.o" "gcc" "src/maxmin/CMakeFiles/imrm_maxmin.dir/bridge.cc.o.d"
  "/root/repo/src/maxmin/problem.cc" "src/maxmin/CMakeFiles/imrm_maxmin.dir/problem.cc.o" "gcc" "src/maxmin/CMakeFiles/imrm_maxmin.dir/problem.cc.o.d"
  "/root/repo/src/maxmin/protocol.cc" "src/maxmin/CMakeFiles/imrm_maxmin.dir/protocol.cc.o" "gcc" "src/maxmin/CMakeFiles/imrm_maxmin.dir/protocol.cc.o.d"
  "/root/repo/src/maxmin/waterfill.cc" "src/maxmin/CMakeFiles/imrm_maxmin.dir/waterfill.cc.o" "gcc" "src/maxmin/CMakeFiles/imrm_maxmin.dir/waterfill.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/imrm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/imrm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/qos/CMakeFiles/imrm_qos.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/imrm_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
