file(REMOVE_RECURSE
  "CMakeFiles/maxmin_protocol_test.dir/maxmin_protocol_test.cc.o"
  "CMakeFiles/maxmin_protocol_test.dir/maxmin_protocol_test.cc.o.d"
  "maxmin_protocol_test"
  "maxmin_protocol_test.pdb"
  "maxmin_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxmin_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
