file(REMOVE_RECURSE
  "CMakeFiles/bench_adaptation_dynamics.dir/bench_adaptation_dynamics.cc.o"
  "CMakeFiles/bench_adaptation_dynamics.dir/bench_adaptation_dynamics.cc.o.d"
  "bench_adaptation_dynamics"
  "bench_adaptation_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adaptation_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
