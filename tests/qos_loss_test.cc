// Packet-loss accounting for the packet-level substrate (ISSUE 4 satellite):
// splicing a LossyHop behind a scheduled link must conserve packets exactly —
// offered == delivered + dropped, in total and per flow — under adversarial
// Gilbert-Elliott burst losses, and the observed per-flow loss rate must feed
// the Section 5.1 p_e contract.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "fault/fault_model.h"
#include "qos/flow_spec.h"
#include "qos/packet_sim.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace imrm::qos {
namespace {

using sim::Duration;
using sim::SimTime;

struct LossRig {
  sim::Simulator simulator;
  DelaySink sink;
  std::vector<std::uint64_t> sink_count;

  LossyHop hop;
  ScheduledLink link;
  std::vector<TokenBucketSource> sources;

  LossRig(const fault::LinkFaultModel& model, std::uint64_t loss_seed)
      : hop(model, sim::Rng(loss_seed),
            [this](Packet p) {
              if (p.flow >= sink_count.size()) sink_count.resize(p.flow + 1, 0);
              ++sink_count[p.flow];
              sink(p, simulator.now());
            }),
        link(simulator, mbps(2.0), [this](Packet p) { hop.offer(std::move(p)); }) {}

  void add_flow(FlowId flow, bool greedy, std::uint64_t seed) {
    TokenBucketSource::Config config;
    config.flow = flow;
    config.sigma = bytes(4000);
    config.rho = kbps(200);
    config.packet_size = bytes(500);
    config.greedy = greedy;
    link.add_flow(flow, config.rho);
    sources.emplace_back(simulator, config, sim::Rng(seed),
                         [this](Packet p) { link.enqueue(std::move(p)); });
  }

  void run(double seconds) {
    for (TokenBucketSource& source : sources) {
      source.start(SimTime::seconds(seconds));
    }
    simulator.run();
  }

  [[nodiscard]] std::uint64_t sent() const {
    std::uint64_t total = 0;
    for (const TokenBucketSource& source : sources) total += source.packets_sent();
    return total;
  }
};

void expect_conservation(const LossRig& rig, FlowId flows) {
  // Global conservation: every packet the link served was offered to the
  // hop, and every offered packet is exactly one of delivered/dropped.
  EXPECT_EQ(rig.hop.offered(), rig.sent());
  EXPECT_EQ(rig.hop.offered(), rig.hop.delivered() + rig.hop.dropped());

  std::uint64_t per_flow_offered = 0;
  for (FlowId flow = 0; flow < flows; ++flow) {
    SCOPED_TRACE(flow);
    EXPECT_EQ(rig.hop.offered(flow), rig.hop.delivered(flow) + rig.hop.dropped(flow));
    // The sink saw exactly the delivered packets — none teleport past the hop.
    const std::uint64_t sunk =
        flow < rig.sink_count.size() ? rig.sink_count[flow] : 0;
    EXPECT_EQ(rig.hop.delivered(flow), sunk);
    per_flow_offered += rig.hop.offered(flow);
  }
  EXPECT_EQ(per_flow_offered, rig.hop.offered());
}

TEST(LossyHop, ConservesPacketsUnderGilbertElliottBursts) {
  // Bursty regime: frequent transitions into a state that drops 90% — the
  // adversarial case for any loss bookkeeping keyed off chain state.
  const auto model = fault::LinkFaultModel::gilbert_elliott(0.05, 0.9, 8.0);
  LossRig rig(model, /*loss_seed=*/99);
  const FlowId kFlows = 4;
  for (FlowId flow = 0; flow < kFlows; ++flow) {
    rig.add_flow(flow, /*greedy=*/flow % 2 == 0, /*seed=*/100 + flow);
  }
  rig.run(20.0);

  ASSERT_GT(rig.sent(), 100u);
  expect_conservation(rig, kFlows);
  EXPECT_GT(rig.hop.dropped(), 0u) << "burst model never dropped anything";
  EXPECT_GT(rig.hop.delivered(), 0u);
}

TEST(LossyHop, TrivialModelDeliversEverything) {
  LossRig rig(fault::LinkFaultModel{}, /*loss_seed=*/1);
  rig.add_flow(0, /*greedy=*/true, /*seed=*/7);
  rig.run(5.0);

  expect_conservation(rig, 1);
  EXPECT_EQ(rig.hop.dropped(), 0u);
  EXPECT_EQ(rig.hop.delivered(), rig.hop.offered());
  EXPECT_EQ(rig.hop.loss_rate(0), 0.0);
}

TEST(LossyHop, LossRateFeedsTheQosContract) {
  LossRig rig(fault::LinkFaultModel::bernoulli_loss(0.5), /*loss_seed=*/3);
  rig.add_flow(0, /*greedy=*/true, /*seed=*/7);
  rig.run(20.0);

  expect_conservation(rig, 1);
  const double observed = rig.hop.loss_rate(0);
  EXPECT_GT(observed, 0.3);
  EXPECT_LT(observed, 0.7);

  QosRequest strict;
  strict.loss_bound = 0.01;
  QosRequest lax;
  lax.loss_bound = 0.99;
  EXPECT_FALSE(rig.hop.meets_loss_bound(0, strict));
  EXPECT_TRUE(rig.hop.meets_loss_bound(0, lax));
  // A flow that never offered traffic has zero observed loss by definition.
  EXPECT_EQ(rig.hop.loss_rate(17), 0.0);
  EXPECT_TRUE(rig.hop.meets_loss_bound(17, strict));
}

TEST(LossyHop, VerdictDistinguishesNoDataFromClean) {
  // Regression (ISSUE 9 satellite): the boolean meets_loss_bound() vacuously
  // passed flows with zero offered packets. The tri-state verdict makes "no
  // evidence" explicit, and the minimum-sample guard keeps a handful of
  // packets from condemning (or clearing) a flow.
  LossRig rig(fault::LinkFaultModel::bernoulli_loss(1.0), /*loss_seed=*/3);
  rig.add_flow(0, /*greedy=*/true, /*seed=*/7);

  QosRequest strict;
  strict.loss_bound = 0.01;
  // Nothing offered yet: insufficient, not clean.
  EXPECT_EQ(rig.hop.loss_verdict(0, strict), LossyHop::LossVerdict::kInsufficient);
  EXPECT_EQ(rig.hop.loss_verdict(17, strict), LossyHop::LossVerdict::kInsufficient);

  rig.run(20.0);
  ASSERT_GE(rig.hop.offered(0), LossyHop::kMinLossSamples);
  // Everything dropped: now the evidence suffices and the verdict condemns.
  EXPECT_EQ(rig.hop.loss_verdict(0, strict), LossyHop::LossVerdict::kViolated);
  EXPECT_FALSE(rig.hop.meets_loss_bound(0, strict));
  // At total loss even a lax 0.99 bound is exceeded.
  QosRequest lax;
  lax.loss_bound = 0.99;
  EXPECT_EQ(rig.hop.loss_verdict(0, lax), LossyHop::LossVerdict::kViolated);
}

TEST(LossyHop, TakeWindowHarvestsAndResets) {
  LossRig rig(fault::LinkFaultModel::bernoulli_loss(0.5), /*loss_seed=*/11);
  rig.add_flow(0, /*greedy=*/true, /*seed=*/7);
  rig.run(10.0);

  const std::uint64_t all_time_offered = rig.hop.offered(0);
  const std::uint64_t all_time_dropped = rig.hop.dropped(0);
  ASSERT_GT(all_time_offered, 0u);

  // First harvest sees everything offered so far.
  const LossyHop::LossWindow w1 = rig.hop.take_window(0);
  EXPECT_EQ(w1.offered, all_time_offered);
  EXPECT_EQ(w1.dropped, all_time_dropped);
  EXPECT_NEAR(w1.loss_rate(),
              double(all_time_dropped) / double(all_time_offered), 1e-12);

  // The window resets; the all-time totals do not.
  const LossyHop::LossWindow w2 = rig.hop.take_window(0);
  EXPECT_EQ(w2.offered, 0u);
  EXPECT_EQ(w2.dropped, 0u);
  EXPECT_EQ(w2.loss_rate(), 0.0);
  EXPECT_EQ(rig.hop.offered(0), all_time_offered);
  EXPECT_EQ(rig.hop.dropped(0), all_time_dropped);
}

TEST(LossyHop, SetModelArmsAndDisarmsBursts) {
  // Arming a Gilbert–Elliott model mid-run makes the hop lossy; disarming
  // back to the trivial model restores loss-free forwarding, with all
  // counters (and conservation) persisting across both edges.
  sim::Simulator simulator;
  std::uint64_t sunk = 0;
  LossyHop hop(fault::LinkFaultModel{}, sim::Rng(21), [&](Packet) { ++sunk; });
  auto offer_n = [&](int n) {
    for (int i = 0; i < n; ++i) {
      Packet p;
      p.flow = 0;
      p.size = 4000.0;
      p.created = simulator.now();
      hop.offer(p);
    }
  };
  offer_n(100);
  EXPECT_EQ(hop.dropped(0), 0u);

  hop.set_model(fault::LinkFaultModel::gilbert_elliott(0.5, 0.9, 10.0));
  offer_n(500);
  const std::uint64_t dropped_during_fault = hop.dropped(0);
  EXPECT_GT(dropped_during_fault, 0u) << "armed burst model never dropped";

  hop.set_model(fault::LinkFaultModel{});
  offer_n(100);
  EXPECT_EQ(hop.dropped(0), dropped_during_fault) << "trivial model dropped";
  EXPECT_EQ(hop.offered(0), 700u);
  EXPECT_EQ(hop.offered(0), hop.delivered(0) + hop.dropped(0));
  EXPECT_EQ(hop.delivered(0), sunk);
}

TEST(LossyHop, DeterministicInSeed) {
  const auto model = fault::LinkFaultModel::gilbert_elliott(0.1, 0.8, 4.0);
  auto run_once = [&] {
    LossRig rig(model, /*loss_seed=*/42);
    rig.add_flow(0, /*greedy=*/false, /*seed=*/5);
    rig.add_flow(1, /*greedy=*/true, /*seed=*/6);
    rig.run(10.0);
    return std::vector<std::uint64_t>{rig.hop.offered(), rig.hop.delivered(),
                                      rig.hop.dropped(), rig.hop.dropped(0),
                                      rig.hop.dropped(1)};
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace imrm::qos
