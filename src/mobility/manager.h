// Mobility manager: owns the portables, validates moves against the cell
// map, applies the static/mobile classifier, and fans handoff events out to
// listeners (profile servers, resource managers, statistics).
#pragma once

#include <functional>
#include <vector>

#include "mobility/cell.h"
#include "mobility/floorplan.h"
#include "mobility/portable.h"
#include "sim/checkpoint.h"
#include "sim/simulator.h"

namespace imrm::obs {
class Counter;
class Histogram;
class Registry;
}  // namespace imrm::obs

namespace imrm::mobility {

struct HandoffEvent {
  PortableId portable = PortableId::invalid();
  CellId from = CellId::invalid();
  CellId to = CellId::invalid();
  /// The portable's previous cell *before* `from` — what profile-based
  /// prediction keys on.
  CellId prev_of_from = CellId::invalid();
  sim::SimTime time = sim::SimTime::zero();
};

class MobilityManager {
 public:
  using HandoffListener = std::function<void(const HandoffEvent&)>;

  MobilityManager(const CellMap& map, sim::Simulator& simulator,
                  sim::Duration static_threshold)
      : map_(&map), simulator_(&simulator), classifier_(static_threshold) {}

  /// Creates a portable in `start`. It is considered to have entered the
  /// cell at the current simulation time.
  PortableId add_portable(CellId start);

  /// Moves a portable to a neighboring cell, firing handoff listeners.
  /// Moving to a non-neighbor is a programming error (asserted).
  void move(PortableId portable, CellId to);

  [[nodiscard]] const Portable& portable(PortableId id) const {
    return portables_.at(id.value());
  }
  [[nodiscard]] Portable& portable(PortableId id) { return portables_.at(id.value()); }
  [[nodiscard]] std::size_t portable_count() const { return portables_.size(); }

  [[nodiscard]] qos::MobilityClass classify(PortableId id) const {
    return classifier_.classify(portable(id), simulator_->now());
  }
  [[nodiscard]] const StaticMobileClassifier& classifier() const { return classifier_; }

  /// Portables currently in `cell`, ascending id. O(k log k) in the cell's
  /// population — NOT O(total portables); the manager maintains a per-cell
  /// resident index updated in O(1) per move.
  [[nodiscard]] std::vector<PortableId> portables_in(CellId cell) const;

  /// Number of portables currently in `cell` (O(1)).
  [[nodiscard]] std::size_t resident_count(CellId cell) const {
    const std::size_t i = cell.value();
    return i < residents_by_cell_.size() ? residents_by_cell_[i].size() : 0;
  }

  /// Unordered view of the portables currently in `cell` (O(1), no copy).
  /// Order is arbitrary and changes across moves; callers that need
  /// determinism use portables_in.
  [[nodiscard]] const std::vector<PortableId>& residents(CellId cell) const {
    static const std::vector<PortableId> kEmpty;
    const std::size_t i = cell.value();
    return i < residents_by_cell_.size() ? residents_by_cell_[i] : kEmpty;
  }

  /// Estimated heap footprint of the roster and resident index in bytes.
  [[nodiscard]] std::size_t memory_bytes() const;

  void on_handoff(HandoffListener listener) { listeners_.push_back(std::move(listener)); }

  /// Registers the mobility.handoffs counter; every move() increments it.
  /// Also lights up per-handoff trace instants when the simulator has a
  /// tracer attached. Deterministic across replications.
  void bind_metrics(obs::Registry& registry);

  /// Registers mobility.handoff_wall_us — a wall-clock histogram of the
  /// listener fan-out latency per handoff, measured with steady_clock. Wall
  /// time is NOT deterministic, so sweeps that compare snapshots across
  /// thread counts must leave this unbound (see experiments::CampusDayConfig
  /// ::wall_metrics).
  void bind_latency_metrics(obs::Registry& registry);

  [[nodiscard]] const CellMap& map() const { return *map_; }
  [[nodiscard]] sim::Simulator& simulator() { return *simulator_; }

  // --- checkpoint/restore (ISSUE 4) ---------------------------------------
  // Serializes the portable roster (cells, entry times, home offices).
  // Listeners and metric bindings are addresses, so the restoring harness
  // reconstructs them through its own constructor before calling
  // restore_state.
  void save_state(sim::CheckpointWriter& w) const;
  void restore_state(sim::CheckpointReader& r);

 private:
  void index_insert(PortableId id, CellId cell);
  void index_remove(PortableId id, CellId cell);

  const CellMap* map_;
  sim::Simulator* simulator_;
  StaticMobileClassifier classifier_;
  std::vector<Portable> portables_;
  // Resident index: which portables sit in each cell (unsorted; swap-remove)
  // and where each portable sits in its cell's bucket.
  std::vector<std::vector<PortableId>> residents_by_cell_;
  std::vector<std::uint32_t> position_in_cell_;
  std::vector<HandoffListener> listeners_;
  obs::Counter* handoff_counter_ = nullptr;
  obs::Histogram* handoff_wall_us_ = nullptr;
  obs::NameId trace_handoff_name_ = obs::kInvalidName;
};

}  // namespace imrm::mobility
