#include "fault/schedule.h"

#include <algorithm>
#include <map>
#include <memory>

#include "obs/metrics.h"
#include "obs/tracer.h"
#include "sim/sharded_runner.h"

namespace imrm::fault {
namespace {

// Shared driver state: the hooks, cached counters, and per-link outage
// start times so each down→up pair renders as one trace span.
struct Driver {
  FaultSchedule::Hooks hooks;
  std::vector<std::vector<std::uint32_t>> groups;
  obs::Counter* downs = nullptr;
  obs::Counter* ups = nullptr;
  obs::Counter* crashes = nullptr;
  obs::Counter* partitions = nullptr;
  obs::Tracer* tracer = nullptr;
  obs::NameId outage_name = obs::kInvalidName;
  obs::NameId crash_name = obs::kInvalidName;
  std::map<std::uint32_t, sim::SimTime> down_since;

  void link_down(sim::SimTime now, std::uint32_t link) {
    if (downs) downs->add();
    down_since.emplace(link, now);
    if (hooks.link_down) hooks.link_down(link);
  }
  void link_up(sim::SimTime now, std::uint32_t link) {
    if (ups) ups->add();
    if (auto it = down_since.find(link); it != down_since.end()) {
      if (tracer && outage_name != obs::kInvalidName) {
        tracer->complete(it->second, now, outage_name, link);
      }
      down_since.erase(it);
    }
    if (hooks.link_up) hooks.link_up(link);
  }
};

std::shared_ptr<Driver> make_driver(FaultSchedule::Hooks hooks,
                                    std::vector<std::vector<std::uint32_t>> groups,
                                    obs::Registry* metrics, obs::Tracer* tracer) {
  auto driver = std::make_shared<Driver>();
  driver->hooks = std::move(hooks);
  driver->groups = std::move(groups);
  if (metrics) {
    driver->downs = &metrics->counter("fault.injected.link_down");
    driver->ups = &metrics->counter("fault.injected.link_up");
    driver->crashes = &metrics->counter("fault.injected.cell_crash");
    driver->partitions = &metrics->counter("fault.injected.partition");
  }
  if (tracer) {
    driver->tracer = tracer;
    driver->outage_name = tracer->intern("link-outage", "fault");
    driver->crash_name = tracer->intern("cell-crash", "fault");
  }
  return driver;
}

void schedule_events(const std::vector<FaultEvent>& events, sim::Simulator& simulator,
                     const std::shared_ptr<Driver>& shared) {
  for (const FaultEvent& event : events) {
    simulator.at(event.at, [driver = shared, &simulator, event] {
      const sim::SimTime now = simulator.now();
      switch (event.kind) {
        case FaultKind::kLinkDown:
          driver->link_down(now, event.target);
          break;
        case FaultKind::kLinkUp:
          driver->link_up(now, event.target);
          break;
        case FaultKind::kCellCrash:
          if (driver->crashes) driver->crashes->add();
          if (driver->tracer && driver->crash_name != obs::kInvalidName) {
            driver->tracer->instant(now, driver->crash_name, event.target);
          }
          if (driver->hooks.cell_crash) driver->hooks.cell_crash(event.target);
          break;
        case FaultKind::kPartition:
          if (driver->partitions) driver->partitions->add();
          if (event.target < driver->groups.size()) {
            for (std::uint32_t link : driver->groups[event.target]) {
              driver->link_down(now, link);
            }
          }
          break;
        case FaultKind::kHeal:
          if (event.target < driver->groups.size()) {
            for (std::uint32_t link : driver->groups[event.target]) {
              driver->link_up(now, link);
            }
          }
          break;
      }
    });
  }
}

}  // namespace

FaultSchedule FaultSchedule::random(const RandomConfig& config, sim::Rng& rng) {
  FaultSchedule schedule;
  const double lo = config.start.to_seconds();
  const double hi = config.stop.to_seconds();
  for (std::size_t i = 0; i < config.flaps; ++i) {
    const auto link = std::uint32_t(rng.uniform_int(0, int(config.links) - 1));
    const double down = rng.uniform(lo, hi);
    const double outage = rng.exponential_mean(config.mean_outage.to_seconds());
    // Outages are clipped to the window so every down has a matching up.
    const double up = std::min(down + outage, hi);
    schedule.flap(link, sim::SimTime::seconds(down), sim::SimTime::seconds(up));
  }
  for (std::size_t i = 0; i < config.crashes; ++i) {
    const auto link = std::uint32_t(rng.uniform_int(0, int(config.links) - 1));
    schedule.crash(link, sim::SimTime::seconds(rng.uniform(lo, hi)));
  }
  return schedule;
}

sim::SimTime FaultSchedule::end_time() const {
  sim::SimTime end = sim::SimTime::zero();
  for (const FaultEvent& event : events_) end = std::max(end, event.at);
  return end;
}

void FaultSchedule::arm(sim::Simulator& simulator, Hooks hooks, obs::Registry* metrics,
                        obs::Tracer* tracer) const {
  if (events_.empty()) return;
  schedule_events(events_, simulator,
                  make_driver(std::move(hooks), groups_, metrics, tracer));
}

void FaultSchedule::arm_sharded(sim::ShardedRunner& runner, ShardedHooks hooks,
                                obs::Registry* metrics, obs::Tracer* tracer) const {
  if (events_.empty()) return;
  // One driver per domain, each wrapping the user hooks with that domain's
  // index. Every domain gets the full timeline in its own event queue — the
  // fix for batched bursts, where a single-domain arming would only reach the
  // other shards at a burst boundary. Only domain 0's driver carries the
  // registry/tracer, so counters and spans record each fault exactly once.
  for (std::size_t d = 0; d < runner.domain_count(); ++d) {
    Hooks local;
    if (hooks.link_down) {
      local.link_down = [f = hooks.link_down, d](std::uint32_t link) { f(d, link); };
    }
    if (hooks.link_up) {
      local.link_up = [f = hooks.link_up, d](std::uint32_t link) { f(d, link); };
    }
    if (hooks.cell_crash) {
      local.cell_crash = [f = hooks.cell_crash, d](std::uint32_t link) { f(d, link); };
    }
    schedule_events(events_, runner.domain(d),
                    make_driver(std::move(local), groups_,
                                d == 0 ? metrics : nullptr,
                                d == 0 ? tracer : nullptr));
  }
}

}  // namespace imrm::fault
