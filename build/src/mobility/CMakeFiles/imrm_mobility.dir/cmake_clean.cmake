file(REMOVE_RECURSE
  "CMakeFiles/imrm_mobility.dir/cell.cc.o"
  "CMakeFiles/imrm_mobility.dir/cell.cc.o.d"
  "CMakeFiles/imrm_mobility.dir/floorplan.cc.o"
  "CMakeFiles/imrm_mobility.dir/floorplan.cc.o.d"
  "CMakeFiles/imrm_mobility.dir/manager.cc.o"
  "CMakeFiles/imrm_mobility.dir/manager.cc.o.d"
  "CMakeFiles/imrm_mobility.dir/movement.cc.o"
  "CMakeFiles/imrm_mobility.dir/movement.cc.o.d"
  "libimrm_mobility.a"
  "libimrm_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imrm_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
