// Tests for the obs metrics registry: instrument semantics, snapshot
// isolation, deterministic merging across ReplicationRunner thread counts,
// and the JSON serialization the run reports are built on.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "experiments/campus_day.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "sim/random.h"
#include "sim/replication.h"

using namespace imrm;
using obs::HistogramSpec;
using obs::Registry;
using obs::Snapshot;

namespace {

std::string to_json(const Snapshot& snapshot) {
  std::ostringstream os;
  snapshot.write_json(os);
  return os.str();
}

}  // namespace

TEST(Counter, AddsAndResets) {
  Registry registry;
  obs::Counter& c = registry.counter("x");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, SameNameSameInstrument) {
  Registry registry;
  registry.counter("x").add(3);
  registry.counter("x").add(4);
  EXPECT_EQ(registry.counter("x").value(), 7u);
  EXPECT_EQ(registry.instrument_count(), 1u);
}

TEST(Gauge, TracksValueAndMax) {
  Registry registry;
  obs::Gauge& g = registry.gauge("depth");
  g.set(5.0);
  g.set(9.0);
  g.set(2.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  EXPECT_DOUBLE_EQ(g.max(), 9.0);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
}

TEST(Histogram, LinearBucketing) {
  const HistogramSpec spec = HistogramSpec::linear(0.0, 10.0, 10);
  EXPECT_EQ(spec.bucket_count(), 10u);
  EXPECT_EQ(spec.index_of(0.0), 0u);
  EXPECT_EQ(spec.index_of(4.5), 4u);
  EXPECT_EQ(spec.index_of(9.99), 9u);
  EXPECT_DOUBLE_EQ(spec.lower_bound(4), 4.0);
  EXPECT_DOUBLE_EQ(spec.upper_bound(4), 5.0);
}

TEST(Histogram, Log2BucketingIsMonotonic) {
  const HistogramSpec spec = HistogramSpec::log2(1.0, 1024.0, 8);
  EXPECT_EQ(spec.bucket_count(), 80u);  // 10 octaves x 8 sub-buckets
  std::size_t prev = 0;
  for (double v = 1.0; v < 1024.0; v *= 1.13) {
    const std::size_t idx = spec.index_of(v);
    EXPECT_GE(idx, prev) << "index_of not monotone at " << v;
    EXPECT_GE(v, spec.lower_bound(idx) * (1.0 - 1e-12));
    EXPECT_LT(v, spec.upper_bound(idx) * (1.0 + 1e-12));
    prev = idx;
  }
}

TEST(Histogram, RecordsUnderAndOverflow) {
  Registry registry;
  obs::Histogram& h =
      registry.histogram("lat", HistogramSpec::linear(0.0, 100.0, 10));
  h.record(-5.0);
  h.record(50.0);
  h.record(60.0);
  h.record(250.0);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_DOUBLE_EQ(h.min(), -5.0);
  EXPECT_DOUBLE_EQ(h.max(), 250.0);
  EXPECT_DOUBLE_EQ(h.sum(), 355.0);
}

TEST(Histogram, PercentileInterpolates) {
  Registry registry;
  obs::Histogram& h =
      registry.histogram("v", HistogramSpec::linear(0.0, 100.0, 100));
  for (int i = 0; i < 100; ++i) h.record(double(i) + 0.5);
  const Snapshot snap = registry.snapshot();
  const obs::HistogramSample* s = snap.histogram("v");
  ASSERT_NE(s, nullptr);
  EXPECT_NEAR(s->percentile(0.50), 50.0, 1.0);
  EXPECT_NEAR(s->percentile(0.99), 99.0, 1.0);
}

// Percentile edge cases (ISSUE 4): the estimate must stay inside the
// observed [min, max] range in every degenerate shape — empty, extremes,
// single saturated bucket, and mass in the under/overflow bins.
TEST(Histogram, PercentileOfEmptyHistogramIsZero) {
  Registry registry;
  registry.histogram("v", HistogramSpec::linear(0.0, 10.0, 10));
  const obs::HistogramSample* s = registry.snapshot().histogram("v");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->percentile(0.0), 0.0);
  EXPECT_EQ(s->percentile(0.5), 0.0);
  EXPECT_EQ(s->percentile(1.0), 0.0);
}

TEST(Histogram, PercentileExtremesReturnObservedMinAndMax) {
  Registry registry;
  obs::Histogram& h = registry.histogram("v", HistogramSpec::linear(0.0, 100.0, 10));
  h.record(12.5);
  h.record(34.0);
  h.record(87.25);
  const obs::HistogramSample* s = registry.snapshot().histogram("v");
  ASSERT_NE(s, nullptr);
  // Exactly the observed extremes — not the containing buckets' bounds.
  EXPECT_DOUBLE_EQ(s->percentile(0.0), 12.5);
  EXPECT_DOUBLE_EQ(s->percentile(1.0), 87.25);
}

TEST(Histogram, PercentileSingleSaturatedBucketStaysInSampleRange) {
  Registry registry;
  obs::Histogram& h = registry.histogram("v", HistogramSpec::linear(0.0, 100.0, 10));
  // All mass in one [30, 40) bucket, samples confined to [33, 34].
  for (int i = 0; i < 1000; ++i) h.record(33.0 + (i % 2));
  const obs::HistogramSample* s = registry.snapshot().histogram("v");
  ASSERT_NE(s, nullptr);
  for (const double q : {0.01, 0.25, 0.5, 0.9, 0.99}) {
    SCOPED_TRACE(q);
    EXPECT_GE(s->percentile(q), 33.0);
    EXPECT_LE(s->percentile(q), 34.0);
  }
}

TEST(Histogram, PercentileWithAllMassOutOfRangeStaysInSampleRange) {
  Registry registry;
  obs::Histogram& h = registry.histogram("v", HistogramSpec::linear(10.0, 20.0, 10));
  h.record(2.0);    // underflow
  h.record(3.0);    // underflow
  h.record(150.0);  // overflow
  const obs::HistogramSample* s = registry.snapshot().histogram("v");
  ASSERT_NE(s, nullptr);
  for (const double q : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    SCOPED_TRACE(q);
    EXPECT_GE(s->percentile(q), 2.0);
    EXPECT_LE(s->percentile(q), 150.0);
  }
  EXPECT_DOUBLE_EQ(s->percentile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(s->percentile(1.0), 150.0);
}

TEST(Histogram, PercentilesReachJsonInOrder) {
  // The schema-v1 report derives p50/p90/p99 from percentile(); they must be
  // present, ordered, and within the observed range even for the saturated
  // single-bucket shape.
  Registry registry;
  obs::Histogram& h = registry.histogram("lat", HistogramSpec::log2(0.001, 1000.0, 4));
  for (int i = 0; i < 100; ++i) h.record(0.25);
  std::ostringstream os;
  registry.snapshot().write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"p50\":0.25"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p90\":0.25"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99\":0.25"), std::string::npos) << json;
}

TEST(Snapshot, IsIsolatedFromLaterMutation) {
  Registry registry;
  registry.counter("c").add(1);
  registry.gauge("g").set(1.0);
  const Snapshot before = registry.snapshot();
  registry.counter("c").add(100);
  registry.gauge("g").set(7.0);
  EXPECT_EQ(before.counter("c")->value, 1u);
  EXPECT_DOUBLE_EQ(before.gauge("g")->value, 1.0);
  EXPECT_EQ(registry.snapshot().counter("c")->value, 101u);
}

TEST(Snapshot, LookupMissReturnsNull) {
  Registry registry;
  registry.counter("present").add();
  const Snapshot snap = registry.snapshot();
  EXPECT_NE(snap.counter("present"), nullptr);
  EXPECT_EQ(snap.counter("absent"), nullptr);
  EXPECT_EQ(snap.gauge("absent"), nullptr);
  EXPECT_EQ(snap.histogram("absent"), nullptr);
}

TEST(Snapshot, MergeSumsCountersAndFoldsGauges) {
  Registry a, b;
  a.counter("shared").add(3);
  a.counter("only-a").add(1);
  a.gauge("g").set(2.0);
  b.counter("shared").add(4);
  b.counter("only-b").add(10);
  b.gauge("g").set(5.0);

  Snapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(merged.counter("shared")->value, 7u);
  EXPECT_EQ(merged.counter("only-a")->value, 1u);
  EXPECT_EQ(merged.counter("only-b")->value, 10u);
  EXPECT_DOUBLE_EQ(merged.gauge("g")->value, 7.0);
  EXPECT_DOUBLE_EQ(merged.gauge("g")->max, 5.0);
}

TEST(Snapshot, MergeFoldsHistogramsBucketwise) {
  const HistogramSpec spec = HistogramSpec::linear(0.0, 10.0, 10);
  Registry a, b;
  a.histogram("h", spec).record(1.5);
  a.histogram("h", spec).record(-1.0);
  b.histogram("h", spec).record(1.7);
  b.histogram("h", spec).record(8.2);

  Snapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  const obs::HistogramSample* h = merged.histogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 4u);
  EXPECT_EQ(h->underflow, 1u);
  EXPECT_EQ(h->buckets[1], 2u);
  EXPECT_EQ(h->buckets[8], 1u);
  EXPECT_DOUBLE_EQ(h->min, -1.0);
  EXPECT_DOUBLE_EQ(h->max, 8.2);
}

// The tentpole determinism property: per-replication registries, snapshot
// each, merge in replication order — byte-identical JSON at any thread
// count.
TEST(Snapshot, MergeIsDeterministicAcrossThreadCounts) {
  const auto run_at = [](std::size_t threads) {
    const sim::ReplicationRunner runner(threads);
    const std::vector<Snapshot> snaps =
        runner.run(24, 99, [](std::uint64_t seed, std::size_t) {
          Registry registry;
          sim::Rng rng(seed);
          obs::Histogram& h = registry.histogram(
              "h", HistogramSpec::log2(0.001, 1000.0, 4));
          for (int i = 0; i < 200; ++i) {
            registry.counter("events").add();
            registry.gauge("level").set(rng.uniform(0.0, 10.0));
            h.record(rng.exponential_mean(3.0));
          }
          return registry.snapshot();
        });
    return to_json(obs::merge_snapshots(snaps));
  };
  const std::string at1 = run_at(1);
  EXPECT_EQ(at1, run_at(4));
  EXPECT_EQ(at1, run_at(8));
  EXPECT_NE(at1.find("\"events\":4800"), std::string::npos);
}

// End-to-end: the campus-day sweep's merged metrics snapshot is a pure
// function of the seeds, regardless of the worker pool size.
TEST(CampusSweep, MetricsSnapshotIdenticalAcrossThreadCounts) {
  experiments::CampusSweepConfig config;
  config.base.attendees = 10;
  config.base.squatters = 3;
  config.replications = 4;
  config.base_seed = 7;

  config.threads = 1;
  const experiments::CampusSweepResult serial = run_campus_day_sweep(config);
  config.threads = 4;
  const experiments::CampusSweepResult parallel = run_campus_day_sweep(config);

  EXPECT_EQ(to_json(serial.metrics), to_json(parallel.metrics));
  // Sanity: the snapshot actually carries the instrumented modules.
  EXPECT_NE(serial.metrics.counter("mobility.handoffs"), nullptr);
  EXPECT_NE(serial.metrics.counter("sim.events_fired"), nullptr);
  EXPECT_NE(serial.metrics.counter("resv.handoff.admitted"), nullptr);
  EXPECT_NE(serial.metrics.histogram("resv.reservation.coverage"), nullptr);
  // Wall-clock instruments must NOT leak into sweep snapshots.
  EXPECT_EQ(serial.metrics.histogram("mobility.handoff_wall_us"), nullptr);
  EXPECT_EQ(serial.metrics.counters().size(), parallel.metrics.counters().size());
}

TEST(RunReport, WritesVersionedJson) {
  obs::RunReport report;
  report.tool = "obs_metrics_test";
  report.scenario = "unit";
  report.config.emplace_back("seed", "7");
  report.wall_seconds = 0.5;
  report.sim_seconds = 10.0;
  report.events_fired = 1000;
  Registry registry;
  registry.counter("c").add(2);
  report.metrics = registry.snapshot();

  std::ostringstream os;
  report.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema_version\":5"), std::string::npos);
  EXPECT_NE(json.find("\"scenario\":\"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"events_per_second\":2000"), std::string::npos);
  EXPECT_NE(json.find("\"c\":2"), std::string::npos);
}
