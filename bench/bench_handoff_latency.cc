// Handoff signaling latency: what advance reservation buys (Section 2.2 and
// footnote 5).
//
// A handoff into a cell holding an advance reservation for the portable
// completes with local base-station signaling; an unpredicted handoff pays
// the full end-to-end admission round trip over the new path. A population
// of habitual walkers on the Figure 4 map shows the latency gap as the
// predictor warms up.
#include <iostream>
#include <memory>

#include "core/network_environment.h"
#include "mobility/floorplan.h"
#include "mobility/movement.h"
#include "sim/random.h"
#include "stats/table.h"

using namespace imrm;
using core::BackboneConfig;
using core::NetworkEnvironment;

namespace {

struct Slice {
  std::size_t local = 0, e2e = 0;
  double latency = 0.0;
};

}  // namespace

int main() {
  std::cout << "== Handoff signaling latency with and without prediction ==\n";
  std::cout << "habitual walkers on the Figure 4 backbone; per-hop signaling 2 ms\n\n";

  sim::Simulator simulator;
  BackboneConfig config;
  NetworkEnvironment env(mobility::fig4_environment(), simulator, config);
  const auto cells = mobility::fig4_cells(env.map());

  sim::Rng rng(41);
  const mobility::TransitionTable table =
      mobility::fig4_transition_table(env.map(), mobility::fig4_faculty_weights());

  qos::QosRequest request;
  request.bandwidth = {qos::kbps(32), qos::kbps(128)};
  request.delay_bound = 10.0;
  request.jitter_bound = 10.0;
  request.loss_bound = 0.05;
  request.traffic = {8000.0, 8000.0};

  std::vector<net::PortableId> population;
  for (int i = 0; i < 6; ++i) {
    const auto p = env.add_portable(cells.c, cells.a);
    env.open_connection(p, request);
    population.push_back(p);
  }

  struct Walker {
    NetworkEnvironment* env;
    const mobility::TransitionTable* table;
    sim::Rng rng;
    sim::SimTime horizon;
    void step(net::PortableId p) {
      auto& simulator = env->mobility().simulator();
      const auto at = simulator.now() + sim::Duration::minutes(rng.exponential_mean(2.5));
      if (at > horizon) return;
      simulator.at(at, [this, p] {
        const auto& me = env->mobility().portable(p);
        const auto next =
            table->sample(env->map(), me.previous_cell, me.current_cell, rng);
        env->handoff(p, next);
        step(p);
      });
    }
  };
  auto walker = std::make_shared<Walker>(
      Walker{&env, &table, rng.fork(), sim::SimTime::hours(6)});
  for (auto p : population) walker->step(p);

  // Sample the split hourly: the warm fraction should grow as profiles fill.
  stats::Table table_out({"hour", "handoffs", "local (reserved)", "e2e (cold)",
                          "mean latency (ms)"});
  Slice prev;
  for (int hour = 1; hour <= 6; ++hour) {
    simulator.run_until(sim::SimTime::hours(double(hour)));
    const auto& s = env.stats();
    const Slice now{s.local_handoffs, s.e2e_handoffs, s.total_handoff_latency_s};
    const std::size_t handoffs = (now.local - prev.local) + (now.e2e - prev.e2e);
    const double mean_ms =
        handoffs ? (now.latency - prev.latency) / double(handoffs) * 1e3 : 0.0;
    table_out.add_row({std::to_string(hour), std::to_string(handoffs),
                       std::to_string(now.local - prev.local),
                       std::to_string(now.e2e - prev.e2e), stats::fmt(mean_ms, 2)});
    prev = now;
  }
  simulator.run();
  table_out.print(std::cout);

  const auto& s = env.stats();
  std::cout << "\noverall: " << s.local_handoffs << " reserved handoffs at 4 ms vs "
            << s.e2e_handoffs << " cold handoffs at 16 ms (4-hop path); mean "
            << stats::fmt(s.mean_handoff_latency_s() * 1e3, 2) << " ms\n";
  std::cout << "As the portable profiles warm up, more handoffs land on advance\n"
               "reservations and skip the end-to-end admission round trip — the\n"
               "\"seamless mobility\" the paper designs for.\n";
  return 0;
}
