#!/usr/bin/env python3
"""End-to-end contract for the scenario_cli checkpoint flags.

Runs a campus day three ways with identical scenario flags:
  1. cold        — straight through (wall-clock metrics suppressed so the
                   report is comparable: --checkpoint-at with no output path
                   is not a thing, so we reuse the checkpoint-in path for
                   the comparable baseline; see below);
  2. freeze      — --checkpoint-out at t=100min;
  3. resume      — --checkpoint-in from the frozen image.

The resumed run's stdout line and its report's "metrics" object must equal
the cold run's exactly (wall-clock-derived report fields are excluded: they
measure the host, not the simulation). The cold baseline is produced by
resuming a checkpoint taken at t=0, which exercises the same code path while
simulating the entire day after restore.

Usage: check_checkpoint_cli.py <path-to-scenario_cli>
"""
import json
import subprocess
import sys
import tempfile
from pathlib import Path

FLAGS = ["campus", "--policy", "dispatcher", "--attendees", "10",
         "--squatters", "3", "--seed", "5"]


def run(cli, extra):
    proc = subprocess.run([cli] + FLAGS + extra, capture_output=True,
                          text=True, timeout=300)
    if proc.returncode != 0:
        print(f"FAIL: {' '.join(extra)} exited {proc.returncode}")
        print(proc.stderr)
        sys.exit(1)
    return proc.stdout


def main() -> int:
    if len(sys.argv) != 2:
        print("usage: check_checkpoint_cli.py <scenario_cli>", file=sys.stderr)
        return 2
    cli = sys.argv[1]
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        ckpt_mid = tmp / "mid.ckpt"
        ckpt_zero = tmp / "zero.ckpt"
        cold_json = tmp / "cold.json"
        warm_json = tmp / "warm.json"

        run(cli, ["--checkpoint-out", str(ckpt_mid), "--checkpoint-at", "100"])
        run(cli, ["--checkpoint-out", str(ckpt_zero), "--checkpoint-at", "0"])
        cold_line = run(cli, ["--checkpoint-in", str(ckpt_zero),
                              "--metrics-json", str(cold_json)])
        warm_line = run(cli, ["--checkpoint-in", str(ckpt_mid),
                              "--metrics-json", str(warm_json)])

        ok = True
        if cold_line != warm_line:
            print("FAIL: stdout differs between resumed and baseline runs")
            print(f"  baseline: {cold_line!r}")
            print(f"  resumed:  {warm_line!r}")
            ok = False
        cold = json.loads(cold_json.read_text())
        warm = json.loads(warm_json.read_text())
        # Simulation-derived content must match exactly; host-derived wall
        # figures may not.
        for field in ("metrics", "sim_time_seconds", "events_fired", "scenario",
                      "schema_version", "config"):
            if cold.get(field) != warm.get(field):
                print(f"FAIL: report field {field!r} differs")
                ok = False
        if not ok:
            return 1
    print("OK: resumed campus day is identical to the baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
