// Tests for the centralized max-min reference: progressive filling with
// finite demands, bottleneck identification, and the optimality checker.
#include <gtest/gtest.h>

#include "maxmin/advertised_rate.h"
#include "maxmin/problem.h"
#include "maxmin/waterfill.h"

namespace imrm::maxmin {
namespace {

Problem chain_problem() {
  // L0 (cap 10): A, B      L1 (cap 4): B, C
  Problem p;
  p.links = {{10.0}, {4.0}};
  p.connections = {
      {{0}, kInfiniteDemand},     // A
      {{0, 1}, kInfiniteDemand},  // B
      {{1}, kInfiniteDemand},     // C
  };
  return p;
}

TEST(Problem, ValidityChecks) {
  EXPECT_TRUE(chain_problem().valid());
  Problem bad = chain_problem();
  bad.connections[0].path = {7};  // out of range
  EXPECT_FALSE(bad.valid());
  bad = chain_problem();
  bad.connections[0].path.clear();
  EXPECT_FALSE(bad.valid());
  bad = chain_problem();
  bad.links[0].excess_capacity = -1.0;
  EXPECT_FALSE(bad.valid());
}

TEST(Problem, ConnectionsByLink) {
  const auto by_link = chain_problem().connections_by_link();
  ASSERT_EQ(by_link.size(), 2u);
  EXPECT_EQ(by_link[0], (std::vector<ConnIndex>{0, 1}));
  EXPECT_EQ(by_link[1], (std::vector<ConnIndex>{1, 2}));
}

TEST(Waterfill, ClassicChain) {
  const auto result = waterfill(chain_problem());
  ASSERT_EQ(result.rates.size(), 3u);
  EXPECT_NEAR(result.rates[0], 8.0, 1e-9);  // A
  EXPECT_NEAR(result.rates[1], 2.0, 1e-9);  // B limited by L1
  EXPECT_NEAR(result.rates[2], 2.0, 1e-9);  // C
  EXPECT_EQ(result.bottleneck_of[1], 1u);
  EXPECT_EQ(result.bottleneck_of[2], 1u);
  EXPECT_EQ(result.bottleneck_of[0], 0u);
}

TEST(Waterfill, FiniteDemandFreesCapacity) {
  Problem p = chain_problem();
  p.connections[1].demand = 1.0;  // B wants only 1
  const auto result = waterfill(p);
  EXPECT_NEAR(result.rates[1], 1.0, 1e-9);
  EXPECT_NEAR(result.rates[2], 3.0, 1e-9);  // C takes the L1 leftovers
  EXPECT_NEAR(result.rates[0], 9.0, 1e-9);  // A takes the L0 leftovers
  EXPECT_EQ(result.bottleneck_of[1], kDemandLimited);
}

TEST(Waterfill, SingleLinkEqualShares) {
  Problem p;
  p.links = {{12.0}};
  p.connections = {{{0}, kInfiniteDemand}, {{0}, kInfiniteDemand}, {{0}, kInfiniteDemand}};
  const auto result = waterfill(p);
  for (double r : result.rates) EXPECT_NEAR(r, 4.0, 1e-9);
  EXPECT_EQ(result.fill_order, (std::vector<LinkIndex>{0}));
}

TEST(Waterfill, ZeroCapacityLinkFreezesAtZero) {
  Problem p;
  p.links = {{0.0}, {10.0}};
  p.connections = {{{0, 1}, kInfiniteDemand}, {{1}, kInfiniteDemand}};
  const auto result = waterfill(p);
  EXPECT_NEAR(result.rates[0], 0.0, 1e-9);
  EXPECT_NEAR(result.rates[1], 10.0, 1e-9);
}

TEST(Waterfill, AllDemandsSatisfiedNoBottleneck) {
  Problem p;
  p.links = {{100.0}};
  p.connections = {{{0}, 3.0}, {{0}, 5.0}};
  const auto result = waterfill(p);
  EXPECT_NEAR(result.rates[0], 3.0, 1e-9);
  EXPECT_NEAR(result.rates[1], 5.0, 1e-9);
  EXPECT_EQ(result.bottleneck_of[0], kDemandLimited);
  EXPECT_EQ(result.bottleneck_of[1], kDemandLimited);
}

TEST(Waterfill, EmptyProblem) {
  Problem p;
  const auto result = waterfill(p);
  EXPECT_TRUE(result.rates.empty());
}

TEST(Waterfill, ParkingLot) {
  // Classic parking-lot: n local connections each crossing one link, one
  // long connection crossing all. Every link cap 2. Long gets 1, locals 1.
  Problem p;
  const std::size_t n = 5;
  for (std::size_t i = 0; i < n; ++i) p.links.push_back({2.0});
  ProblemConnection longest;
  for (std::size_t i = 0; i < n; ++i) {
    longest.path.push_back(i);
    p.connections.push_back({{i}, kInfiniteDemand});
  }
  p.connections.push_back(longest);
  const auto result = waterfill(p);
  for (std::size_t i = 0; i < n + 1; ++i) EXPECT_NEAR(result.rates[i], 1.0, 1e-9);
}

TEST(MaxminOptimal, AcceptsWaterfillOutput) {
  const Problem p = chain_problem();
  const auto result = waterfill(p);
  EXPECT_TRUE(is_maxmin_optimal(p, result.rates));
}

TEST(MaxminOptimal, RejectsNonOptimalFeasible) {
  const Problem p = chain_problem();
  // Feasible but A starved: A could grow without hurting anyone.
  EXPECT_TRUE(is_feasible(p, {1.0, 2.0, 2.0}));
  EXPECT_FALSE(is_maxmin_optimal(p, {1.0, 2.0, 2.0}));
}

TEST(MaxminOptimal, RejectsInfeasible) {
  const Problem p = chain_problem();
  EXPECT_FALSE(is_feasible(p, {20.0, 2.0, 2.0}));
  EXPECT_FALSE(is_maxmin_optimal(p, {20.0, 2.0, 2.0}));
}

TEST(MaxminOptimal, RejectsUnfairSplit) {
  Problem p;
  p.links = {{10.0}};
  p.connections = {{{0}, kInfiniteDemand}, {{0}, kInfiniteDemand}};
  // Saturated but unfair: the 3.0 connection is not maximal at its only link.
  EXPECT_FALSE(is_maxmin_optimal(p, {7.0, 3.0}));
  EXPECT_TRUE(is_maxmin_optimal(p, {5.0, 5.0}));
}

// ---- Advertised-rate formula (Section 5.3.1) --------------------------

TEST(AdvertisedRate, NoConnectionsAdvertisesFullCapacity) {
  AdvertisedRate ar(10.0);
  EXPECT_DOUBLE_EQ(ar.recompute({}), 10.0);
}

TEST(AdvertisedRate, UnrestrictedSplitEvenly) {
  AdvertisedRate ar(12.0);
  // First recompute: previous advertised = 0, so rates {5, 7} are both
  // unrestricted -> mu = 12 / 2 = 6.
  EXPECT_DOUBLE_EQ(ar.recompute({5.0, 7.0}), 6.0);
}

TEST(AdvertisedRate, RestrictedConnectionsExcluded) {
  AdvertisedRate ar(12.0);
  (void)ar.recompute({5.0, 7.0});  // mu = 6
  // Second recompute with {2, 7}: 2 <= 6 restricted; mu = (12-2)/1 = 10.
  EXPECT_DOUBLE_EQ(ar.recompute({2.0, 7.0}), 10.0);
}

TEST(AdvertisedRate, AllRestrictedUsesMaxFormula) {
  AdvertisedRate ar(12.0);
  (void)ar.recompute({5.0, 7.0});  // mu = 6
  // Wait for mu high enough that everything is restricted:
  (void)ar.recompute({2.0, 3.0});  // both <= previous mu=6 -> restricted
  // mu = b' - b'_R + max = 12 - 5 + 3 = 10
  EXPECT_DOUBLE_EQ(ar.current(), 10.0);
}

TEST(AdvertisedRate, OneRecalculationMatchesFixedPoint) {
  // Property check over a grid of recorded-rate combinations: the paper's
  // "second re-calculation is sufficient" claim means recompute() (at most
  // one re-marking) must land where the iterated fixed point lands, when
  // seeded from the same previous advertised rate trajectory.
  for (double cap : {4.0, 10.0, 25.0}) {
    AdvertisedRate ar(cap);
    for (double r1 : {0.0, 1.0, 3.0, 8.0}) {
      for (double r2 : {0.5, 2.0, 6.0}) {
        for (double r3 : {0.0, 4.0, 12.0}) {
          const double mu = ar.recompute({r1, r2, r3});
          EXPECT_GE(mu, 0.0) << cap << " " << r1 << " " << r2 << " " << r3;
        }
      }
    }
    // The fixed point from scratch is always reproduced by iterating
    // recompute() twice from a cold state.
    const std::vector<double> rates{1.0, 5.0, 9.0};
    AdvertisedRate cold(cap);
    (void)cold.recompute(rates);
    const double twice = cold.recompute(rates);
    EXPECT_NEAR(twice, cold.fixed_point(rates), 1e-9);
  }
}

TEST(DivideExcess, SingleLinkWaterfillSemantics) {
  // Equal unlimited headrooms split evenly.
  EXPECT_EQ(divide_excess(9.0, {100.0, 100.0, 100.0}),
            (std::vector<double>{3.0, 3.0, 3.0}));
  // A demand-limited connection frees its slack for the others.
  const std::vector<double> shares = divide_excess(10.0, {2.0, 100.0});
  ASSERT_EQ(shares.size(), 2u);
  EXPECT_DOUBLE_EQ(shares[0], 2.0);
  EXPECT_DOUBLE_EQ(shares[1], 8.0);
  // Degenerate inputs: no claimants, no excess, zero headroom.
  EXPECT_TRUE(divide_excess(5.0, {}).empty());
  EXPECT_EQ(divide_excess(0.0, {4.0, 4.0}), (std::vector<double>{0.0, 0.0}));
  EXPECT_EQ(divide_excess(6.0, {0.0, 3.0}), (std::vector<double>{0.0, 3.0}));
}

TEST(DivideExcess, MatchesFullWaterfillOnSingleLink) {
  const std::vector<double> headrooms{1.0, 4.0, 7.5, 2.5};
  const double excess = 9.0;
  Problem p;
  p.links = {{excess}};
  for (double h : headrooms) p.connections.push_back({{0}, h});
  const WaterfillResult reference = waterfill(p);
  EXPECT_EQ(divide_excess(excess, headrooms), reference.rates);
}

TEST(AdvertisedRate, FixedPointOnKnownCase) {
  AdvertisedRate ar(12.0);
  // rates {2, 7}: fixed point marks 2 restricted -> mu = 10; 7 <= 10 would
  // re-restrict 7 -> all restricted -> mu = 12-9+7 = 10; stable at 10.
  EXPECT_DOUBLE_EQ(ar.fixed_point({2.0, 7.0}), 10.0);
}

}  // namespace
}  // namespace imrm::maxmin
