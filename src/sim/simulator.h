// Discrete-event simulator driver.
//
// All experiments in the reproduction are driven by this loop: schedule
// callbacks, run until a horizon (or until the queue drains), observe state.
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>

#include "obs/tracer.h"
#include "sim/event_queue.h"
#include "sim/time.h"

namespace imrm::obs {
class Registry;
}  // namespace imrm::obs

namespace imrm::sim {

class Simulator {
 public:
  Simulator() = default;

  /// Current simulation time. Starts at zero and only moves forward.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `f` at absolute time `at` (must be >= now()). Forwards the
  /// callable straight into the event queue's slot storage — no intermediate
  /// Callback temporaries on the hot path.
  template <typename F>
  EventId at(SimTime t, F&& f) {
    assert(t >= now_ && "cannot schedule in the past");
    return queue_.schedule(t, std::forward<F>(f));
  }

  /// Schedules `f` after a relative delay.
  template <typename F>
  EventId after(Duration delay, F&& f) {
    return at(now_ + delay, std::forward<F>(f));
  }

  /// Schedules `cb` every `period`, starting at now() + period, until
  /// `horizon`. Returns the id of the *first* occurrence (each firing
  /// reschedules itself, so cancel() only stops the next pending firing).
  EventId every(Duration period, SimTime horizon, EventQueue::Callback cb);

  void cancel(EventId id) { queue_.cancel(id); }

  /// Runs events until the queue drains or the next event is past `horizon`.
  /// Returns the number of events fired.
  std::uint64_t run_until(SimTime horizon);

  /// Runs until the queue drains completely.
  std::uint64_t run() { return run_until(SimTime::infinity()); }

  /// Fires exactly one event if any is pending. Returns false when idle.
  bool step();

  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  /// Time of the earliest pending event; SimTime::infinity() when idle.
  [[nodiscard]] SimTime next_event_time() const { return queue_.next_time(); }
  [[nodiscard]] std::uint64_t events_fired() const { return fired_; }
  [[nodiscard]] const EventQueue::Stats& queue_stats() const { return queue_.stats(); }
  [[nodiscard]] std::uint64_t queue_next_seq() const { return queue_.next_seq(); }

  /// Checkpoint restore of the driver core: clock, fired-event total, queue
  /// statistics and FIFO sequence counter. Call after re-arming any pending
  /// events (their schedule() calls inflate the queue counters; the saved
  /// values already include them). The restored clock makes subsequent at()
  /// assertions and after() offsets behave exactly as in the original run.
  void restore_core(SimTime now, std::uint64_t fired, const EventQueue::Stats& stats,
                    std::uint64_t next_seq) {
    now_ = now;
    fired_ = fired;
    queue_.restore_stats(stats, next_seq);
  }

  /// Attaches the run's structured tracer; modules driven by this simulator
  /// pick it up via tracer() so one attach point instruments the stack.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  [[nodiscard]] obs::Tracer* tracer() const { return tracer_; }

  /// Exports driver/queue totals (events fired, schedule/cancel churn, peak
  /// queue depth) into `registry`. Adds the current totals: call once per
  /// run, when the simulation is done.
  void collect_metrics(obs::Registry& registry) const;

 private:
  EventQueue queue_;
  SimTime now_ = SimTime::zero();
  std::uint64_t fired_ = 0;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace imrm::sim
