#include "net/link_state.h"

#include <algorithm>
#include <cassert>

namespace imrm::net {

void LinkState::add_connection(ConnectionId id, qos::BandwidthRange bounds,
                               qos::BitsPerSecond allocated, qos::Bits buffer) {
  assert(bounds.valid());
  assert(allocated >= bounds.b_min && allocated <= bounds.b_max);
  assert(buffer >= 0.0);
  const auto [it, inserted] = shares_.emplace(id, Share{bounds, allocated, buffer});
  assert(inserted && "connection already on link");
  (void)it;
  sum_b_min_ += bounds.b_min;
  buffer_reserved_ += buffer;
}

void LinkState::remove_connection(ConnectionId id) {
  const auto it = shares_.find(id);
  assert(it != shares_.end());
  sum_b_min_ -= it->second.bounds.b_min;
  if (sum_b_min_ < 0.0) sum_b_min_ = 0.0;  // absorb float drift
  buffer_reserved_ -= it->second.buffer;
  if (buffer_reserved_ < 0.0) buffer_reserved_ = 0.0;
  shares_.erase(it);
}

void LinkState::set_allocated(ConnectionId id, qos::BitsPerSecond allocated) {
  auto& share = shares_.at(id);
  assert(allocated >= share.bounds.b_min - 1e-9 && allocated <= share.bounds.b_max + 1e-9);
  share.allocated = std::clamp(allocated, share.bounds.b_min, share.bounds.b_max);
}

void LinkState::release_advance(qos::BitsPerSecond amount) {
  advance_reserved_ -= amount;
  if (advance_reserved_ < 0.0) advance_reserved_ = 0.0;
}

qos::BitsPerSecond LinkState::sum_allocated() const {
  qos::BitsPerSecond total = 0.0;
  for (const auto& [id, share] : shares_) total += share.allocated;
  return total;
}

std::vector<ConnectionId> LinkState::connection_ids() const {
  std::vector<ConnectionId> ids;
  ids.reserve(shares_.size());
  for (const auto& [id, share] : shares_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());  // deterministic iteration for sim runs
  return ids;
}

}  // namespace imrm::net
