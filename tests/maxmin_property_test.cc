// Property tests for max-min fairness: the water-filling output must be the
// unique lexicographically-maximal feasible allocation, and the classic
// bottleneck characterizations of Section 5.2 must hold.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "maxmin/problem.h"
#include "maxmin/waterfill.h"

namespace imrm::maxmin {
namespace {

Problem random_problem(std::mt19937_64& rng) {
  std::uniform_int_distribution<int> n_links_dist(1, 6);
  std::uniform_int_distribution<int> n_conns_dist(2, 10);
  std::uniform_real_distribution<double> cap(1.0, 30.0);
  Problem p;
  const int n_links = n_links_dist(rng);
  for (int i = 0; i < n_links; ++i) p.links.push_back({cap(rng)});
  const int n_conns = n_conns_dist(rng);
  for (int c = 0; c < n_conns; ++c) {
    std::uniform_int_distribution<int> start_dist(0, n_links - 1);
    const int start = start_dist(rng);
    std::uniform_int_distribution<int> end_dist(start, n_links - 1);
    const int end = end_dist(rng);
    ProblemConnection conn;
    for (int li = start; li <= end; ++li) conn.path.push_back(std::size_t(li));
    if (rng() % 4 == 0) conn.demand = cap(rng) / 2.0;
    p.connections.push_back(std::move(conn));
  }
  return p;
}

std::vector<double> sorted(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v;
}

/// a lexicographically dominates b if, comparing sorted ascending, the first
/// differing element of a is larger.
bool lex_geq(const std::vector<double>& a, const std::vector<double>& b) {
  const auto sa = sorted(a), sb = sorted(b);
  for (std::size_t i = 0; i < sa.size(); ++i) {
    if (sa[i] > sb[i] + 1e-9) return true;
    if (sa[i] < sb[i] - 1e-9) return false;
  }
  return true;  // equal
}

class WaterfillProperties : public ::testing::TestWithParam<int> {};

TEST_P(WaterfillProperties, OutputIsFeasibleAndOptimal) {
  std::mt19937_64 rng{std::uint64_t(GetParam())};
  for (int round = 0; round < 20; ++round) {
    const Problem p = random_problem(rng);
    const auto result = waterfill(p);
    EXPECT_TRUE(is_feasible(p, result.rates));
    EXPECT_TRUE(is_maxmin_optimal(p, result.rates));
  }
}

TEST_P(WaterfillProperties, LexicographicallyDominatesRandomFeasible) {
  std::mt19937_64 rng{std::uint64_t(GetParam()) + 1000};
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (int round = 0; round < 10; ++round) {
    const Problem p = random_problem(rng);
    const auto optimal = waterfill(p).rates;
    // Generate feasible competitors by random scaling of the optimum and
    // random redistribution, then project back to feasibility.
    for (int alt = 0; alt < 10; ++alt) {
      std::vector<double> candidate(optimal.size());
      for (std::size_t i = 0; i < candidate.size(); ++i) {
        candidate[i] = optimal[i] * unit(rng);
      }
      ASSERT_TRUE(is_feasible(p, candidate));  // scaled-down stays feasible
      EXPECT_TRUE(lex_geq(optimal, candidate));
    }
  }
}

TEST_P(WaterfillProperties, EveryUnsatisfiedConnectionHasBottleneck) {
  std::mt19937_64 rng{std::uint64_t(GetParam()) + 2000};
  for (int round = 0; round < 20; ++round) {
    const Problem p = random_problem(rng);
    const auto result = waterfill(p);
    const auto by_link = p.connections_by_link();
    for (std::size_t ci = 0; ci < p.connections.size(); ++ci) {
      if (result.rates[ci] >= p.connections[ci].demand - 1e-9) {
        EXPECT_EQ(result.bottleneck_of[ci], kDemandLimited);
        continue;
      }
      const LinkIndex li = result.bottleneck_of[ci];
      ASSERT_NE(li, kDemandLimited) << "unsatisfied connection without bottleneck";
      // The bottleneck is saturated...
      double load = 0.0;
      for (ConnIndex other : by_link[li]) load += result.rates[other];
      EXPECT_NEAR(load, p.links[li].excess_capacity, 1e-6);
      // ...and the connection's rate is maximal there ("a network bottleneck
      // link is necessarily a connection bottleneck for all connections
      // passing through it").
      for (ConnIndex other : by_link[li]) {
        EXPECT_LE(result.rates[other], result.rates[ci] + 1e-6);
      }
    }
  }
}

TEST_P(WaterfillProperties, ScaleInvariance) {
  // Scaling every capacity and demand by k scales every rate by k.
  std::mt19937_64 rng{std::uint64_t(GetParam()) + 3000};
  const Problem p = random_problem(rng);
  Problem scaled = p;
  const double k = 7.5;
  for (auto& l : scaled.links) l.excess_capacity *= k;
  for (auto& c : scaled.connections) {
    if (c.demand != kInfiniteDemand) c.demand *= k;
  }
  const auto base = waterfill(p).rates;
  const auto big = waterfill(scaled).rates;
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_NEAR(big[i], base[i] * k, 1e-6);
  }
}

TEST_P(WaterfillProperties, CapacityMonotonicity) {
  // Raising one link's capacity never lowers the smallest allocation.
  std::mt19937_64 rng{std::uint64_t(GetParam()) + 4000};
  const Problem p = random_problem(rng);
  const auto before = waterfill(p).rates;
  Problem more = p;
  more.links[0].excess_capacity += 5.0;
  const auto after = waterfill(more).rates;
  const double min_before = *std::min_element(before.begin(), before.end());
  const double min_after = *std::min_element(after.begin(), after.end());
  EXPECT_GE(min_after, min_before - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WaterfillProperties, ::testing::Range(1, 9));

TEST(WaterfillEdge, ConnectionWithZeroDemand) {
  Problem p;
  p.links = {{10.0}};
  p.connections = {{{0}, 0.0}, {{0}, kInfiniteDemand}};
  const auto result = waterfill(p);
  EXPECT_DOUBLE_EQ(result.rates[0], 0.0);
  EXPECT_DOUBLE_EQ(result.rates[1], 10.0);
}

TEST(WaterfillEdge, ManyIdenticalConnections) {
  Problem p;
  p.links = {{100.0}};
  for (int i = 0; i < 1000; ++i) p.connections.push_back({{0}, kInfiniteDemand});
  const auto result = waterfill(p);
  for (double r : result.rates) EXPECT_NEAR(r, 0.1, 1e-9);
}

}  // namespace
}  // namespace imrm::maxmin
