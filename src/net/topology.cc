#include "net/topology.h"

#include <cassert>
#include <utility>

namespace imrm::net {

NodeId Topology::add_node(NodeKind kind, std::string name) {
  const NodeId id{static_cast<NodeId::underlying>(nodes_.size())};
  if (name.empty()) name = "n" + std::to_string(id.value());
  nodes_.push_back(Node{id, kind, std::move(name)});
  adjacency_.emplace_back();
  return id;
}

LinkId Topology::add_link(NodeId from, NodeId to, qos::BitsPerSecond capacity,
                          qos::Bits buffer_capacity, double error_prob, bool wireless) {
  assert(from.value() < nodes_.size() && to.value() < nodes_.size());
  assert(capacity > 0.0);
  const LinkId id{static_cast<LinkId::underlying>(links_.size())};
  links_.push_back(Link{id, from, to, capacity, buffer_capacity, error_prob, wireless});
  adjacency_[from.value()].push_back(id);
  return id;
}

LinkId Topology::add_duplex(NodeId a, NodeId b, qos::BitsPerSecond capacity,
                            qos::Bits buffer_capacity, double error_prob, bool wireless) {
  const LinkId forward = add_link(a, b, capacity, buffer_capacity, error_prob, wireless);
  add_link(b, a, capacity, buffer_capacity, error_prob, wireless);
  return forward;
}

}  // namespace imrm::net
