#include "sim/sharded_runner.h"

#include <algorithm>
#include <utility>

namespace imrm::sim {

namespace {
// Spin iterations at the burst barrier before yielding the core. Kept small:
// on hosts with fewer cores than workers (the CI box has one) a spinning
// waiter is stealing exactly the cycles the serializer needs.
constexpr int kBarrierSpinLimit = 64;
}  // namespace

ShardedRunner::ShardedRunner(const Config& config) : config_(config) {
  assert(config_.domains >= 1 && "ShardedRunner needs at least one domain");
  assert(config_.window > Duration::zero() && "window must be positive");
  sims_.reserve(config_.domains);
  transports_.reserve(config_.domains);
  for (std::size_t d = 0; d < config_.domains; ++d) {
    sims_.push_back(std::make_unique<Simulator>());
    transports_.push_back(std::make_unique<BoundaryTransport>(*this, d));
  }
  outboxes_.resize(config_.domains);
  inject_.resize(config_.domains);

  std::size_t workers = config_.workers;
  if (workers == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    workers = hw == 0 ? 1 : hw;
  }
  worker_count_ = std::min(workers, config_.domains);
  if (worker_count_ > 1) {
    pool_.reserve(worker_count_);
    for (std::size_t w = 0; w < worker_count_; ++w) {
      pool_.emplace_back([this, w] { worker_loop(w); });
    }
  }
}

ShardedRunner::~ShardedRunner() {
  if (!pool_.empty()) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      shutdown_ = true;
    }
    round_cv_.notify_all();
    for (std::thread& t : pool_) t.join();
  }
}

void ShardedRunner::post(std::size_t from, std::size_t to, Duration latency,
                         EventQueue::Callback deliver) {
  assert(from < sims_.size() && to < sims_.size());
  assert(latency >= config_.window &&
         "cross-domain latency below the conservative window would let a "
         "message land inside an already-executed round");
  outboxes_[from].push_back(
      Envelope{sims_[from]->now() + latency, to, std::move(deliver)});
}

void ShardedRunner::arm_profiling() {
  profile_active_ = config_.profiler != nullptr && config_.profiler->enabled();
  if (!profile_active_) return;
  if (wall_epoch_ns_ == 0) wall_epoch_ns_ = obs::Profiler::now_ns();
  if (ph_exchange_ == obs::kInvalidPhase) {
    ph_exchange_ = config_.profiler->intern("shard.exchange");
    ph_window_ = config_.profiler->intern("shard.window");
  }
  if (lanes_.empty()) {
    lanes_.resize(worker_count_);
    busy_scratch_.assign(worker_count_, BusySlot{});
  }
  if (config_.tracer != nullptr && config_.tracer->enabled() && !lanes_declared_) {
    lanes_declared_ = true;
    config_.tracer->declare_process(kShardLanePid, "imrm-shard-lanes (wall clock)");
    tr_busy_ = config_.tracer->intern("shard.busy", "wall");
    tr_barrier_ = config_.tracer->intern("shard.barrier", "wall");
  }
}

std::size_t ShardedRunner::next_batch_budget() const {
  return config_.batch > 0 ? config_.batch : auto_batch_;
}

void ShardedRunner::update_batch_controller(std::uint64_t dispatch_wall_ns) {
  if (config_.batch > 0) return;
  if (profile_active_) {
    // Wall-fed steering off the same measurement the profiler records as the
    // shard.window phase: grow while dispatches come back quickly, back off
    // once a burst keeps the coordinator (progress meter, caller polling)
    // dark for tens of milliseconds. Legal to consult the wall clock here —
    // batch size affects scheduling only, never simulation results.
    constexpr std::uint64_t kGrowBelowNs = 5'000'000;     // 5 ms
    constexpr std::uint64_t kShrinkAboveNs = 50'000'000;  // 50 ms
    if (dispatch_wall_ns < kGrowBelowNs) {
      auto_batch_ = std::min(auto_batch_ * 2, kAutoBatchMax);
    } else if (dispatch_wall_ns > kShrinkAboveNs) {
      auto_batch_ = std::max(auto_batch_ / 2, kAutoBatchMin);
    }
  } else if (burst_exhausted_) {
    // No clocks to consult: exponential ramp while bursts keep filling their
    // budget with events still pending. Horizon- or quiescence-terminated
    // bursts leave the budget alone.
    auto_batch_ = std::min(auto_batch_ * 2, kAutoBatchMax);
  }
}

std::uint64_t ShardedRunner::run_until(SimTime horizon) {
  const std::uint64_t before = events_fired();
  // Latched once per call, before any dispatch: workers pick it up through
  // the dispatch barrier. Clock reads below happen only when active.
  arm_profiling();
  run_horizon_ = horizon;
  // Dispatches run back to back, so the previous dispatch's end timestamp
  // doubles as the next dispatch's prep start — one clock read per dispatch.
  std::uint64_t t_prev = profile_active_ ? obs::Profiler::now_ns() : 0;
  // Inject messages posted during setup (or left over from a previous
  // run_until call) before looking at queue heads: an injected message may
  // well be the earliest pending event. Mid-run, the burst serializer has
  // always just done this, so only the loop entry needs it.
  exchange();
  SimTime min_next = SimTime::infinity();
  for (const auto& sim : sims_) {
    min_next = std::min(min_next, sim->next_event_time());
  }
  while (min_next != SimTime::infinity() && min_next <= horizon) {
    // The earliest event anywhere is at min_next, so every event fired this
    // window has time >= min_next and every message it posts delivers at
    // >= min_next + window — strictly after the window. Idle stretches skip
    // ahead in one hop. The target depends only on event times and the
    // horizon, never on the worker count or batch size, so window
    // boundaries are invariant across both.
    SimTime target = min_next + config_.window;
    if (target > horizon) target = horizon;
    std::uint64_t t1 = 0;
    if (profile_active_) {
      for (BusySlot& slot : busy_scratch_) slot.ns = 0;
      t1 = obs::Profiler::now_ns();
      sub_start_ns_ = t1;
    }
    if (worker_count_ <= 1) {
      sub_target_ = target;
      burst_budget_ = next_batch_budget();
      burst_windows_ = 0;
      burst_done_ = false;
      burst_exhausted_ = false;
      arrived_.store(1, std::memory_order_relaxed);
      run_burst(0);
    } else {
      {
        // Burst inputs written under the mutex so the round_cv_ wakeup
        // publishes them to every worker.
        const std::lock_guard<std::mutex> lock(mutex_);
        sub_target_ = target;
        burst_budget_ = next_batch_budget();
        burst_windows_ = 0;
        burst_done_ = false;
        burst_exhausted_ = false;
        arrived_.store(worker_count_, std::memory_order_relaxed);
        running_ = worker_count_;
        ++round_;
      }
      round_cv_.notify_all();
      std::unique_lock<std::mutex> lock(mutex_);
      done_cv_.wait(lock, [&] { return running_ == 0; });
    }
    ++stats_.dispatches;
    std::uint64_t dispatch_wall = 0;
    if (profile_active_) {
      const std::uint64_t t2 = obs::Profiler::now_ns();
      dispatch_wall = t2 - t1;
      account_dispatch(t_prev, t1, t2);
      t_prev = t2;
    }
    update_batch_controller(dispatch_wall);
    min_next = burst_min_next_;
    if (config_.progress != nullptr && config_.progress->armed()) {
      const double h = horizon.to_seconds();
      const double frac =
          h > 0.0 ? std::min(1.0, sub_target_.to_seconds() / h) : 1.0;
      config_.progress->maybe_emit(frac, events_fired(), last_straggler_);
    }
  }
  return events_fired() - before;
}

void ShardedRunner::run_burst(std::size_t worker) {
  std::uint64_t phase = sub_phase_.load(std::memory_order_acquire);
  for (;;) {
    run_domains(worker, sub_target_);
    if (arrived_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Serializer: every worker has finished the sub-window (the acq_rel
      // RMW chain on arrived_ orders their writes before this point). Run
      // the canonical exchange + scan, publish the next target or the
      // burst-done verdict, reset the barrier, release.
      serialize_sub_window();
      arrived_.store(worker_count_, std::memory_order_relaxed);
      ++phase;
      sub_phase_.fetch_add(1, std::memory_order_release);
    } else {
      int spins = 0;
      while (sub_phase_.load(std::memory_order_acquire) == phase) {
        if (++spins >= kBarrierSpinLimit) {
          std::this_thread::yield();
          spins = 0;
        }
      }
      ++phase;
    }
    if (burst_done_) return;
  }
}

void ShardedRunner::serialize_sub_window() {
  ++stats_.windows;
  ++burst_windows_;
  const std::uint64_t msgs_before = stats_.boundary_messages;
  exchange();
  SimTime min_next = SimTime::infinity();
  for (const auto& sim : sims_) {
    min_next = std::min(min_next, sim->next_event_time());
  }
  if (profile_active_) {
    const std::uint64_t now = obs::Profiler::now_ns();
    window_hist_.record(double(now - sub_start_ns_));
    messages_hist_.record(double(stats_.boundary_messages - msgs_before));
    sub_start_ns_ = now;
    ++profiled_windows_;
  }
  const bool drained = min_next == SimTime::infinity() || min_next > run_horizon_;
  if (drained || burst_windows_ >= burst_budget_) {
    burst_exhausted_ = !drained;
    burst_min_next_ = min_next;
    burst_done_ = true;
    return;
  }
  SimTime target = min_next + config_.window;
  if (target > run_horizon_) target = run_horizon_;
  sub_target_ = target;
}

void ShardedRunner::account_dispatch(std::uint64_t prep_start_ns,
                                     std::uint64_t dispatch_start_ns,
                                     std::uint64_t dispatch_end_ns) {
  // Idle: the inter-dispatch stretch (controller update, progress poll,
  // stats) during which no lane executes events. Charged to every lane —
  // all of them are parked behind the coordinator. Inside the dispatch
  // span, each lane's wall splits into measured busy (accumulated across
  // the burst's sub-windows) and barrier wait; together the three lanes sum
  // to the profiled wall exactly, which the satellite-1 regression asserts.
  const std::uint64_t idle = dispatch_start_ns - prep_start_ns;
  const std::uint64_t span = dispatch_end_ns - dispatch_start_ns;
  batch_hist_.record(double(burst_windows_));
  std::size_t straggler = 0;
  for (std::size_t w = 0; w < lanes_.size(); ++w) {
    // A worker's accumulated span nests inside the coordinator's; clamp
    // anyway so barrier_wait can never underflow on clock jitter.
    const std::uint64_t busy = std::min(busy_scratch_[w].ns, span);
    lanes_[w].busy_ns += busy;
    lanes_[w].barrier_wait_ns += span - busy;
    lanes_[w].idle_ns += idle;
    if (busy_scratch_[w].ns > busy_scratch_[straggler].ns) straggler = w;
  }
  ++lanes_[straggler].straggler_windows;
  ++profiled_dispatches_;
  profiled_wall_ns_ += idle + span;
  last_straggler_ = int(straggler);
  config_.profiler->record(ph_exchange_, idle);
  config_.profiler->record(ph_window_, span);
  if (lanes_declared_ && config_.tracer->enabled()) {
    const double prep_us = double(prep_start_ns - wall_epoch_ns_) / 1000.0;
    const double dispatch_us = double(dispatch_start_ns - wall_epoch_ns_) / 1000.0;
    config_.tracer->complete_wall(prep_us, double(idle) / 1000.0, tr_barrier_,
                                  kShardLanePid, std::uint32_t(lanes_.size()),
                                  double(burst_windows_));
    for (std::size_t w = 0; w < lanes_.size(); ++w) {
      config_.tracer->complete_wall(dispatch_us, double(busy_scratch_[w].ns) / 1000.0,
                                    tr_busy_, kShardLanePid, std::uint32_t(w),
                                    w == straggler ? 1.0 : 0.0);
    }
  }
}

void ShardedRunner::export_profile(obs::ProfileSnapshot& out) const {
  if (lanes_.empty()) return;  // never ran with profiling enabled
  const auto sample_of = [](const char* name, const obs::Histogram& h) {
    return obs::HistogramSample{name,    h.spec(), h.count(),  h.underflow(),
                                h.overflow(), h.sum(),  h.min(), h.max(),
                                h.buckets()};
  };
  out.shards = lanes_;
  out.barriers = profiled_dispatches_;
  out.windows = profiled_windows_;
  out.profiled_wall_ns = profiled_wall_ns_;
  out.boundary_messages = stats_.boundary_messages;
  out.boundary_bytes = stats_.boundary_messages * sizeof(Envelope);
  out.window_ns = sample_of("window_ns", window_hist_);
  out.messages_per_barrier = sample_of("messages_per_barrier", messages_hist_);
  out.batch_windows = sample_of("batch_windows", batch_hist_);
}

std::uint64_t ShardedRunner::events_fired() const {
  std::uint64_t total = 0;
  for (const auto& sim : sims_) total += sim->events_fired();
  return total;
}

void ShardedRunner::run_domains(std::size_t worker, SimTime target) {
  // Contiguous block assignment keeps each worker's domains adjacent in
  // memory; worker_count_ == 1 degenerates to "worker 0 owns everything".
  const std::size_t d0 = worker * sims_.size() / worker_count_;
  const std::size_t d1 = (worker + 1) * sims_.size() / worker_count_;
  if (profile_active_) {
    const std::uint64_t t0 = obs::Profiler::now_ns();
    for (std::size_t d = d0; d < d1; ++d) sims_[d]->run_until(target);
    // Accumulate: a burst runs many sub-windows between coordinator reads,
    // and overwriting here (the ISSUE 10 satellite bug) would credit only
    // the last sub-window as busy, booking the rest of an otherwise fully
    // busy burst under barrier_wait.
    busy_scratch_[worker].ns += obs::Profiler::now_ns() - t0;
    return;
  }
  for (std::size_t d = d0; d < d1; ++d) sims_[d]->run_until(target);
}

void ShardedRunner::worker_loop(std::size_t worker) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      round_cv_.wait(lock, [&] { return shutdown_ || round_ != seen; });
      if (shutdown_) return;
      seen = round_;
    }
    run_burst(worker);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (--running_ == 0) done_cv_.notify_one();
    }
  }
}

void ShardedRunner::exchange() {
  // Gather per destination. Visiting source outboxes in domain order means
  // each destination's list starts out ordered by (source domain, posting
  // serial); the stable sort by delivery time then yields the canonical
  // (deliver time, source domain, serial) order. Every component is a
  // partition-invariant property of the simulation, so the injection
  // sequence — and with it the destination queue's FIFO tie-breaking — is
  // identical for any worker count.
  bool any = false;
  for (std::size_t src = 0; src < outboxes_.size(); ++src) {
    for (Envelope& e : outboxes_[src]) {
      inject_[e.to].push_back(std::move(e));
      any = true;
    }
    outboxes_[src].clear();
  }
  if (!any) return;
  for (std::size_t dest = 0; dest < inject_.size(); ++dest) {
    auto& pending = inject_[dest];
    if (pending.empty()) continue;
    std::stable_sort(pending.begin(), pending.end(),
                     [](const Envelope& a, const Envelope& b) {
                       return a.deliver_time < b.deliver_time;
                     });
    for (Envelope& e : pending) {
      sims_[dest]->at(e.deliver_time, std::move(e.callback));
      ++stats_.boundary_messages;
    }
    pending.clear();
  }
}

}  // namespace imrm::sim
