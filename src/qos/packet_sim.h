// Packet-level scheduling simulation (validation substrate for Table 2).
//
// Table 2's admission control promises per-hop and end-to-end delay bounds
// analytically, assuming the links run a guaranteed-rate scheduler (the
// paper names WFQ and RCSP). This module provides the packet-level pieces
// to check those bounds empirically:
//
//  * TokenBucketSource — a (sigma, rho) regulated traffic source (greedy
//    worst-case burst or randomized), emitting packets of size <= L_max;
//  * ScheduledLink — a link of capacity C running the Virtual Clock
//    discipline over per-flow reserved rates. Virtual Clock provides the
//    same worst-case delay as PGPS/WFQ for token-bucket constrained flows
//    (Figueira & Pasquale), so the Table 2 bounds apply:
//      single hop:  D <= (sigma + L_max)/rho + L_max/C
//      n-hop path:  D <= (sigma + n L_max)/rho + sum_i L_max/C_i  (= d_min).
//
// Links chain via a forwarding callback, so multi-hop paths are built by
// plugging links together; per-flow delay statistics accumulate at the
// final sink.
//
// Per-flow state is kept in dense FlowId-indexed vectors (flows in the
// experiments are numbered from a small dense range), so the per-packet
// path performs no associative lookups and no allocations.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <queue>
#include <vector>

#include "fault/fault_model.h"
#include "qos/flow_spec.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "stats/timeseries.h"

namespace imrm::qos {

using FlowId = std::uint32_t;

struct Packet {
  FlowId flow = 0;
  Bits size = 0.0;
  sim::SimTime created;         // departure from the source
  sim::SimTime entered_link;    // arrival at the current link
};

/// A link running Virtual Clock scheduling with per-flow reserved rates.
class ScheduledLink {
 public:
  using Forward = std::function<void(Packet)>;

  ScheduledLink(sim::Simulator& simulator, BitsPerSecond capacity, Forward forward)
      : simulator_(&simulator), capacity_(capacity), forward_(std::move(forward)) {}

  /// Registers a flow with its reserved rate rho (its guaranteed share).
  /// Re-registering an existing flow delegates to set_rate(): the flow's
  /// Virtual Clock stamp survives, so packets stamped after a mid-run rate
  /// change can never sort ahead of the flow's still-queued packets.
  void add_flow(FlowId flow, BitsPerSecond reserved_rate);

  /// Changes a registered flow's reserved rate in place. The monotone
  /// auxVC stamp is preserved (only the per-packet increment L/rho changes),
  /// which keeps per-flow FIFO order across renegotiations; reserved_total_
  /// stays exact.
  void set_rate(FlowId flow, BitsPerSecond reserved_rate);

  /// Accepts a packet; it departs after queueing + transmission.
  void enqueue(Packet packet);

  [[nodiscard]] std::size_t packets_served() const { return served_; }
  [[nodiscard]] BitsPerSecond capacity() const { return capacity_; }
  /// Sum of reserved rates (admission sanity: must stay <= capacity for the
  /// bounds to hold). Maintained incrementally — O(1).
  [[nodiscard]] BitsPerSecond reserved_total() const { return reserved_total_; }

 private:
  struct FlowEntry {
    BitsPerSecond rate = 0.0;   // 0 = unregistered
    double virtual_clock = 0.0;  // auxVC
  };

  struct QueuedPacket {
    double stamp;        // Virtual Clock service tag
    std::uint64_t seq;   // FIFO tie-break
    Packet packet;
    bool operator<(const QueuedPacket& rhs) const {
      if (stamp != rhs.stamp) return stamp > rhs.stamp;  // min-heap
      return seq > rhs.seq;
    }
  };

  void serve_next();

  sim::Simulator* simulator_;
  BitsPerSecond capacity_;
  Forward forward_;
  std::vector<FlowEntry> flows_;  // dense, indexed by FlowId
  BitsPerSecond reserved_total_ = 0.0;
  std::priority_queue<QueuedPacket> queue_;
  bool busy_ = false;
  std::uint64_t next_seq_ = 0;
  std::size_t served_ = 0;
};

/// A link running RCSP — rate-controlled static priority (the paper's
/// second discipline, Table 2 footnote 7). Each flow passes a rate
/// regulator that holds packet k until max(arrival, eligible_{k-1} + L/rho);
/// eligible packets are served from static-priority FIFO queues. Unlike the
/// work-conserving Virtual Clock link, RCSP re-paces bursts: a greedy burst
/// leaves the link at rate rho even when the link is otherwise idle, which
/// is exactly the jitter control the paper's buffer formulas rely on.
class RcspLink {
 public:
  using Forward = std::function<void(Packet)>;

  RcspLink(sim::Simulator& simulator, BitsPerSecond capacity, Forward forward)
      : simulator_(&simulator), capacity_(capacity), forward_(std::move(forward)) {}

  /// Registers a flow; lower `priority` values are served first.
  /// Re-registering an existing flow delegates to set_rate(): the
  /// regulator's pacing debt (last_eligible) survives, so a renegotiating
  /// flow cannot burst through the rate controller.
  void add_flow(FlowId flow, BitsPerSecond reserved_rate, int priority = 0);

  /// Changes a registered flow's rate (and optionally its priority level)
  /// in place, preserving the eligibility horizon. Packets already waiting
  /// in the regulator stay valid even if the flow's level moves: the level
  /// is resolved when the packet becomes eligible, not when it arrives.
  void set_rate(FlowId flow, BitsPerSecond reserved_rate);
  void set_rate(FlowId flow, BitsPerSecond reserved_rate, int priority);

  void enqueue(Packet packet);

  [[nodiscard]] std::size_t packets_served() const { return served_; }
  [[nodiscard]] BitsPerSecond capacity() const { return capacity_; }

 private:
  struct FlowState {
    BitsPerSecond rate = 0.0;   // 0 = unregistered
    std::uint32_t level = 0;    // index into levels_
    double last_eligible = 0.0;
  };

  struct PriorityLevel {
    int priority = 0;
    std::deque<Packet> fifo;
  };

  std::uint32_t ensure_level(int priority);
  void on_eligible(Packet packet);
  void serve_next();

  sim::Simulator* simulator_;
  BitsPerSecond capacity_;
  Forward forward_;
  std::vector<FlowState> flows_;       // dense, indexed by FlowId
  std::vector<PriorityLevel> levels_;  // sorted by priority; FIFO within
  std::size_t eligible_count_ = 0;
  bool busy_ = false;
  std::size_t served_ = 0;
};

/// A (sigma, rho) token-bucket regulated source.
class TokenBucketSource {
 public:
  struct Config {
    FlowId flow = 0;
    Bits sigma = 0.0;           // bucket depth
    BitsPerSecond rho = 0.0;    // token rate
    Bits packet_size = 0.0;     // L (constant, <= L_max)
    /// Greedy sources dump the whole bucket at start and then send at
    /// exactly rho — the worst case for delay bounds. Randomized sources
    /// draw exponential gaps but never violate the envelope.
    bool greedy = true;
  };

  TokenBucketSource(sim::Simulator& simulator, const Config& config, sim::Rng rng,
                    std::function<void(Packet)> emit)
      : simulator_(&simulator), config_(config), rng_(std::move(rng)),
        emit_(std::move(emit)), tokens_(config.sigma) {}

  /// Emits packets until the horizon.
  void start(sim::SimTime horizon);

  [[nodiscard]] std::size_t packets_sent() const { return sent_; }

 private:
  void tick(sim::SimTime horizon);
  void send_conforming(sim::SimTime now);

  sim::Simulator* simulator_;
  Config config_;
  sim::Rng rng_;
  std::function<void(Packet)> emit_;
  double tokens_;
  sim::SimTime last_refill_;
  std::size_t sent_ = 0;
};

/// A lossy wireless hop: the packet-level face of the same Gilbert-Elliott
/// loss dynamics the control plane's FaultyChannel and UnreliableCall run
/// (fault/fault_model.h is header-only, so qos takes no new library edge).
/// Splice one between a link and its downstream stage to model the air
/// interface; only the loss chain of the model applies here — delay
/// perturbations are the scheduler's business, not the hop's.
///
/// Accounting is conservation-exact by construction: every packet offered is
/// counted as exactly one of delivered or dropped, in total and per flow, so
///   offered() == delivered() + dropped()
/// holds at every instant — the property the fault tests assert under
/// adversarial burst losses. Per-flow observed loss feeds back into the
/// Section 5.1 contract via loss_rate() vs QosRequest::loss_bound.
class LossyHop {
 public:
  using Forward = std::function<void(Packet)>;

  /// Fewest offered packets a loss estimate may rest on before it counts as
  /// evidence either way: with < 20 samples a single drop swings the rate by
  /// 5+ points, so the verdict stays kInsufficient.
  static constexpr std::uint64_t kMinLossSamples = 20;

  /// Tri-state loss-bound check. The old boolean meets_loss_bound() could
  /// not tell "no data" from "clean" — zero offered packets vacuously met
  /// every bound, which is exactly the wrong default for a controller
  /// deciding whether to renegotiate.
  enum class LossVerdict { kInsufficient, kWithinBound, kViolated };

  /// One measurement window's worth of per-flow counters, harvested (and
  /// reset) by take_window(). Windowed, unlike the all-time totals: after a
  /// long clean history an all-time average dilutes a fresh loss burst below
  /// any bound and can never re-trigger adaptation.
  struct LossWindow {
    std::uint64_t offered = 0;
    std::uint64_t dropped = 0;
    [[nodiscard]] double loss_rate() const {
      return offered == 0 ? 0.0 : double(dropped) / double(offered);
    }
  };

  LossyHop(const fault::LinkFaultModel& model, sim::Rng rng, Forward next)
      : model_(model), rng_(std::move(rng)), next_(std::move(next)) {}

  /// Accepts a packet: advances the loss chain once and either forwards the
  /// packet downstream or drops it. A trivial model draws no random numbers
  /// and delivers everything.
  void offer(Packet packet);

  /// Swaps the fault model in place (e.g. arming a Gilbert–Elliott burst at
  /// a fault window's edge and disarming it at heal). The loss chain state
  /// and all counters persist; a trivial model draws no random numbers, so
  /// an armed-then-disarmed hop consumes RNG only while the fault is live.
  void set_model(const fault::LinkFaultModel& model) { model_ = model; }

  [[nodiscard]] std::uint64_t offered() const { return offered_; }
  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  [[nodiscard]] std::uint64_t offered(FlowId flow) const { return per_flow(offered_by_flow_, flow); }
  [[nodiscard]] std::uint64_t delivered(FlowId flow) const {
    return per_flow(delivered_by_flow_, flow);
  }
  [[nodiscard]] std::uint64_t dropped(FlowId flow) const {
    return per_flow(dropped_by_flow_, flow);
  }

  /// Observed loss fraction for one flow (0 when it has offered nothing).
  [[nodiscard]] double loss_rate(FlowId flow) const {
    const std::uint64_t o = offered(flow);
    return o == 0 ? 0.0 : double(dropped(flow)) / double(o);
  }

  /// All-time loss verdict with a minimum-sample guard: fewer than
  /// `min_samples` offered packets is kInsufficient, never a clean bill.
  [[nodiscard]] LossVerdict loss_verdict(FlowId flow, const QosRequest& request,
                                         std::uint64_t min_samples = kMinLossSamples) const {
    if (offered(flow) < min_samples) return LossVerdict::kInsufficient;
    return loss_rate(flow) <= request.loss_bound ? LossVerdict::kWithinBound
                                                 : LossVerdict::kViolated;
  }

  /// Whether the flow's observed loss honours its negotiated p_e. "Meets"
  /// here means "not shown to violate": an insufficient sample does not
  /// condemn the flow, but callers that need the distinction (the adaptation
  /// controller) should use loss_verdict() / take_window() instead.
  [[nodiscard]] bool meets_loss_bound(FlowId flow, const QosRequest& request) const {
    return loss_verdict(flow, request) != LossVerdict::kViolated;
  }

  /// Harvests and resets the flow's current measurement window. Window
  /// counters advance with every offer() alongside the all-time totals;
  /// calling this at a fixed period yields the windowed estimator the
  /// adaptation controller runs on.
  [[nodiscard]] LossWindow take_window(FlowId flow) {
    LossWindow window{per_flow(window_offered_by_flow_, flow),
                      per_flow(window_dropped_by_flow_, flow)};
    if (flow < window_offered_by_flow_.size()) window_offered_by_flow_[flow] = 0;
    if (flow < window_dropped_by_flow_.size()) window_dropped_by_flow_[flow] = 0;
    return window;
  }

 private:
  [[nodiscard]] static std::uint64_t per_flow(const std::vector<std::uint64_t>& v,
                                              FlowId flow) {
    return flow < v.size() ? v[flow] : 0;
  }
  static void bump(std::vector<std::uint64_t>& v, FlowId flow) {
    if (flow >= v.size()) v.resize(std::size_t(flow) + 1, 0);
    ++v[flow];
  }

  fault::LinkFaultModel model_;
  sim::Rng rng_;
  fault::LossProcess loss_;
  Forward next_;
  std::uint64_t offered_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  std::vector<std::uint64_t> offered_by_flow_;
  std::vector<std::uint64_t> delivered_by_flow_;
  std::vector<std::uint64_t> dropped_by_flow_;
  std::vector<std::uint64_t> window_offered_by_flow_;
  std::vector<std::uint64_t> window_dropped_by_flow_;
};

/// Terminal sink collecting end-to-end delay statistics per flow.
class DelaySink {
 public:
  void operator()(const Packet& packet, sim::SimTime now) {
    if (packet.flow >= delays_.size()) delays_.resize(std::size_t(packet.flow) + 1);
    delays_[packet.flow].add((now - packet.created).to_seconds());
  }
  [[nodiscard]] const stats::Summary& delays(FlowId flow) const {
    return delays_.at(flow);
  }
  [[nodiscard]] bool has(FlowId flow) const {
    return flow < delays_.size() && delays_[flow].count() > 0;
  }

 private:
  std::vector<stats::Summary> delays_;  // dense, indexed by FlowId
};

}  // namespace imrm::qos
