# Empty compiler generated dependencies file for imrm_maxmin.
# This may be replaced when dependencies are built.
