#!/usr/bin/env bash
# Runs the microbenchmark suite plus instrumented scenario_cli campus runs
# (clean and with admission-signaling faults) and writes a machine-readable
# perf trajectory file (default BENCH_6.json at the repo root) so later PRs
# have a baseline to beat. Schema:
# { "<benchmark name>": { "items_per_second": <double|null>,
#   "real_time_ns": <double> }, ...,
#   "scenario_cli/campus": { "events_per_second": <double>,
#     "handoff_wall_us_p50": <double|null>,
#     "handoff_wall_us_p99": <double|null> },
#   "scenario_cli/campus_faulted": { "events_per_second": <double>,
#     "faulted_vs_clean_ratio": <double> },
#   "scenario_cli/faults_sweep_fork": { "cold_wall_seconds": <double>,
#     "forked_wall_seconds": <double>, "fork_speedup": <double> },
#   "scenario_cli/campus_sharded": { "host_cpus": <int>,
#     "events_fired": <int>,
#     "events_per_second": { "1": <double>, "2": ..., "4": ..., "8": ... },
#     "speedup_4x": <double> } }.
# The faulted/clean ratio tracks the overhead of the fault-injection path: a
# ratio far below 1.0 means the fault plumbing leaked onto the clean hot
# path. fork_speedup is the win from checkpoint forking: an 8-variant faults
# sweep on a slow-converging campus topology, cold (every replication replays
# the 60s warm phase) vs forked from one shared warm checkpoint. Expected
# well above 2x; the byte-identity of the two sweeps' metrics is asserted by
# tests/fault_checkpoint_test.cc, here we only time them.
#
# campus_sharded (ISSUE 5) runs the same sharded campus at 1/2/4/8 worker
# shards and records events/s per shard count plus host_cpus. speedup_4x is
# an HONEST measurement on the current host: the conservative-window rounds
# barrier-synchronize every window, so on a single-CPU box extra shards only
# add handoff overhead and the speedup sits below 1.0 — read it together
# with host_cpus before comparing across machines. The byte-identity of the
# per-shard metrics is asserted here too (the cheap end-to-end determinism
# check; the thorough one is ctest -L shard).
#
# campus_scale (ISSUE 6) sweeps the grid campus harness over
# {10,100,1000} cells x {1k,10k,100k} portables and records events/s and
# bytes-per-portable per point, plus the naive (pre-SoA access pattern)
# engine at 100x10k for the layout speedup on this host.
#
# Comparability across BENCH files (ISSUE 6 S1): earlier trajectories mixed
# campus configs (e.g. 20 vs 40 attendees), so the events/s series looked
# like a regression that was actually a workload change. Every scenario_cli/*
# entry now carries `host_cpus` and the `config` fingerprint echoed by the
# CLI; the measured workloads below are PINNED — change them only together
# with a schema note, never silently.
#
# Usage: bench/run_benchmarks.sh [output.json]
# Env:   BUILD_DIR   build directory relative to the repo root (default: build)
#        BENCH_ARGS  extra flags for bench_microperf (e.g. --benchmark_filter=...)
set -euo pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${BUILD_DIR:-build}
out=${1:-"$repo_root/BENCH_6.json"}

# The pinned measured workloads (S1). BENCH_4/BENCH_5 measured the campus
# day at these flags; keep them bit-for-bit stable across bench revisions.
campus_flags=(--attendees 20 --squatters 6 --seed 5)
scale_flags=(--duration 3600 --tick 5 --seed 5)

cmake --build "$repo_root/$build_dir" --target bench_microperf scenario_cli -j >/dev/null

raw=$(mktemp)
report=$(mktemp)
faulted_report=$(mktemp)
sweep_cold=$(mktemp)
sweep_forked=$(mktemp)
trap 'rm -f "$raw" "$report" "$faulted_report" "$sweep_cold" "$sweep_forked"' EXIT
"$repo_root/$build_dir/bench/bench_microperf" \
  --benchmark_format=json ${BENCH_ARGS:-} >"$raw"

# One instrumented campus day: the run report carries sim throughput and the
# wall-clock handoff latency histogram (mobility.handoff_wall_us).
"$repo_root/$build_dir/examples/scenario_cli" campus \
  "${campus_flags[@]}" --metrics-json "$report" >/dev/null

# The same day with a lossy admission-control plane: every admit probe rides
# an UnreliableCall (20% per-direction drop, 3 tries). Throughput relative to
# the clean run is the cost of the fault path.
"$repo_root/$build_dir/examples/scenario_cli" campus \
  "${campus_flags[@]}" --faults 0.2 \
  --metrics-json "$faulted_report" >/dev/null

# Warm-checkpoint forking (ISSUE 4): the same 8-variant faults sweep, cold
# vs forked from one shared warm image. The campus problem below takes tens
# of simulated seconds to converge, so replaying the warm phase per
# replication dominates the cold sweep; single-threaded so the timing
# measures work, not scheduling.
sweep_flags=(faults --topology campus --cells 12 --conns 48
             --faults-start 60 --stop 0.5 --drop 0.2 --flaps 2 --crashes 1
             --replications 8 --threads 1 --seed 3)
"$repo_root/$build_dir/examples/scenario_cli" "${sweep_flags[@]}" \
  --metrics-json "$sweep_cold" >/dev/null
"$repo_root/$build_dir/examples/scenario_cli" "${sweep_flags[@]}" --fork 1 \
  --metrics-json "$sweep_forked" >/dev/null

# Sharded campus scaling (ISSUE 5): the same corridor at 1/2/4/8 shards.
shard_dir=$(mktemp -d)
trap 'rm -rf "$shard_dir"; rm -f "$raw" "$report" "$faulted_report" "$sweep_cold" "$sweep_forked"' EXIT
for k in 1 2 4 8; do
  "$repo_root/$build_dir/examples/scenario_cli" campus --shards "$k" \
    --cells 32 --portables 32 --hours 4 --seed 11 \
    --metrics-json "$shard_dir/shards$k.json" >/dev/null
done

# Campus-at-scale curve (ISSUE 6): events/s and bytes/portable over the
# 3x3 grid, plus the naive engine at the 100x10k comparison point.
for c in 10 100 1000; do
  for p in 1000 10000 100000; do
    "$repo_root/$build_dir/examples/scenario_cli" campus-scale \
      --cells "$c" --portables "$p" "${scale_flags[@]}" \
      --metrics-json "$shard_dir/scale_${c}x${p}.json" >/dev/null
  done
done
"$repo_root/$build_dir/examples/scenario_cli" campus-scale \
  --cells 100 --portables 10000 "${scale_flags[@]}" --engine naive \
  --metrics-json "$shard_dir/scale_naive.json" >/dev/null

python3 - "$raw" "$report" "$faulted_report" "$sweep_cold" "$sweep_forked" "$shard_dir" "$out" <<'PYEOF'
import json
import os
import sys

NS_PER = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

with open(sys.argv[1]) as f:
    raw = json.load(f)

trajectory = {}
for bench in raw["benchmarks"]:
    if bench.get("run_type") == "aggregate":
        continue
    scale = NS_PER[bench.get("time_unit", "ns")]
    trajectory[bench["name"]] = {
        "items_per_second": bench.get("items_per_second"),
        "real_time_ns": bench["real_time"] * scale,
    }

def entry(report, **fields):
    """Every scenario_cli/* entry carries the host size and the exact config
    the CLI echoed (S1): trajectories across BENCH files are only comparable
    when both match."""
    out = {"host_cpus": os.cpu_count(), "config": report["config"]}
    out.update(fields)
    return out

with open(sys.argv[2]) as f:
    report = json.load(f)
handoff = report["metrics"]["histograms"].get("mobility.handoff_wall_us", {})
trajectory["scenario_cli/campus"] = entry(
    report,
    events_per_second=report["events_per_second"],
    handoff_wall_us_p50=handoff.get("p50"),
    handoff_wall_us_p99=handoff.get("p99"),
)

with open(sys.argv[3]) as f:
    faulted = json.load(f)
trajectory["scenario_cli/campus_faulted"] = entry(
    faulted,
    events_per_second=faulted["events_per_second"],
    faulted_vs_clean_ratio=(
        faulted["events_per_second"] / report["events_per_second"]),
)

with open(sys.argv[4]) as f:
    sweep_cold = json.load(f)
with open(sys.argv[5]) as f:
    sweep_forked = json.load(f)
if sweep_cold["metrics"] != sweep_forked["metrics"]:
    sys.exit("faults sweep: forked metrics differ from cold metrics")
trajectory["scenario_cli/faults_sweep_fork"] = entry(
    sweep_cold,
    cold_wall_seconds=sweep_cold["wall_seconds"],
    forked_wall_seconds=sweep_forked["wall_seconds"],
    fork_speedup=sweep_cold["wall_seconds"] / sweep_forked["wall_seconds"],
)

shard_dir = sys.argv[6]
sharded = {}
shard_metrics = {}
for k in (1, 2, 4, 8):
    with open(f"{shard_dir}/shards{k}.json") as f:
        shard_report = json.load(f)
    sharded[str(k)] = shard_report["events_per_second"]
    shard_metrics[k] = shard_report["metrics"]
    events_fired = shard_report["events_fired"]
for k in (2, 4, 8):
    if shard_metrics[k] != shard_metrics[1]:
        sys.exit(f"sharded campus: metrics at shards={k} differ from shards=1")
trajectory["scenario_cli/campus_sharded"] = entry(
    shard_report,
    events_fired=events_fired,
    events_per_second=sharded,
    speedup_4x=sharded["4"] / sharded["1"],
)

# Campus-at-scale curve (ISSUE 6): 3x3 grid of events/s and bytes/portable,
# plus the SoA-vs-naive layout speedup at the 100x10k point.
grid = {}
scale_config = None
for c in (10, 100, 1000):
    for p in (1000, 10000, 100000):
        with open(f"{shard_dir}/scale_{c}x{p}.json") as f:
            scale_report = json.load(f)
        gauges = scale_report["metrics"]["gauges"]
        grid[f"{c}x{p}"] = {
            "events_per_second": scale_report["events_per_second"],
            "events_fired": scale_report["events_fired"],
            "bytes_per_portable": gauges["scale.bytes_per_portable"]["value"],
        }
        scale_config = scale_report["config"]
with open(f"{shard_dir}/scale_naive.json") as f:
    naive_report = json.load(f)
soa_100x10k = grid["100x10000"]["events_per_second"]
trajectory["scenario_cli/campus_scale"] = {
    "host_cpus": os.cpu_count(),
    "config": scale_config,
    "grid": grid,
    "naive_events_per_second_100x10000": naive_report["events_per_second"],
    "soa_vs_naive_speedup_100x10000":
        soa_100x10k / naive_report["events_per_second"],
}

with open(sys.argv[7], "w") as f:
    json.dump(trajectory, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {sys.argv[7]} ({len(trajectory)} entries)")
PYEOF
