// Integration: the admission pipeline's promises are kept by the packet
// substrate. Connections admitted by the Table 2 pipeline get links
// configured with their reservations; conforming token-bucket sources then
// flow through the packet-level schedulers, and every measured end-to-end
// delay must respect the admitted delay bound.
#include <gtest/gtest.h>

#include <memory>

#include "qos/admission.h"
#include "qos/packet_sim.h"

namespace imrm::qos {
namespace {

using sim::SimTime;

struct PathHarness {
  sim::Simulator simulator;
  DelaySink sink;
  std::vector<std::unique_ptr<ScheduledLink>> links;

  /// Builds a chain of Virtual Clock links with the given capacities.
  explicit PathHarness(const std::vector<BitsPerSecond>& capacities) {
    links.resize(capacities.size());
    for (std::size_t h = capacities.size(); h-- > 0;) {
      ScheduledLink::Forward forward;
      if (h + 1 == capacities.size()) {
        forward = [this](Packet p) { sink(p, simulator.now()); };
      } else {
        forward = [next = links[h + 1].get()](Packet p) { next->enqueue(p); };
      }
      links[h] = std::make_unique<ScheduledLink>(simulator, capacities[h],
                                                 std::move(forward));
    }
  }
};

TEST(AdmissionPacketIntegration, AdmittedConnectionsMeetTheirDelayBounds) {
  // Three connections with different envelopes over a 3-hop path.
  const std::vector<BitsPerSecond> capacities{mbps(1.6), mbps(10.0), mbps(1.6)};
  std::vector<LinkSnapshot> snapshots;
  for (BitsPerSecond c : capacities) {
    snapshots.push_back(LinkSnapshot{c, 0.0, 0.0, 1e9, 0.0});
  }

  struct Want {
    QosRequest request;
    bool admitted = false;
  };
  std::vector<Want> wants(3);
  for (std::size_t i = 0; i < wants.size(); ++i) {
    QosRequest& r = wants[i].request;
    const double scale = double(i + 1);
    r.bandwidth = {kbps(100 * scale), kbps(200 * scale)};
    r.traffic = {2.0 * 8000.0, 8000.0};
    r.delay_bound = 2.0;
    r.jitter_bound = 2.0;
    r.loss_bound = 0.1;
  }

  const AdmissionPipeline pipeline(Scheduler::kWfq, MobilityClass::kMobile);
  PathHarness path(capacities);

  std::vector<std::unique_ptr<TokenBucketSource>> sources;
  for (std::size_t i = 0; i < wants.size(); ++i) {
    const auto result = pipeline.admit(wants[i].request, snapshots);
    ASSERT_TRUE(result.accepted) << "connection " << i;
    wants[i].admitted = true;
    // Commit the reservation on the snapshots (sequential admission).
    for (auto& s : snapshots) s.sum_b_min += wants[i].request.bandwidth.b_min;
    // Configure the packet links with the admitted rate.
    for (auto& link : path.links) {
      link->add_flow(FlowId(i + 1), result.allocated_bandwidth);
    }
    // Greedy conforming source: the adversarial case for the bound.
    TokenBucketSource::Config config;
    config.flow = FlowId(i + 1);
    config.sigma = wants[i].request.traffic.sigma;
    config.rho = wants[i].request.bandwidth.b_min;
    config.packet_size = wants[i].request.traffic.l_max;
    sources.push_back(std::make_unique<TokenBucketSource>(
        path.simulator, config, sim::Rng(i + 1),
        [&path](Packet p) { path.links[0]->enqueue(p); }));
    sources.back()->start(SimTime::seconds(60));
  }
  path.simulator.run();

  for (std::size_t i = 0; i < wants.size(); ++i) {
    ASSERT_TRUE(path.sink.has(FlowId(i + 1)));
    const auto& delays = path.sink.delays(FlowId(i + 1));
    EXPECT_GT(delays.count(), 100u);
    EXPECT_LE(delays.max(), wants[i].request.delay_bound)
        << "connection " << i << " violated its admitted delay bound";
  }
}

TEST(AdmissionPacketIntegration, RejectedLoadWouldHaveViolatedBounds) {
  // Sanity for the other side: a request the pipeline rejects on delay
  // (d < d_min) is indeed undeliverable — the measured delay of a greedy
  // burst exceeds the requested bound when forced through anyway.
  const std::vector<BitsPerSecond> capacities{mbps(1.6), mbps(1.6)};
  std::vector<LinkSnapshot> snapshots;
  for (BitsPerSecond c : capacities) {
    snapshots.push_back(LinkSnapshot{c, 0.0, 0.0, 1e9, 0.0});
  }
  QosRequest r;
  r.bandwidth = {kbps(100), kbps(100)};
  r.traffic = {4.0 * 8000.0, 8000.0};
  r.delay_bound = 0.3;  // d_min = (32000+16000)/100000 + 2*8000/1.6e6 = 0.49
  r.jitter_bound = 2.0;
  r.loss_bound = 0.1;
  const AdmissionPipeline pipeline(Scheduler::kWfq, MobilityClass::kMobile);
  const auto result = pipeline.admit(r, snapshots);
  ASSERT_FALSE(result.accepted);
  EXPECT_EQ(result.reason, RejectReason::kDelay);

  // The analytic bound is adversarial: force it with saturating greedy
  // cross traffic holding the rest of each link's capacity.
  PathHarness path(capacities);
  std::vector<std::unique_ptr<TokenBucketSource>> cross;
  for (std::size_t h = 0; h < path.links.size(); ++h) {
    auto* link = path.links[h].get();
    link->add_flow(1, r.bandwidth.b_min);
    const FlowId cross_flow = FlowId(100 + h);
    link->add_flow(cross_flow, capacities[h] - r.bandwidth.b_min);
    TokenBucketSource::Config cc;
    cc.flow = cross_flow;
    cc.sigma = 16.0 * r.traffic.l_max;
    cc.rho = capacities[h] - r.bandwidth.b_min;
    cc.packet_size = r.traffic.l_max;
    cross.push_back(std::make_unique<TokenBucketSource>(
        path.simulator, cc, sim::Rng(50 + h),
        [link](Packet p) { link->enqueue(p); }));
    cross.back()->start(SimTime::seconds(30));
  }
  TokenBucketSource::Config config;
  config.flow = 1;
  config.sigma = r.traffic.sigma;
  config.rho = r.bandwidth.b_min;
  config.packet_size = r.traffic.l_max;
  TokenBucketSource source(path.simulator, config, sim::Rng(3),
                           [&path](Packet p) { path.links[0]->enqueue(p); });
  source.start(SimTime::seconds(30));
  path.simulator.run();
  EXPECT_GT(path.sink.delays(1).max(), r.delay_bound)
      << "the pipeline rejected a request the substrate could actually serve";
}

}  // namespace
}  // namespace imrm::qos
