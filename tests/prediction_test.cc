// Tests for the three-level next-cell predictor (Section 6).
#include <gtest/gtest.h>

#include "mobility/floorplan.h"
#include "prediction/predictor.h"
#include "profiles/profile_server.h"

namespace imrm::prediction {
namespace {

using mobility::CellClass;
using mobility::CellMap;
using mobility::Fig4Cells;
using net::PortableId;

class PredictorTest : public ::testing::Test {
 protected:
  PredictorTest()
      : map_(mobility::fig4_environment()), cells_(mobility::fig4_cells(map_)),
        server_(net::ZoneId{0}) {}

  CellMap map_;
  Fig4Cells cells_;
  profiles::ProfileServer server_;
};

TEST_F(PredictorTest, Level1PortableProfileWins) {
  // The portable's own history says C->D leads to B's corridor (E), even
  // though it is also an occupant of office A.
  map_.add_occupant(cells_.a, PortableId{1});
  server_.record_handoff(PortableId{1}, cells_.c, cells_.d, cells_.e);
  server_.record_handoff(PortableId{1}, cells_.c, cells_.d, cells_.e);

  const ThreeLevelPredictor predictor(map_, server_);
  const Prediction p = predictor.predict(PortableId{1}, cells_.c, cells_.d);
  EXPECT_EQ(p.level, PredictionLevel::kPortableProfile);
  EXPECT_EQ(p.next_cell, cells_.e);
}

TEST_F(PredictorTest, Level2OfficeOccupancy) {
  // No portable profile for this state, but the user is a regular occupant
  // of neighboring office A.
  map_.add_occupant(cells_.a, PortableId{2});
  const ThreeLevelPredictor predictor(map_, server_);
  const Prediction p = predictor.predict(PortableId{2}, cells_.c, cells_.d);
  EXPECT_EQ(p.level, PredictionLevel::kOfficeOccupancy);
  EXPECT_EQ(p.next_cell, cells_.a);
}

TEST_F(PredictorTest, Level2CellAggregate) {
  // Anonymous users only have the cell's aggregate history to go on.
  for (int i = 0; i < 10; ++i) {
    server_.record_handoff(PortableId{net::PortableId::underlying(100 + i)}, cells_.c,
                           cells_.d, cells_.f);
  }
  const ThreeLevelPredictor predictor(map_, server_);
  const Prediction p = predictor.predict(PortableId{2}, cells_.c, cells_.d);
  EXPECT_EQ(p.level, PredictionLevel::kCellAggregate);
  EXPECT_EQ(p.next_cell, cells_.f);
}

TEST_F(PredictorTest, Level2AggregateFallbackIgnoresPrevious) {
  // History exists for the cell but not for this previous-cell state: the
  // overall aggregate is used.
  server_.record_handoff(PortableId{50}, cells_.e, cells_.d, cells_.g);
  const ThreeLevelPredictor predictor(map_, server_);
  const Prediction p = predictor.predict(PortableId{2}, cells_.c, cells_.d);
  EXPECT_EQ(p.level, PredictionLevel::kCellAggregate);
  EXPECT_EQ(p.next_cell, cells_.g);
}

TEST_F(PredictorTest, Level3NothingKnown) {
  const ThreeLevelPredictor predictor(map_, server_);
  const Prediction p = predictor.predict(PortableId{2}, cells_.c, cells_.d);
  EXPECT_EQ(p.level, PredictionLevel::kNone);
  EXPECT_FALSE(p.next_cell.has_value());
}

TEST_F(PredictorTest, PortableOverloadReadsState) {
  map_.add_occupant(cells_.a, PortableId{3});
  const ThreeLevelPredictor predictor(map_, server_);
  mobility::Portable p;
  p.id = PortableId{3};
  p.previous_cell = cells_.c;
  p.current_cell = cells_.d;
  EXPECT_EQ(predictor.predict(p).next_cell, cells_.a);
}

TEST_F(PredictorTest, OccupancyOnlyNominatesNeighboringOffices) {
  // Occupant of A, but currently at E (A is not E's neighbor): no occupancy
  // prediction; falls through to level 3.
  map_.add_occupant(cells_.a, PortableId{4});
  const ThreeLevelPredictor predictor(map_, server_);
  const Prediction p = predictor.predict(PortableId{4}, cells_.d, cells_.e);
  EXPECT_EQ(p.level, PredictionLevel::kNone);
}

TEST(PredictionLevelNames, ToString) {
  EXPECT_EQ(to_string(PredictionLevel::kPortableProfile), "portable-profile");
  EXPECT_EQ(to_string(PredictionLevel::kOfficeOccupancy), "office-occupancy");
  EXPECT_EQ(to_string(PredictionLevel::kCellAggregate), "cell-aggregate");
  EXPECT_EQ(to_string(PredictionLevel::kNone), "none");
}

// Accuracy property: with consistent movement, level-1 prediction becomes
// near-perfect after the profile warms up.
TEST_F(PredictorTest, WarmProfileBeatsAggregate) {
  const ThreeLevelPredictor predictor(map_, server_);
  // A creature of habit: always C -> D -> A.
  for (int i = 0; i < 8; ++i) {
    server_.record_handoff(PortableId{1}, cells_.c, cells_.d, cells_.a);
  }
  // The crowd mostly goes elsewhere.
  for (int i = 0; i < 80; ++i) {
    server_.record_handoff(PortableId{net::PortableId::underlying(200 + i)}, cells_.c,
                           cells_.d, cells_.f);
  }
  const Prediction personal = predictor.predict(PortableId{1}, cells_.c, cells_.d);
  const Prediction anonymous_user = predictor.predict(PortableId{999}, cells_.c, cells_.d);
  EXPECT_EQ(personal.next_cell, cells_.a);
  EXPECT_EQ(personal.level, PredictionLevel::kPortableProfile);
  EXPECT_EQ(anonymous_user.next_cell, cells_.f);
}

}  // namespace
}  // namespace imrm::prediction
