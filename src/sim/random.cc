#include "sim/random.h"

#include <algorithm>

namespace imrm::sim {

double Rng::truncated_normal(double mean, double stddev, double lo, double hi) {
  assert(lo <= hi);
  std::normal_distribution<double> dist(mean, stddev);
  for (int attempt = 0; attempt < 64; ++attempt) {
    const double x = dist(engine_);
    if (x >= lo && x <= hi) return x;
  }
  return std::clamp(mean, lo, hi);
}

std::size_t Rng::discrete(std::span<const double> weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  if (total <= 0.0) return 0;  // degenerate: all-zero weights
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;  // floating-point edge: land on last bucket
}

}  // namespace imrm::sim
