// Figure 4 / Section 7.1 reproduction: office handoff measurements and the
// two conclusions the paper draws from them:
//   (a) deterministic reservation for office occupants is valid, and
//   (b) brute-force advance reservation in all neighbors is extremely
//       wasteful.
//
// The calibrated mobility generator replays the measured environment; the
// table compares the simulated fan-out fractions at the corridor decision
// point C -> D against the published counts, and the second table evaluates
// the three-level predictor online.
#include <iostream>

#include "experiments/fig4_mobility.h"
#include "stats/table.h"

using namespace imrm;
using namespace imrm::experiments;

namespace {

void add_fanout_row(stats::Table& table, const char* who, const Fanout& got,
                    std::size_t paper_a, std::size_t paper_b, std::size_t paper_fg,
                    std::size_t paper_total) {
  const double total = double(got.total());
  auto pct = [](double x, double t) { return t > 0 ? 100.0 * x / t : 0.0; };
  const double paper_t = double(paper_total);
  table.add_row({who, std::to_string(got.total()),
                 stats::fmt(pct(double(got.to_a), total), 1) + "% (" +
                     stats::fmt(pct(double(paper_a), paper_t), 1) + "%)",
                 stats::fmt(pct(double(got.toward_b), total), 1) + "% (" +
                     stats::fmt(pct(double(paper_b), paper_t), 1) + "%)",
                 stats::fmt(pct(double(got.to_fg), total), 1) + "% (" +
                     stats::fmt(pct(double(paper_fg), paper_t), 1) + "%)"});
}

}  // namespace

int main() {
  std::cout << "== Figure 4 / Section 7.1: office & corridor handoff profile ==\n";
  Fig4Config config;
  config.hours = 400.0;
  const Fig4Result r = run_fig4(config);

  std::cout << "\nhandoff fan-out from corridor D (arrived from C); simulated % "
               "(paper %):\n";
  stats::Table fanout({"user group", "C->D handoffs", "into A", "toward B (via E)",
                       "to F/G"});
  add_fanout_row(fanout, "faculty (occupant of A)", r.faculty, 94, 20, 13, 127);
  add_fanout_row(fanout, "students (occupants of B)", r.students, 12, 173, 31, 218);
  add_fanout_row(fanout, "other users", r.others, 39, 17, 1328, 1384);
  fanout.print(std::cout);

  std::cout << "\nonline next-cell prediction accuracy (three-level predictor):\n";
  stats::Table pred({"level", "predictions", "accuracy"});
  pred.add_row({"1: portable profile", std::to_string(r.portable_profile.predictions),
                stats::fmt(r.portable_profile.accuracy() * 100.0, 1) + "%"});
  pred.add_row({"2a: office occupancy", std::to_string(r.office_occupancy.predictions),
                stats::fmt(r.office_occupancy.accuracy() * 100.0, 1) + "%"});
  pred.add_row({"2b: cell aggregate", std::to_string(r.cell_aggregate.predictions),
                stats::fmt(r.cell_aggregate.accuracy() * 100.0, 1) + "%"});
  pred.add_row({"3: none (default algo)", std::to_string(r.unpredicted), "-"});
  pred.print(std::cout);

  std::cout << "\nreservation cost per handoff (paper conclusion (b)):\n";
  stats::Table cost({"scheme", "reservations made", "per handoff", "useful"});
  cost.add_row({"brute force (all neighbors)",
                std::to_string(r.brute_force_reservations),
                stats::fmt(double(r.brute_force_reservations) / double(r.total_handoffs), 2),
                stats::fmt(100.0 * double(r.total_handoffs) /
                               double(r.brute_force_reservations), 1) + "%"});
  cost.add_row({"predictive (next cell)", std::to_string(r.predictive_reservations),
                stats::fmt(double(r.predictive_reservations) / double(r.total_handoffs), 2),
                stats::fmt(100.0 * double(r.predictive_hits) /
                               double(r.predictive_reservations), 1) + "%"});
  cost.print(std::cout);

  std::cout << "\nbrute force wastes "
            << stats::fmt(double(r.brute_force_reservations) /
                              double(r.predictive_reservations), 1)
            << "x the reservations of the predictive scheme on this workload.\n";
  return 0;
}
