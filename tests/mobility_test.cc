// Tests for the mobility substrate: cell maps, floor plans, the
// static/mobile classifier, the mobility manager, and the calibrated
// Figure 4 movement model.
#include <gtest/gtest.h>

#include "mobility/cell.h"
#include "mobility/floorplan.h"
#include "mobility/manager.h"
#include "mobility/movement.h"
#include "mobility/portable.h"

namespace imrm::mobility {
namespace {

using sim::Duration;
using sim::SimTime;

TEST(CellClass, Names) {
  EXPECT_EQ(to_string(CellClass::kOffice), "office");
  EXPECT_EQ(to_string(CellClass::kMeetingRoom), "meeting-room");
  EXPECT_EQ(to_string(CellClass::kCafeteria), "cafeteria");
}

TEST(CellClass, LoungeClassification) {
  EXPECT_TRUE(is_lounge(CellClass::kMeetingRoom));
  EXPECT_TRUE(is_lounge(CellClass::kCafeteria));
  EXPECT_TRUE(is_lounge(CellClass::kLounge));
  EXPECT_FALSE(is_lounge(CellClass::kOffice));
  EXPECT_FALSE(is_lounge(CellClass::kCorridor));
}

TEST(CellMap, ConnectIsSymmetric) {
  CellMap map;
  const CellId a = map.add_cell(CellClass::kOffice, "a");
  const CellId b = map.add_cell(CellClass::kCorridor, "b");
  map.connect(a, b);
  EXPECT_TRUE(map.cell(a).is_neighbor(b));
  EXPECT_TRUE(map.cell(b).is_neighbor(a));
  EXPECT_TRUE(map.neighbor_relation_valid());
}

TEST(CellMap, ConnectIsIdempotent) {
  CellMap map;
  const CellId a = map.add_cell(CellClass::kOffice, "a");
  const CellId b = map.add_cell(CellClass::kCorridor, "b");
  map.connect(a, b);
  map.connect(a, b);
  map.connect(b, a);
  EXPECT_EQ(map.cell(a).neighbors.size(), 1u);
  EXPECT_EQ(map.cell(b).neighbors.size(), 1u);
}

TEST(CellMap, FindByName) {
  CellMap map;
  map.add_cell(CellClass::kOffice, "alpha");
  EXPECT_TRUE(map.find("alpha").has_value());
  EXPECT_FALSE(map.find("beta").has_value());
}

TEST(CellMap, OccupantsTrackOffices) {
  CellMap map;
  const CellId office = map.add_cell(CellClass::kOffice, "o");
  map.add_occupant(office, PortableId{7});
  EXPECT_TRUE(map.cell(office).is_occupant(PortableId{7}));
  EXPECT_FALSE(map.cell(office).is_occupant(PortableId{8}));
}

TEST(Fig4, TopologyMatchesPaper) {
  const CellMap map = fig4_environment();
  EXPECT_EQ(map.size(), 7u);
  EXPECT_TRUE(map.neighbor_relation_valid());
  const Fig4Cells c = fig4_cells(map);
  EXPECT_EQ(map.cell(c.a).cell_class, CellClass::kOffice);
  EXPECT_EQ(map.cell(c.b).cell_class, CellClass::kOffice);
  EXPECT_EQ(map.cell(c.d).cell_class, CellClass::kCorridor);
  // The measured handoff targets from D: A, E (toward B), F, G, plus C.
  EXPECT_TRUE(map.cell(c.d).is_neighbor(c.a));
  EXPECT_TRUE(map.cell(c.d).is_neighbor(c.e));
  EXPECT_TRUE(map.cell(c.d).is_neighbor(c.f));
  EXPECT_TRUE(map.cell(c.d).is_neighbor(c.g));
  EXPECT_TRUE(map.cell(c.d).is_neighbor(c.c));
  EXPECT_TRUE(map.cell(c.e).is_neighbor(c.b));
  // Offices hang off the corridor, not off each other.
  EXPECT_FALSE(map.cell(c.a).is_neighbor(c.b));
}

TEST(Campus, ContainsEveryCellClass) {
  const CellMap map = campus_environment();
  EXPECT_TRUE(map.neighbor_relation_valid());
  EXPECT_FALSE(map.cells_of_class(CellClass::kOffice).empty());
  EXPECT_FALSE(map.cells_of_class(CellClass::kCorridor).empty());
  EXPECT_FALSE(map.cells_of_class(CellClass::kMeetingRoom).empty());
  EXPECT_FALSE(map.cells_of_class(CellClass::kCafeteria).empty());
  EXPECT_FALSE(map.cells_of_class(CellClass::kLounge).empty());
}

TEST(Campus, CafeteriaHasDefaultNeighbor) {
  // Section 6.2.2's special case must be constructible.
  const CellMap map = campus_environment();
  const CellId caf = *map.find("cafeteria");
  bool has_default = false;
  for (CellId n : map.cell(caf).neighbors) {
    if (map.cell(n).cell_class == CellClass::kLounge) has_default = true;
  }
  EXPECT_TRUE(has_default);
}

TEST(Building, MultiFloorConnectivity) {
  mobility::BuildingConfig config;
  config.floors = 3;
  const CellMap map = building_environment(config);
  EXPECT_TRUE(map.neighbor_relation_valid());
  // Every floor's cells exist, with per-floor zones.
  for (int f = 0; f < 3; ++f) {
    const std::string prefix = "f" + std::to_string(f) + "/";
    const auto office = map.find(prefix + "office-0");
    ASSERT_TRUE(office.has_value()) << prefix;
    EXPECT_EQ(map.cell(*office).zone.value(), unsigned(f));
    EXPECT_TRUE(map.find(prefix + "stairs").has_value());
  }
  // Stairwells chain the floors: f0/stairs - f1/stairs - f2/stairs.
  const CellId s0 = *map.find("f0/stairs");
  const CellId s1 = *map.find("f1/stairs");
  const CellId s2 = *map.find("f2/stairs");
  EXPECT_TRUE(map.cell(s0).is_neighbor(s1));
  EXPECT_TRUE(map.cell(s1).is_neighbor(s2));
  EXPECT_FALSE(map.cell(s0).is_neighbor(s2));
}

TEST(Building, SingleFloorMatchesCampusPlusStairs) {
  mobility::BuildingConfig config;
  config.floors = 1;
  const CellMap building = building_environment(config);
  const CellMap campus = campus_environment(config.floor);
  // The lounge-cafeteria extra edge exists only in the campus builder, so
  // sizes differ by exactly the stairwell cell.
  EXPECT_EQ(building.size(), campus.size() + 1);
}

TEST(Classifier, ThresholdSeparatesStaticFromMobile) {
  const StaticMobileClassifier classifier(Duration::minutes(3));
  Portable p;
  p.entered_cell = SimTime::minutes(10);
  EXPECT_EQ(classifier.classify(p, SimTime::minutes(11)), qos::MobilityClass::kMobile);
  EXPECT_EQ(classifier.classify(p, SimTime::minutes(13)), qos::MobilityClass::kStatic);
  EXPECT_DOUBLE_EQ(classifier.static_at(p).to_minutes(), 13.0);
}

TEST(Manager, MoveUpdatesStateAndHistory) {
  const CellMap map = fig4_environment();
  const Fig4Cells c = fig4_cells(map);
  sim::Simulator simulator;
  MobilityManager manager(map, simulator, Duration::minutes(3));
  const PortableId p = manager.add_portable(c.c);

  std::vector<HandoffEvent> events;
  manager.on_handoff([&](const HandoffEvent& e) { events.push_back(e); });

  manager.move(p, c.d);
  manager.move(p, c.a);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].from, c.c);
  EXPECT_EQ(events[0].to, c.d);
  EXPECT_FALSE(events[0].prev_of_from.is_valid());  // fresh portable
  EXPECT_EQ(events[1].from, c.d);
  EXPECT_EQ(events[1].to, c.a);
  EXPECT_EQ(events[1].prev_of_from, c.c);
  EXPECT_EQ(manager.portable(p).current_cell, c.a);
  EXPECT_EQ(manager.portable(p).previous_cell, c.d);
}

TEST(Manager, MoveResetsDwellClock) {
  const CellMap map = fig4_environment();
  const Fig4Cells c = fig4_cells(map);
  sim::Simulator simulator;
  MobilityManager manager(map, simulator, Duration::minutes(3));
  const PortableId p = manager.add_portable(c.c);
  simulator.run_until(SimTime::minutes(10));
  EXPECT_EQ(manager.classify(p), qos::MobilityClass::kStatic);
  manager.move(p, c.d);
  EXPECT_EQ(manager.classify(p), qos::MobilityClass::kMobile);
}

TEST(Manager, PortablesInCell) {
  const CellMap map = fig4_environment();
  const Fig4Cells c = fig4_cells(map);
  sim::Simulator simulator;
  MobilityManager manager(map, simulator, Duration::minutes(3));
  const PortableId p1 = manager.add_portable(c.c);
  const PortableId p2 = manager.add_portable(c.c);
  manager.add_portable(c.d);
  const auto in_c = manager.portables_in(c.c);
  EXPECT_EQ(in_c.size(), 2u);
  EXPECT_NE(std::find(in_c.begin(), in_c.end(), p1), in_c.end());
  EXPECT_NE(std::find(in_c.begin(), in_c.end(), p2), in_c.end());
}

TEST(TransitionTable, SecondOrderBeatsDefault) {
  const CellMap map = fig4_environment();
  const Fig4Cells c = fig4_cells(map);
  TransitionTable table;
  table.set(c.c, c.d, {{c.a, 1.0}});
  table.set_default(c.d, {{c.e, 1.0}});
  sim::Rng rng(1);
  EXPECT_EQ(table.sample(map, c.c, c.d, rng), c.a);      // second-order hit
  EXPECT_EQ(table.sample(map, c.e, c.d, rng), c.e);      // falls to default
}

TEST(TransitionTable, UniformFallbackStaysInNeighbors) {
  const CellMap map = fig4_environment();
  const Fig4Cells c = fig4_cells(map);
  const TransitionTable table;  // empty
  sim::Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const CellId next = table.sample(map, CellId::invalid(), c.d, rng);
    EXPECT_TRUE(map.cell(c.d).is_neighbor(next));
  }
}

TEST(Fig4Calibration, FacultyFractionsReproduce) {
  // Generate many C->D decisions with the faculty weights and check the
  // fan-out fractions against the measured 94/20/13 out of 127.
  const CellMap map = fig4_environment();
  const Fig4Cells c = fig4_cells(map);
  const TransitionTable table = fig4_transition_table(map, fig4_faculty_weights());
  sim::Rng rng(42);
  int to_a = 0, to_e = 0, to_fg = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const CellId next = table.sample(map, c.c, c.d, rng);
    if (next == c.a) ++to_a;
    else if (next == c.e) ++to_e;
    else ++to_fg;
  }
  EXPECT_NEAR(to_a / double(n), 94.0 / 127.0, 0.01);
  EXPECT_NEAR(to_e / double(n), 20.0 / 127.0, 0.01);
  EXPECT_NEAR(to_fg / double(n), 13.0 / 127.0, 0.01);
}

TEST(MarkovMover, WalksUntilHorizon) {
  const CellMap map = fig4_environment();
  const Fig4Cells c = fig4_cells(map);
  sim::Simulator simulator;
  MobilityManager manager(map, simulator, sim::Duration::minutes(3));
  const PortableId p = manager.add_portable(c.c);

  MarkovMover::Config config;
  config.mean_dwell = sim::Duration::minutes(2);
  config.horizon = sim::SimTime::hours(4);
  MarkovMover mover(manager, fig4_transition_table(map, fig4_student_weights()), config,
                    sim::Rng(7));
  mover.start(p);
  simulator.run();
  EXPECT_GT(mover.moves_made(), 20u);       // ~120 expected moves in 4 h
  EXPECT_LE(simulator.now().to_hours(), 4.001);
}

}  // namespace
}  // namespace imrm::mobility
