#include "experiments/sharded_campus.h"

#include <cassert>
#include <cstdlib>
#include <memory>
#include <utility>
#include <vector>

#include "sim/flat_map.h"
#include "sim/random.h"
#include "sim/replication.h"
#include "sim/sharded_runner.h"
#include "sim/simulator.h"

namespace imrm::experiments {
namespace {

// Slack over the mean session length before an unreleased lease is presumed
// abandoned; generous enough that an explicit RELEASE almost always lands
// first, tight enough that abandoned bandwidth is reclaimed within the run.
constexpr double kLeaseSlackFactor = 4.0;

class CampusGrid {
 public:
  explicit CampusGrid(const ShardedCampusConfig& config)
      : config_(config),
        runner_(sim::ShardedRunner::Config{
            config.cells, config.shards, config.hop_latency, config.batch,
            config.profiler, config.tracer, config.progress}) {
    assert(config_.cells >= 1);
    cells_.reserve(config_.cells);
    for (std::size_t i = 0; i < config_.cells; ++i) {
      // Per-cell RNG stream: a partition-invariant function of (seed, cell),
      // never of the worker that happens to execute the cell.
      cells_.push_back(std::make_unique<Cell>(
          i, sim::replication_seed(config_.seed, i)));
      cells_.back()->sim = &runner_.domain(i);
    }
    for (auto& cell : cells_) {
      for (std::size_t p = 0; p < config_.portables_per_cell; ++p) {
        schedule_idle(*cell);
      }
      Cell* c = cell.get();
      c->sim->every(config_.lease_sweep_period, config_.horizon,
                    [this, c] { sweep_leases(*c); });
    }
  }

  ShardedCampusResult run() {
    runner_.run_until(config_.horizon);

    ShardedCampusResult result;
    // Flat left-fold over per-cell snapshots in cell order. Never pre-merge
    // per worker: gauge merging sums doubles, and float addition is not
    // associative, so any partition-dependent grouping would change low bits
    // across shard counts.
    for (auto& cell : cells_) {
      cell->sim->collect_metrics(cell->registry);
      result.metrics.merge(cell->registry.snapshot());
    }
    obs::Registry engine;
    engine.counter("shard.windows").add(runner_.stats().windows);
    engine.counter("shard.boundary_messages").add(runner_.stats().boundary_messages);
    result.metrics.merge(engine.snapshot());

    result.events_fired = runner_.events_fired();
    result.windows = runner_.stats().windows;
    result.boundary_messages = runner_.stats().boundary_messages;
    const auto count = [&](const char* name) -> std::uint64_t {
      const obs::CounterSample* c = result.metrics.counter(name);
      return c == nullptr ? 0 : c->value;
    };
    result.admits = count("cell.admits");
    result.blocks = count("cell.blocks");
    result.handoffs = count("cell.handoff_in");
    result.handoff_drops = count("cell.handoff_drops");
    result.probes_sent = count("cell.probe_tx");
    result.probes_rejected = count("cell.probe_reject");
    result.lease_reclaims = count("cell.lease_reclaims");
    if (config_.profiler != nullptr) {
      result.profile = config_.profiler->snapshot();
      runner_.export_profile(result.profile);
    }
    return result;
  }

 private:
  struct Lease {
    double expiry_s = 0.0;
  };

  struct Cell {
    Cell(std::size_t index, std::uint64_t seed)
        : index(index),
          rng(seed),
          admits(registry.counter("cell.admits")),
          blocks(registry.counter("cell.blocks")),
          handoff_in(registry.counter("cell.handoff_in")),
          handoff_out(registry.counter("cell.handoff_out")),
          handoff_drops(registry.counter("cell.handoff_drops")),
          probe_tx(registry.counter("cell.probe_tx")),
          probe_ok(registry.counter("cell.probe_ok")),
          probe_reject(registry.counter("cell.probe_reject")),
          releases(registry.counter("cell.releases")),
          lease_reclaims(registry.counter("cell.lease_reclaims")),
          allocated_gauge(registry.gauge("cell.allocated_bps")),
          probe_rtt(registry.histogram(
              "cell.probe_rtt_ms", obs::HistogramSpec::linear(0.0, 250.0, 50))) {}

    std::size_t index;
    sim::Rng rng;
    obs::Registry registry;
    obs::Counter& admits;
    obs::Counter& blocks;
    obs::Counter& handoff_in;
    obs::Counter& handoff_out;
    obs::Counter& handoff_drops;
    obs::Counter& probe_tx;
    obs::Counter& probe_ok;
    obs::Counter& probe_reject;
    obs::Counter& releases;
    obs::Counter& lease_reclaims;
    obs::Gauge& allocated_gauge;
    obs::Histogram& probe_rtt;
    double allocated = 0.0;
    sim::FlatMap<std::uint64_t, Lease> leases;
    std::uint64_t next_session = 0;
    sim::Simulator* sim = nullptr;
  };

  [[nodiscard]] Cell& cell(std::size_t i) { return *cells_[i]; }

  [[nodiscard]] sim::Duration hop_latency(std::size_t a, std::size_t b) const {
    const std::size_t hops = a > b ? a - b : b - a;
    // Co-located endpoints still pay one hop: a message to yourself through
    // the corridor controller is a boundary message like any other, which is
    // what keeps the delivery schedule identical at every shard count.
    return sim::Duration::seconds(config_.hop_latency.to_seconds() *
                                  double(hops == 0 ? 1 : hops));
  }

  void set_allocated(Cell& c, double bps) {
    c.allocated = bps;
    c.allocated_gauge.set(bps);
  }

  [[nodiscard]] bool has_room(const Cell& c) const {
    return c.allocated + config_.session_bandwidth_bps <=
           config_.cell_capacity_bps + 1e-6;
  }

  void schedule_idle(Cell& c) {
    const double idle_s = c.rng.exponential_mean(config_.idle_mean.to_seconds());
    c.sim->after(sim::Duration::seconds(idle_s),
                 [this, cp = &c] { start_session(*cp); });
  }

  void start_session(Cell& c) {
    if (config_.cells > 1 && c.rng.bernoulli(config_.cross_call_probability)) {
      start_remote_session(c);
    } else {
      start_local_session(c);
    }
  }

  void start_local_session(Cell& c) {
    if (!has_room(c)) {
      c.blocks.add();
      schedule_idle(c);
      return;
    }
    c.admits.add();
    set_allocated(c, c.allocated + config_.session_bandwidth_bps);
    const double dur_s = c.rng.exponential_mean(config_.session_mean.to_seconds());
    c.sim->after(sim::Duration::seconds(dur_s),
                 [this, cp = &c] { end_local_session(*cp); });
  }

  void end_local_session(Cell& c) {
    set_allocated(c, c.allocated - config_.session_bandwidth_bps);
    c.releases.add();
    roam_or_idle(c);
  }

  void roam_or_idle(Cell& c) {
    if (config_.cells > 1 && c.rng.bernoulli(config_.roam_probability)) {
      std::size_t next = c.index;
      if (c.index == 0) {
        next = 1;
      } else if (c.index == config_.cells - 1) {
        next = c.index - 1;
      } else {
        next = c.rng.bernoulli(0.5) ? c.index + 1 : c.index - 1;
      }
      c.handoff_out.add();
      runner_.transport(c.index).send(
          fault::Channel(next), hop_latency(c.index, next),
          [this, dest = &cell(next)] { on_handoff(*dest); });
      return;
    }
    schedule_idle(c);
  }

  void on_handoff(Cell& d) {
    d.handoff_in.add();
    if (!has_room(d)) {
      d.handoff_drops.add();
      schedule_idle(d);
      return;
    }
    set_allocated(d, d.allocated + config_.session_bandwidth_bps);
    const double dur_s = d.rng.exponential_mean(config_.session_mean.to_seconds());
    d.sim->after(sim::Duration::seconds(dur_s),
                 [this, dp = &d] { end_local_session(*dp); });
  }

  // ---- remote-bandwidth sessions (probe / accept / release) --------------

  void start_remote_session(Cell& c) {
    std::size_t target =
        std::size_t(c.rng.uniform_int(0, int(config_.cells) - 2));
    if (target >= c.index) ++target;
    const std::uint64_t session =
        (std::uint64_t(c.index) << 32) | c.next_session++;
    c.probe_tx.add();
    const double sent_s = c.sim->now().to_seconds();
    runner_.transport(c.index).send(
        fault::Channel(target), hop_latency(c.index, target),
        [this, tp = &cell(target), from = c.index, session, sent_s] {
          on_probe(*tp, from, session, sent_s);
        });
  }

  void on_probe(Cell& t, std::size_t from, std::uint64_t session, double sent_s) {
    const bool ok = has_room(t);
    if (ok) {
      t.probe_ok.add();
      set_allocated(t, t.allocated + config_.session_bandwidth_bps);
      const double lease_s =
          config_.session_mean.to_seconds() * kLeaseSlackFactor;
      t.leases.insert(session, Lease{t.sim->now().to_seconds() + lease_s});
    } else {
      t.probe_reject.add();
    }
    runner_.transport(t.index).send(
        fault::Channel(from), hop_latency(t.index, from),
        [this, cp = &cell(from), ok, target = std::uint32_t(t.index), session,
         sent_s] { on_probe_reply(*cp, ok, target, session, sent_s); });
  }

  void on_probe_reply(Cell& c, bool ok, std::uint32_t target,
                      std::uint64_t session, double sent_s) {
    if (!ok) {
      c.blocks.add();
      schedule_idle(c);
      return;
    }
    c.admits.add();
    c.probe_rtt.record((c.sim->now().to_seconds() - sent_s) * 1e3);
    const double dur_s = c.rng.exponential_mean(config_.session_mean.to_seconds());
    const bool abandon = c.rng.bernoulli(config_.abandon_probability);
    c.sim->after(sim::Duration::seconds(dur_s),
                 [this, cp = &c, target, session, abandon] {
                   end_remote_session(*cp, target, session, abandon);
                 });
  }

  void end_remote_session(Cell& c, std::uint32_t target, std::uint64_t session,
                          bool abandon) {
    if (!abandon) {
      runner_.transport(c.index).send(
          fault::Channel(target), hop_latency(c.index, target),
          [this, tp = &cell(target), session] { on_release(*tp, session); });
    }
    schedule_idle(c);
  }

  void on_release(Cell& t, std::uint64_t session) {
    // Erase-guarded so a RELEASE racing the lease sweep (session outlived
    // its lease) cannot free the bandwidth twice.
    if (t.leases.erase(session)) {
      set_allocated(t, t.allocated - config_.session_bandwidth_bps);
      t.releases.add();
    }
  }

  void sweep_leases(Cell& t) {
    const double now_s = t.sim->now().to_seconds();
    // The predicate is pure (compares a stored expiry against a fixed now),
    // as FlatMap::erase_if requires.
    const std::size_t reclaimed = t.leases.erase_if(
        [now_s](std::uint64_t, const Lease& lease) {
          return lease.expiry_s <= now_s;
        });
    if (reclaimed > 0) {
      set_allocated(t, t.allocated - double(reclaimed) *
                           config_.session_bandwidth_bps);
      t.lease_reclaims.add(reclaimed);
    }
  }

  ShardedCampusConfig config_;
  sim::ShardedRunner runner_;
  std::vector<std::unique_ptr<Cell>> cells_;
};

}  // namespace

ShardedCampusResult run_sharded_campus(const ShardedCampusConfig& config) {
  CampusGrid grid(config);
  return grid.run();
}

}  // namespace imrm::experiments
