file(REMOVE_RECURSE
  "CMakeFiles/bench_profile_traffic.dir/bench_profile_traffic.cc.o"
  "CMakeFiles/bench_profile_traffic.dir/bench_profile_traffic.cc.o.d"
  "bench_profile_traffic"
  "bench_profile_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_profile_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
