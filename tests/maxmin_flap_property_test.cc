// Property test for the distributed protocol under rapid capacity flaps
// (ISSUE 3 satellite): set_link_excess_capacity is hammered while ADVERTISE
// packets stamped with the old capacities are still in flight. The staleness
// guard (active_token_ / per-round serialization) must discard every stale
// offer, so the protocol
//   * never plans past the *current* capacity of any link (planned_sum), and
//   * lands exactly on the waterfill fixed point of the final capacities,
//     with no lingering triggers that would move it afterwards.
#include <gtest/gtest.h>

#include <random>

#include "maxmin/problem.h"
#include "maxmin/protocol.h"
#include "maxmin/waterfill.h"
#include "sim/simulator.h"

namespace imrm::maxmin {
namespace {

Problem random_problem(std::mt19937_64& rng) {
  std::uniform_int_distribution<int> n_links_dist(1, 6);
  std::uniform_int_distribution<int> n_conns_dist(2, 10);
  std::uniform_real_distribution<double> cap(1.0, 30.0);
  Problem p;
  const int n_links = n_links_dist(rng);
  for (int i = 0; i < n_links; ++i) p.links.push_back({cap(rng)});
  const int n_conns = n_conns_dist(rng);
  for (int c = 0; c < n_conns; ++c) {
    std::uniform_int_distribution<int> start_dist(0, n_links - 1);
    const int start = start_dist(rng);
    std::uniform_int_distribution<int> end_dist(start, n_links - 1);
    const int end = end_dist(rng);
    ProblemConnection conn;
    for (int li = start; li <= end; ++li) conn.path.push_back(std::size_t(li));
    if (rng() % 4 == 0) conn.demand = cap(rng) / 2.0;
    p.connections.push_back(std::move(conn));
  }
  return p;
}

class CapacityFlapProperties : public ::testing::TestWithParam<int> {};

TEST_P(CapacityFlapProperties, NoStaleAdvertiseSurvivesRapidFlaps) {
  std::mt19937_64 rng{std::uint64_t(GetParam())};
  std::uniform_real_distribution<double> cap(1.0, 30.0);
  for (int round = 0; round < 5; ++round) {
    Problem p = random_problem(rng);
    sim::Simulator simulator;
    DistributedProtocol proto(simulator, p, {});
    proto.start_all();

    // Flap capacities while rounds are mid-flight: a few events between
    // flaps guarantees ADVERTISEs stamped under the old capacity are still
    // crossing the network when it changes.
    for (int flap = 0; flap < 30; ++flap) {
      for (int s = 0; s < 5 && simulator.step(); ++s) {
        for (LinkIndex li = 0; li < proto.link_count(); ++li) {
          EXPECT_LE(proto.planned_sum(li),
                    std::max(proto.link_excess_capacity(li), 0.0) + 1e-9)
              << "link " << li << " planned past its current capacity";
        }
      }
      const LinkIndex li = LinkIndex(rng() % p.links.size());
      const double c = cap(rng);
      p.links[li].excess_capacity = c;
      proto.set_link_excess_capacity(li, c);
    }

    proto.run_to_quiescence();
    ASSERT_FALSE(proto.message_cap_hit());

    // The fixed point of the *final* capacities, as if no flap ever happened.
    const auto optimum = waterfill(p).rates;
    ASSERT_EQ(proto.rates().size(), optimum.size());
    for (std::size_t i = 0; i < optimum.size(); ++i) {
      EXPECT_NEAR(proto.rates()[i], optimum[i], 1e-3)
          << "stale advertise applied to connection " << i;
    }

    // Quiescence is genuine: nothing queued can move the allocation.
    const std::vector<double> settled = proto.rates();
    proto.run_to_quiescence();
    EXPECT_EQ(settled, proto.rates());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CapacityFlapProperties, ::testing::Range(1, 9));

}  // namespace
}  // namespace imrm::maxmin
