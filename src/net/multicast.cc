#include "net/multicast.h"

#include <algorithm>
#include <unordered_map>

namespace imrm::net {

std::size_t MulticastTree::admitted_count() const {
  return std::size_t(std::count_if(branches.begin(), branches.end(),
                                   [](const MulticastBranch& b) { return b.admitted; }));
}

MulticastTree setup_neighbor_multicast(NetworkState& network, const Router& router,
                                       NodeId source,
                                       const std::vector<NodeId>& neighbor_base_stations,
                                       const qos::QosRequest& request,
                                       qos::Scheduler scheduler) {
  MulticastTree tree;
  // The branch only needs the guaranteed minimum: pin b_max to b_min so the
  // reservation never competes for adaptable excess.
  qos::QosRequest branch_request = request;
  branch_request.bandwidth.b_max = branch_request.bandwidth.b_min;

  std::unordered_map<LinkId, int> link_use;
  for (NodeId bs : neighbor_base_stations) {
    MulticastBranch branch;
    branch.target_base_station = bs;
    if (auto route = router.shortest_path(source, bs); route && !route->empty()) {
      branch.route = *route;
      auto id = network.admit(source, bs, branch.route, branch_request,
                              qos::MobilityClass::kMobile, scheduler);
      if (id) {
        branch.admitted = true;
        branch.reservation = *id;
        for (LinkId lid : branch.route) ++link_use[lid];
      }
    }
    tree.branches.push_back(std::move(branch));
  }

  for (const auto& [lid, uses] : link_use) {
    if (uses >= 2) tree.shared_links.push_back(lid);
  }
  std::sort(tree.shared_links.begin(), tree.shared_links.end());
  return tree;
}

void teardown_multicast(NetworkState& network, MulticastTree& tree) {
  for (MulticastBranch& branch : tree.branches) {
    if (branch.admitted && branch.reservation.is_valid()) {
      network.teardown(branch.reservation);
      branch.admitted = false;
      branch.reservation = ConnectionId::invalid();
    }
  }
}

}  // namespace imrm::net
