// Ablation: the static/mobile threshold T_th (Section 3.4.2).
//
// A small T_th upgrades dwellers to "static" quickly — they get QoS
// upgrades toward b_max and stop consuming advance reservations — but
// misclassifies users who move again soon, whose sudden handoffs must then
// be absorbed by the B_dyn pool. A large T_th keeps everyone "mobile":
// allocations pinned at b_min and reservations placed everywhere.
//
// Workload: Figure 4 environment, a population of walkers with heavy-tailed
// dwell times (a mix of short hops and long office stays), each holding one
// adaptive 16..64 kbps connection.
#include <iostream>
#include <memory>

#include "core/environment.h"
#include "mobility/floorplan.h"
#include "mobility/movement.h"
#include "sim/random.h"
#include "stats/table.h"
#include "stats/timeseries.h"

using namespace imrm;
using core::Environment;
using core::EnvironmentConfig;
using qos::kbps;

namespace {

struct Outcome {
  double mean_allocated_kbps = 0.0;  // time-sampled mean allocation
  std::size_t drops = 0;
  std::size_t reservations = 0;
  std::size_t prediction_hits = 0;
  std::size_t handoffs = 0;
};

Outcome run(sim::Duration t_th, std::uint64_t seed) {
  sim::Simulator simulator;
  EnvironmentConfig config;
  config.cell_capacity = qos::mbps(1.6);
  config.static_threshold = t_th;
  Environment env(mobility::fig4_environment(), simulator, config);
  const auto cells = mobility::fig4_cells(env.map());

  sim::Rng rng(seed);
  const mobility::TransitionTable table =
      mobility::fig4_transition_table(env.map(), mobility::fig4_student_weights());

  // 24 walkers, each with one adaptive connection.
  std::vector<net::PortableId> users;
  for (int i = 0; i < 24; ++i) {
    const auto p = env.add_portable(cells.c, i % 3 == 0 ? std::optional(cells.b)
                                                        : std::nullopt);
    env.open_connection(p, {kbps(16), kbps(64)});
    users.push_back(p);
  }

  const sim::SimTime horizon = sim::SimTime::hours(8);

  // Self-scheduling walker steps: offices hold users for long stays,
  // corridors for short hops.
  struct Walker {
    Environment* env;
    const mobility::TransitionTable* table;
    sim::Rng rng;
    sim::SimTime horizon;

    void step(net::PortableId p) {
      auto& simulator = env->simulator();
      const auto& portable = env->mobility().portable(p);
      const bool in_office =
          env->map().cell(portable.current_cell).cell_class ==
          mobility::CellClass::kOffice;
      const double mean_minutes = in_office ? 25.0 : 1.5;
      const auto dwell = sim::Duration::minutes(rng.exponential_mean(mean_minutes));
      const sim::SimTime at = simulator.now() + dwell;
      if (at > horizon) return;
      simulator.at(at, [this, p] {
        const auto& me = env->mobility().portable(p);
        const mobility::CellId next =
            table->sample(env->map(), me.previous_cell, me.current_cell, rng);
        const bool survived = env->handoff(p, next);
        if (survived || !env->has_connection(p)) step(p);
      });
    }
  };
  auto walker = std::make_shared<Walker>(Walker{&env, &table, rng.fork(), horizon});
  for (auto p : users) walker->step(p);

  // Sample mean allocation every simulated minute.
  stats::Summary allocation;
  simulator.every(sim::Duration::minutes(1), horizon, [&] {
    env.refresh();
    double total = 0.0;
    std::size_t n = 0;
    for (auto p : users) {
      if (env.has_connection(p)) {
        total += env.allocated(p);
        ++n;
      }
    }
    if (n > 0) allocation.add(total / double(n));
  });

  simulator.run();

  Outcome out;
  out.mean_allocated_kbps = allocation.mean() / 1e3;
  out.drops = env.stats().handoff_drops;
  out.reservations = env.stats().reservations_placed;
  out.prediction_hits = env.stats().predictions_correct;
  out.handoffs = env.stats().handoffs;
  return out;
}

}  // namespace

int main() {
  std::cout << "== Ablation: static/mobile threshold T_th ==\n";
  std::cout << "24 users, one adaptive 16..64 kbps connection each, 8 h walk\n\n";

  stats::Table table({"T_th", "mean allocation (kbps)", "handoffs", "drops",
                      "advance reservations", "prediction hits"});
  for (double minutes : {0.5, 1.0, 3.0, 10.0, 30.0, 120.0}) {
    const Outcome out = run(sim::Duration::minutes(minutes), 17);
    table.add_row({stats::fmt(minutes, 1) + " min",
                   stats::fmt(out.mean_allocated_kbps, 1), std::to_string(out.handoffs),
                   std::to_string(out.drops), std::to_string(out.reservations),
                   std::to_string(out.prediction_hits)});
  }
  table.print(std::cout);

  std::cout << "\nSmall T_th: connections spend more time classified static and\n"
               "enjoy upgraded allocations, at the price of reservation churn for\n"
               "users that move right after upgrading. Large T_th pins everyone\n"
               "at b_min (paper default: a few minutes).\n";
  return 0;
}
