// Sharded conservative-window execution of multi-domain simulations
// (ISSUE 5), with window-batched barriers (ISSUE 10).
//
// The campus scenarios partition naturally by cell: every intra-cell event
// (arrivals, departures, local admission) touches one cell's state only,
// while cross-cell traffic (handoff signaling, max-min ADVERTISE/UPDATE,
// admission probes) rides the corridor backbone and therefore pays at least
// one control-plane hop of latency. ShardedRunner exploits that structure:
// each *domain* (one cell, or one protocol segment) owns a private Simulator,
// event queue, and whatever per-domain state the experiment hangs off it, and
// K worker threads execute disjoint domain subsets in lockstep time windows
// of width `window` — the classic conservative PDES scheme, with the minimum
// cross-shard hop latency as the lookahead bound.
//
// Protocol per window (unchanged since ISSUE 5 — this sequence is the
// determinism contract):
//  1. all domains run run_until(T + window), where T is the earliest pending
//     event time across every domain (idle domains skip ahead for free);
//  2. exchange: cross-domain messages posted during the window are gathered
//     from per-source outboxes and injected into their destination queues.
// A message posted while a domain executes an event at time t is delivered
// at t + latency with latency >= window, hence strictly after the window
// end: no domain can ever receive a message into its past, for any worker
// count.
//
// What ISSUE 10 changes is *who synchronizes where*, not the window
// sequence. ISSUE 5 paid a full coordinator round trip (mutex + two condvar
// hops + a sleeping-thread wakeup) per window — BENCH_5/BENCH_7 measured
// ~80k such barriers on the campus day with ~1.2 events between them, ~90%
// of worker wall in `barrier_wait`. Now the coordinator dispatches a *burst*
// of up to `batch` windows at a time. Inside a burst, workers meet at a
// lightweight sense-reversing atomic barrier between sub-windows; the last
// worker to arrive (the serializer) performs the exchange, scans the queue
// heads for the next window target, and publishes it (or the burst-done
// flag) before releasing the others with one release-ordered phase bump.
// Boundary messages thus ship in per-sub-window batches without the
// coordinator ever waking: condvar round trips drop by the batch factor,
// which is what the ISSUE 10 acceptance criterion counts (`Stats::
// dispatches`, exported as the profile's `barriers`).
//
// Determinism across worker counts AND batch sizes is a contract, not an
// accident:
//  * the domain partition is fixed by the scenario (one cell = one domain);
//    workers are only an execution vehicle, so changing K never changes
//    which messages are "remote";
//  * every cross-domain message goes through the outbox/exchange path — even
//    when source and destination happen to run on the same worker — so the
//    delivery schedule is identical at K = 1 and K = 8;
//  * at each exchange, messages are injected per destination in the
//    canonical order (deliver time, source domain, per-source serial), all
//    of which are partition-invariant; FIFO sequence numbers in the
//    destination queue then break equal-time ties identically for any K;
//  * burst boundaries only decide when the coordinator thread regains
//    control — the sub-window targets, exchange contents and exchange order
//    are computed by the same code from the same simulation state whether a
//    window is the first of a burst or the hundredth, so `batch` (and the
//    adaptive controller's choices) can never leak into results.
// tests/sharded_runner_test.cc and the shard-labeled campus determinism
// suite assert byte-identical metrics at K in {1, 2, 4, 8} and batch in
// {1, 8, 64, auto}.
#pragma once

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "fault/transport.h"
#include "obs/profiler.h"
#include "obs/progress.h"
#include "obs/tracer.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace imrm::sim {

class ShardedRunner {
 public:
  /// Chrome-trace pid claimed for the wall-clock shard lanes; pid 1 stays
  /// the simulated-time process (see obs::TraceRecord::pid).
  static constexpr std::uint32_t kShardLanePid = 2;

  /// Adaptive batch controller bounds (Config::batch == 0). The floor keeps
  /// even pathological runs ahead of the ISSUE 5 one-window dispatches; the
  /// cap bounds how long the coordinator (and with it the progress meter and
  /// any caller polling between run_until calls) can go dark.
  static constexpr std::size_t kAutoBatchMin = 8;
  static constexpr std::size_t kAutoBatchMax = 4096;

  struct Config {
    /// Number of simulation domains (cells / protocol segments). Fixed by
    /// the scenario; determinism is per-domain, not per-worker.
    std::size_t domains = 1;
    /// Worker threads executing domains. 0 selects hardware concurrency;
    /// clamped to `domains`. 1 runs inline with no thread pool.
    std::size_t workers = 1;
    /// Conservative window width; must be <= the smallest latency ever
    /// passed to post(). For the campus this is the corridor hop latency.
    Duration window = Duration::millis(1.0);
    /// Windows executed per coordinator dispatch. 0 (the default) enables
    /// the adaptive controller: start at kAutoBatchMin, double whenever a
    /// burst exhausts its budget while events remain — and, when the
    /// profiler is armed, steer on the measured dispatch wall instead (grow
    /// while dispatches stay short, back off past ~50 ms so the coordinator
    /// never goes dark). Any value >= 1 pins the burst length. Batch size
    /// affects synchronization cost only, never results: the window
    /// sequence, exchange contents and injection order are batch-invariant
    /// by construction (see file header).
    std::size_t batch = 0;
    /// Optional wall-clock attribution (ISSUE 7). When set and enabled, the
    /// runner keeps per-worker busy/barrier-wait/idle lanes, straggler
    /// counts, and window/messages/batch histograms; collect them with
    /// export_profile(). Profiling only reads clocks — event execution and
    /// the injection schedule are untouched, so metrics stay byte-identical.
    obs::Profiler* profiler = nullptr;
    /// Optional wall-clock trace lanes: per-worker busy spans plus a
    /// coordinator barrier span per dispatch on pid kShardLanePid (tid =
    /// worker; tid = worker count is the coordinator's lane, its span arg
    /// the burst's window count). Records are coordinator-emitted between
    /// dispatches, honoring the tracer's single-writer discipline.
    /// Requires `profiler` to be set and enabled.
    obs::Tracer* tracer = nullptr;
    /// Optional stderr heartbeat, polled once per coordinator dispatch.
    obs::ProgressMeter* progress = nullptr;
  };

  struct Stats {
    std::uint64_t windows = 0;            ///< lockstep windows executed
    std::uint64_t boundary_messages = 0;  ///< cross-domain messages delivered
    /// Coordinator dispatches (full-stop barriers with a condvar round
    /// trip). windows / dispatches is the realized batch factor; ISSUE 5
    /// behavior is dispatches == windows.
    std::uint64_t dispatches = 0;
  };

  explicit ShardedRunner(const Config& config);
  ~ShardedRunner();

  ShardedRunner(const ShardedRunner&) = delete;
  ShardedRunner& operator=(const ShardedRunner&) = delete;

  [[nodiscard]] std::size_t domain_count() const { return sims_.size(); }
  [[nodiscard]] Simulator& domain(std::size_t d) { return *sims_[d]; }
  [[nodiscard]] const Simulator& domain(std::size_t d) const { return *sims_[d]; }

  /// The boundary transport owned by domain `from`: a fault::Transport whose
  /// Channel operand names the *destination domain*. Protocol code written
  /// against Transport (max-min, signaling) shards without modification —
  /// hand each domain's protocol instance its domain's transport.
  [[nodiscard]] fault::Transport& transport(std::size_t from) {
    return *transports_[from];
  }

  /// Posts a cross-domain message: `deliver` runs on domain `to`'s simulator
  /// `latency` after domain `from`'s current time. `latency` must be >= the
  /// configured window (asserted) — that bound is what lets whole windows
  /// run without intermediate synchronization. Always buffered through the
  /// exchange, never scheduled directly, even for from == to; see the
  /// determinism contract above.
  void post(std::size_t from, std::size_t to, Duration latency,
            EventQueue::Callback deliver);

  /// Runs every domain to `horizon` in lockstep windows. Returns the total
  /// number of events fired across all domains during this call. May be
  /// called repeatedly with increasing horizons.
  std::uint64_t run_until(SimTime horizon);

  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Sum of events fired across all domains (lifetime).
  [[nodiscard]] std::uint64_t events_fired() const;

  /// Copies the sharded-execution accounting (per-lane busy/barrier/idle,
  /// straggler counts, dispatch/window totals, batch histograms) into `out`.
  /// A no-op when the runner never ran with profiling enabled, so `out`
  /// stays empty and the run report carries no profile block.
  void export_profile(obs::ProfileSnapshot& out) const;

 private:
  struct Envelope {
    SimTime deliver_time;
    std::size_t to = 0;
    EventQueue::Callback callback;
  };

  class BoundaryTransport final : public fault::Transport {
   public:
    BoundaryTransport(ShardedRunner& runner, std::size_t from)
        : runner_(&runner), from_(from) {}
    void send(fault::Channel channel, Duration latency,
              EventQueue::Callback deliver) override {
      runner_->post(from_, std::size_t(channel), latency, std::move(deliver));
    }

   private:
    ShardedRunner* runner_;
    std::size_t from_;
  };

  void run_burst(std::size_t worker);
  void serialize_sub_window();
  void run_domains(std::size_t worker, SimTime target);
  void exchange();
  void worker_loop(std::size_t worker);
  void arm_profiling();
  [[nodiscard]] std::size_t next_batch_budget() const;
  void update_batch_controller(std::uint64_t dispatch_wall_ns);
  void account_dispatch(std::uint64_t prep_start_ns,
                        std::uint64_t dispatch_start_ns,
                        std::uint64_t dispatch_end_ns);

  Config config_;
  std::vector<std::unique_ptr<Simulator>> sims_;
  std::vector<std::unique_ptr<BoundaryTransport>> transports_;
  // Per-source-domain outboxes: while a window runs, outbox[d] is written
  // only by the worker executing domain d, and the serializer drains them
  // only between sub-windows (inside the burst barrier), so no per-message
  // lock.
  std::vector<std::vector<Envelope>> outboxes_;
  // Exchange scratch, per destination; reused across windows.
  std::vector<std::vector<Envelope>> inject_;
  Stats stats_;

  // Worker pool (only started when min(workers, domains) > 1). Contiguous
  // block assignment — worker w owns domains [w * D / W, (w + 1) * D / W) —
  // doubles as the cell→shard partitioner for grid scenarios that map one
  // cell to one domain.
  std::size_t worker_count_ = 1;
  std::vector<std::thread> pool_;
  std::mutex mutex_;
  std::condition_variable round_cv_;
  std::condition_variable done_cv_;
  std::uint64_t round_ = 0;    // dispatch generation; bump wakes workers
  std::size_t running_ = 0;    // workers still executing the current burst
  bool shutdown_ = false;

  // ---- burst state (ISSUE 10) -------------------------------------------
  // Plain fields carry the burst protocol; their visibility is sequenced by
  // exactly two synchronization edges. Coordinator -> workers at dispatch:
  // written under mutex_ before the round_ bump, read after the round_cv_
  // wait. Serializer -> everyone between sub-windows: written before the
  // release-ordered sub_phase_ bump, read after the acquire load (workers)
  // or after the mutex_-guarded running_ decrement (coordinator).
  SimTime run_horizon_;        // this run_until's horizon
  SimTime sub_target_;         // current sub-window target
  SimTime burst_min_next_;     // min queue head published at burst end
  std::size_t burst_budget_ = 0;     // windows allowed in this burst
  std::uint64_t burst_windows_ = 0;  // windows executed in this burst
  bool burst_done_ = false;
  bool burst_exhausted_ = false;  // ended on budget, with events remaining
  // Sense-reversing barrier: arrived_ counts workers still inside the
  // current sub-window (the fetch_sub that hits 1 elects the serializer);
  // sub_phase_ is the release gate the others spin on. acq_rel on arrived_
  // chains every worker's window work into the serializer's view; the
  // release bump hands the serializer's writes back out.
  std::atomic<std::size_t> arrived_{0};
  std::atomic<std::uint64_t> sub_phase_{0};
  std::size_t auto_batch_ = kAutoBatchMin;  // adaptive controller state

  // ---- wall-clock profiling (ISSUE 7) -----------------------------------
  // profile_active_ is latched at the top of run_until, before any dispatch;
  // workers observe it through the dispatch barrier's mutex, so no extra
  // synchronization is needed. busy_scratch_[w] is *accumulated* by worker w
  // across a burst's sub-windows (zeroed by the coordinator per dispatch)
  // and read by the coordinator after the done_cv_ wait — same single-writer
  // discipline as the outboxes. The histograms and sub_start_ns_ are written
  // only by the serializer, whose writes the burst barrier already orders.
  bool profile_active_ = false;
  std::uint64_t wall_epoch_ns_ = 0;  // first profiled run_until; trace time base
  std::vector<obs::ShardLaneSample> lanes_;
  // One busy-time slot per worker, padded to a cache line: adjacent workers
  // write their slots every window, and packed u64s would false-share.
  struct alignas(64) BusySlot {
    std::uint64_t ns = 0;
  };
  std::vector<BusySlot> busy_scratch_;
  // Window wall lengths: 1 us .. ~18 min (2^40 ns), 2 sub-buckets/octave.
  obs::Histogram window_hist_{obs::HistogramSpec::log2(1024.0, 1024.0 * 1073741824.0, 2)};
  // Messages injected per exchange; zero-message exchanges land in underflow.
  obs::Histogram messages_hist_{obs::HistogramSpec::log2(1.0, 1048576.0, 2)};
  // Windows per coordinator dispatch (the realized batch size / occupancy).
  obs::Histogram batch_hist_{obs::HistogramSpec::log2(1.0, 8192.0, 1)};
  obs::PhaseId ph_exchange_ = obs::kInvalidPhase;
  obs::PhaseId ph_window_ = obs::kInvalidPhase;
  obs::NameId tr_busy_ = obs::kInvalidName;
  obs::NameId tr_barrier_ = obs::kInvalidName;
  bool lanes_declared_ = false;
  int last_straggler_ = -1;
  std::uint64_t sub_start_ns_ = 0;  // serializer-owned sub-window stamp
  /// Windows / dispatches executed while profiling was active (== the Stats
  /// counters when profiling covered the whole run). Dispatches are the
  /// profile's barrier count, so the straggler tally always sums to it.
  std::uint64_t profiled_windows_ = 0;
  std::uint64_t profiled_dispatches_ = 0;
  /// Wall nanoseconds covered by dispatch accounting: every lane satisfies
  /// busy + barrier_wait + idle == profiled_wall_ns (the satellite-1
  /// regression contract).
  std::uint64_t profiled_wall_ns_ = 0;
};

}  // namespace imrm::sim
