// In-process ring transport: a bounded SPSC ring in each direction.
//
// Two usage modes share this code:
//  * same-thread (virtual pacing) — the driver and the service interleave on
//    one sim::Simulator; push/pop never contend and the run is bit-
//    deterministic at a fixed seed;
//  * two threads (wall pacing) — one producer thread (driver) and one
//    consumer thread (service) per ring, the classic single-producer/
//    single-consumer discipline with acquire/release indices and no locks.
//
// Capacity bounds are part of the overload story: a full request ring is
// transport backpressure (counted by the driver as `drive.backpressure`),
// upstream of the service's own queue-depth shedding.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "serve/transport.h"

namespace imrm::serve {

/// Fixed-capacity single-producer/single-consumer frame ring. Capacity is
/// rounded up to a power of two so the index math is a mask, not a modulo.
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity);

  /// Producer side. False when the ring is full (frame left untouched).
  bool push(std::vector<std::uint8_t>&& frame);

  /// Consumer side. False when the ring is empty.
  bool pop(std::vector<std::uint8_t>& frame);

  [[nodiscard]] bool empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

 private:
  std::vector<std::vector<std::uint8_t>> slots_;
  std::size_t mask_;
  std::atomic<std::size_t> head_{0};  // next slot the producer writes
  std::atomic<std::size_t> tail_{0};  // next slot the consumer reads
};

/// The paired endpoints over two SpscRings (requests out, replies back).
/// Construct once, then hand server()/client() to the two sides. The
/// endpoints stay valid for the RingTransport's lifetime.
class RingTransport {
 public:
  /// `request_capacity` bounds in-flight unread requests (transport
  /// backpressure); `reply_capacity` must cover the largest burst of replies
  /// the driver lets accumulate between drains.
  explicit RingTransport(std::size_t request_capacity = 4096,
                         std::size_t reply_capacity = 8192);

  [[nodiscard]] ServerTransport& server() { return server_end_; }
  [[nodiscard]] ClientTransport& client() { return client_end_; }

  /// Replies the server could not enqueue (reply ring full). Zero in every
  /// correctly-sized run; tests assert on it.
  [[nodiscard]] std::uint64_t dropped_replies() const { return dropped_replies_; }

 private:
  class ServerEnd final : public ServerTransport {
   public:
    explicit ServerEnd(RingTransport* owner) : owner_(owner) {}
    bool next_request(Envelope& env, std::chrono::microseconds wait) override;
    void send_reply(std::uint64_t client, std::vector<std::uint8_t> frame) override;
    [[nodiscard]] bool finished() const override;

   private:
    RingTransport* owner_;
  };

  class ClientEnd final : public ClientTransport {
   public:
    explicit ClientEnd(RingTransport* owner) : owner_(owner) {}
    bool send_request(std::vector<std::uint8_t> frame) override;
    bool next_reply(std::vector<std::uint8_t>& frame,
                    std::chrono::microseconds wait) override;
    void close() override;

   private:
    RingTransport* owner_;
  };

  SpscRing requests_;
  SpscRing replies_;
  std::atomic<bool> client_closed_{false};
  std::uint64_t dropped_replies_ = 0;  // server-side only; single consumer
  ServerEnd server_end_{this};
  ClientEnd client_end_{this};
};

}  // namespace imrm::serve
