#include "experiments/campus_day.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <unordered_map>

#include "mobility/floorplan.h"
#include "mobility/manager.h"
#include "prediction/predictor.h"
#include "profiles/profile_server.h"
#include "reservation/dispatcher.h"
#include "sim/random.h"
#include "sim/replication.h"
#include "sim/simulator.h"
#include "workload/connection_mix.h"

namespace imrm::experiments {

using mobility::CellId;
using net::PortableId;
using qos::kbps;
using sim::Duration;
using sim::SimTime;

std::string to_string(CampusPolicy policy) {
  switch (policy) {
    case CampusPolicy::kNone: return "none";
    case CampusPolicy::kStatic: return "static";
    case CampusPolicy::kBruteForce: return "brute-force";
    case CampusPolicy::kAggregate: return "aggregate";
    case CampusPolicy::kDispatcher: return "dispatcher (Sec. 6.4)";
  }
  return "unknown";
}

namespace {

class CampusDay {
 public:
  explicit CampusDay(const CampusDayConfig& config)
      : config_(config), map_(mobility::campus_environment()),
        manager_(map_, simulator_, Duration::minutes(3)), server_(net::ZoneId{0}),
        predictor_(map_, server_), rng_(config.seed) {
    for (const auto& cell : map_.cells()) {
      directory_.add_cell(cell.id, config_.cell_capacity);
    }
    room_ = *map_.find("meeting-room");
    corridor_ = *map_.find("corridor-0");
    far_corridor_ = *map_.find("corridor-3");
    server_.calendar(room_).book(
        {config_.meeting_start, config_.meeting_stop, config_.attendees});

    manager_.on_handoff([this](const mobility::HandoffEvent& e) {
      server_.record_handoff(e);
      if (policy_) policy_->on_handoff(e);
    });
    build_policy();

    // Only fork a probe stream when faults are on, so fault-free days keep
    // drawing exactly the pre-fault sequence from rng_.
    if (config_.faults.enabled()) probe_.emplace(config_.faults, rng_.fork());

    if (config_.tracer) simulator_.set_tracer(config_.tracer);
    if (config_.metrics) {
      directory_.bind_metrics(*config_.metrics);
      manager_.bind_metrics(*config_.metrics);
      if (config_.wall_metrics) manager_.bind_latency_metrics(*config_.metrics);
      if (probe_) probe_->bind_metrics(config_.metrics);
    }
  }

  CampusDayResult run() {
    schedule_attendees();
    schedule_squatters();
    schedule_roamers();

    const SimTime horizon = config_.meeting_stop + Duration::minutes(40);
    simulator_.every(Duration::seconds(30), horizon, [this] { refresh(); });
    simulator_.every(Duration::minutes(1), horizon, [this] {
      result_.room_peak_allocated =
          std::max(result_.room_peak_allocated, directory_.at(room_).allocated());
    });
    simulator_.run();
    result_.policy = to_string(config_.policy);
    if (config_.metrics) export_metrics(*config_.metrics);
    return result_;
  }

 private:
  reservation::PolicyEnv env() {
    reservation::PolicyEnv e;
    e.map = &map_;
    e.directory = &directory_;
    e.profiles = &server_;
    e.demand = [this](PortableId p) {
      const auto it = demand_.find(p);
      return it == demand_.end() ? 0.0 : it->second;
    };
    e.classify = [this](PortableId p) { return manager_.classify(p); };
    e.portables_in = [this](CellId c) { return manager_.portables_in(c); };
    e.previous_cell = [this](PortableId p) { return manager_.portable(p).previous_cell; };
    return e;
  }

  void build_policy() {
    switch (config_.policy) {
      case CampusPolicy::kNone:
        policy_ = std::make_unique<reservation::NoReservationPolicy>(env());
        break;
      case CampusPolicy::kStatic:
        policy_ = std::make_unique<reservation::StaticPolicy>(env(), 0.10);
        break;
      case CampusPolicy::kBruteForce:
        policy_ = std::make_unique<reservation::BruteForcePolicy>(env());
        break;
      case CampusPolicy::kAggregate:
        policy_ = std::make_unique<reservation::AggregatePolicy>(env());
        break;
      case CampusPolicy::kDispatcher:
        policy_ = std::make_unique<reservation::PolicyDispatcher>(
            env(), predictor_, server_, reservation::PolicyDispatcher::Params{});
        break;
    }
  }

  void refresh() { policy_->refresh(simulator_.now()); }

  void export_metrics(obs::Registry& m) const {
    simulator_.collect_metrics(m);
    m.counter("campus.attendee_drops").add(result_.attendee_drops);
    m.counter("campus.squatter_blocks").add(result_.squatter_blocks);
    m.counter("campus.squatter_admits").add(result_.squatter_admits);
    m.counter("campus.other_drops").add(result_.other_drops);
    m.gauge("campus.room_peak_allocated_bps").set(result_.room_peak_allocated);
  }

  void do_handoff(PortableId p, CellId to, bool is_attendee) {
    const CellId from = manager_.portable(p).current_cell;
    if (from == to || !map_.cell(from).is_neighbor(to)) return;
    const auto it = demand_.find(p);
    const bool connected = it != demand_.end();
    if (connected) directory_.at(from).release(p);
    manager_.move(p, to);
    ++result_.handoffs;
    if (connected &&
        !(probe_signaling() && directory_.at(to).admit_handoff(p, it->second))) {
      if (is_attendee) {
        ++result_.attendee_drops;
      } else {
        ++result_.other_drops;
      }
      demand_.erase(it);
    }
    refresh();
  }

  void schedule_attendees() {
    const workload::ConnectionMix mix = workload::paper_fig5_mix();
    // The corridor chain from the far end to the room's corridor.
    const std::vector<CellId> chain{*map_.find("corridor-3"), *map_.find("corridor-2"),
                                    *map_.find("corridor-1"), *map_.find("corridor-0")};
    for (std::size_t i = 0; i < config_.attendees; ++i) {
      const PortableId p = manager_.add_portable(far_corridor_);
      const qos::BitsPerSecond b = mix.sample(rng_);
      // Appear in the far corridor with a connection well before the
      // meeting, walk the corridor chain to the room around the start,
      // leave after.
      const double appear = rng_.uniform(5.0, 30.0);
      simulator_.at(SimTime::minutes(appear), [this, p, b] {
        if (probe_signaling() && directory_.at(far_corridor_).admit_new(p, b)) {
          demand_[p] = b;
        }
        refresh();
      });
      const double arrive =
          config_.meeting_start.to_minutes() + rng_.truncated_normal(-2.0, 3.0, -8.0, 2.0);
      for (std::size_t hop = 1; hop < chain.size(); ++hop) {
        const double at = arrive - double(chain.size() - hop) * 0.7;
        simulator_.at(SimTime::minutes(at),
                      [this, p, to = chain[hop]] { do_handoff(p, to, true); });
      }
      simulator_.at(SimTime::minutes(arrive), [this, p] { do_handoff(p, room_, true); });
      const double leave = config_.meeting_stop.to_minutes() + rng_.uniform(0.0, 5.0);
      simulator_.at(SimTime::minutes(leave), [this, p] { do_handoff(p, corridor_, true); });
    }
  }

  void schedule_squatters() {
    // Attempts spread from well before the meeting into the reservation
    // window (T_s - 10 min onward): reservation-aware policies block the
    // late ones; with no reservations they all land.
    for (std::size_t i = 0; i < config_.squatters; ++i) {
      const PortableId p = manager_.add_portable(room_);
      retry_squat(p, rng_.uniform(40.0, config_.meeting_start.to_minutes() - 1.0));
    }
  }

  /// A squatter repeatedly tries to open a bulk connection; once admitted it
  /// holds it for the rest of the day (the adversarial case for the meeting).
  void retry_squat(PortableId p, double at_minutes) {
    simulator_.at(SimTime::minutes(at_minutes), [this, p] {
      if (demand_.contains(p)) return;
      if (probe_signaling() &&
          directory_.at(room_).admit_new(p, config_.squatter_bandwidth)) {
        demand_[p] = config_.squatter_bandwidth;
        ++result_.squatter_admits;
      } else {
        ++result_.squatter_blocks;
        retry_squat(p, simulator_.now().to_minutes() + 5.0);
      }
      refresh();
    });
  }

  void schedule_roamers() {
    // Light corridor background so profiles have something to aggregate.
    for (int i = 0; i < 6; ++i) {
      const PortableId p = manager_.add_portable(corridor_);
      double t = rng_.uniform(1.0, 10.0);
      CellId a = corridor_, b = far_corridor_;
      for (int hop = 0; hop < 30; ++hop) {
        // Ping-pong along the corridor chain.
        const auto path_cells = map_.cell(a).neighbors;
        t += rng_.exponential_mean(6.0);
        const CellId target = b;
        simulator_.at(SimTime::minutes(t), [this, p, target] {
          // Walk one step toward the target along the corridor backbone.
          const auto& me = manager_.portable(p);
          for (CellId n : map_.cell(me.current_cell).neighbors) {
            if (map_.cell(n).cell_class == mobility::CellClass::kCorridor) {
              do_handoff(p, n, false);
              break;
            }
          }
        });
        std::swap(a, b);
      }
    }
  }

  /// True when the admission probe got through (or faults are off). A false
  /// return is a timed-out probe: the caller must treat it as a rejection.
  [[nodiscard]] bool probe_signaling() { return !probe_ || probe_->attempt(); }

  CampusDayConfig config_;
  mobility::CellMap map_;
  sim::Simulator simulator_;
  std::optional<fault::UnreliableCall> probe_;
  mobility::MobilityManager manager_;
  profiles::ProfileServer server_;
  prediction::ThreeLevelPredictor predictor_;
  reservation::ReservationDirectory directory_;
  std::unordered_map<PortableId, qos::BitsPerSecond> demand_;
  std::unique_ptr<reservation::AdvanceReservationPolicy> policy_;
  sim::Rng rng_;
  CellId room_, corridor_, far_corridor_;
  CampusDayResult result_;
};

}  // namespace

CampusDayResult run_campus_day(const CampusDayConfig& config) {
  return CampusDay(config).run();
}

CampusSweepResult run_campus_day_sweep(const CampusSweepConfig& config) {
  struct Replication {
    CampusDayResult day;
    obs::Snapshot metrics;
  };
  const sim::ReplicationRunner runner(config.threads);
  const std::vector<Replication> replications =
      runner.run(config.replications, config.base_seed,
                 [&](std::uint64_t seed, std::size_t) {
                   // Each replication collects into its own registry; wall
                   // metrics and tracing stay off so every snapshot is a
                   // pure function of the seed.
                   obs::Registry registry;
                   CampusDayConfig day = config.base;
                   day.seed = seed;
                   day.metrics = &registry;
                   day.tracer = nullptr;
                   day.wall_metrics = false;
                   Replication r;
                   r.day = run_campus_day(day);
                   r.metrics = registry.snapshot();
                   return r;
                 });

  // Fold in replication order: byte-identical at any thread count.
  CampusSweepResult sweep;
  sweep.policy = to_string(config.base.policy);
  sweep.replications = replications.size();
  for (const Replication& rep : replications) {
    const CampusDayResult& r = rep.day;
    sweep.attendee_drops += r.attendee_drops;
    sweep.squatter_blocks += r.squatter_blocks;
    sweep.squatter_admits += r.squatter_admits;
    sweep.other_drops += r.other_drops;
    sweep.handoffs += r.handoffs;
    sweep.mean_room_peak_allocated += r.room_peak_allocated;
    sweep.max_room_peak_allocated =
        std::max(sweep.max_room_peak_allocated, r.room_peak_allocated);
    sweep.metrics.merge(rep.metrics);
  }
  if (!replications.empty()) {
    sweep.mean_room_peak_allocated /= double(replications.size());
  }
  return sweep;
}

}  // namespace imrm::experiments
