# Empty compiler generated dependencies file for imrm_qos.
# This may be replaced when dependencies are built.
