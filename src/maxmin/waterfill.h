// Centralized max-min fair allocation by progressive filling.
//
// This is the ground truth that the distributed ADVERTISE/UPDATE protocol of
// Section 5.3.1 must converge to (Theorem 1). It also implements the
// recursive "network bottleneck link" definition of Section 5.2: repeatedly
// find the link that minimizes fair share among unsatisfied connections,
// freeze its connections at that share, remove and recurse.
#pragma once

#include <vector>

#include "maxmin/problem.h"

namespace imrm::maxmin {

struct WaterfillResult {
  std::vector<double> rates;            // per-connection excess allocation
  std::vector<LinkIndex> bottleneck_of; // per-connection bottleneck link
                                        // (size_t(-1) for demand-limited)
  std::vector<LinkIndex> fill_order;    // network bottlenecks in freezing order
};

inline constexpr LinkIndex kDemandLimited = static_cast<LinkIndex>(-1);

/// Computes the max-min fair allocation. Precondition: problem.valid().
[[nodiscard]] WaterfillResult waterfill(const Problem& problem);

/// Single-link excess division: the max-min fair split of `excess` among
/// connections whose demands are capped by `headrooms[i]` (each connection's
/// b_max - b_min). This is the in-cell query Environment::adapt_cell and the
/// adaptation loop's re-division both run — one shared implementation so the
/// control plane and the data-plane shaper agree on the split bit-for-bit.
/// Returns per-connection excess shares (same order as headrooms).
[[nodiscard]] std::vector<double> divide_excess(double excess,
                                                const std::vector<double>& headrooms);

}  // namespace imrm::maxmin
