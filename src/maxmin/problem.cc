#include "maxmin/problem.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace imrm::maxmin {

bool Problem::valid() const {
  for (const ProblemLink& l : links) {
    if (l.excess_capacity < 0.0) return false;
  }
  for (const ProblemConnection& c : connections) {
    if (c.path.empty()) return false;
    if (c.demand < 0.0) return false;
    for (LinkIndex li : c.path) {
      if (li >= links.size()) return false;
    }
  }
  return true;
}

std::vector<std::vector<ConnIndex>> Problem::connections_by_link() const {
  std::vector<std::vector<ConnIndex>> by_link(links.size());
  for (ConnIndex ci = 0; ci < connections.size(); ++ci) {
    for (LinkIndex li : connections[ci].path) by_link[li].push_back(ci);
  }
  return by_link;
}

bool is_feasible(const Problem& problem, const std::vector<double>& rates, double slack) {
  assert(rates.size() == problem.connections.size());
  for (ConnIndex ci = 0; ci < rates.size(); ++ci) {
    if (rates[ci] < -slack) return false;
    if (rates[ci] > problem.connections[ci].demand + slack) return false;
  }
  const auto by_link = problem.connections_by_link();
  for (LinkIndex li = 0; li < problem.links.size(); ++li) {
    double load = 0.0;
    for (ConnIndex ci : by_link[li]) load += rates[ci];
    if (load > problem.links[li].excess_capacity + slack) return false;
  }
  return true;
}

bool is_maxmin_optimal(const Problem& problem, const std::vector<double>& rates,
                       double slack) {
  if (!is_feasible(problem, rates, slack)) return false;
  const auto by_link = problem.connections_by_link();

  std::vector<double> link_load(problem.links.size(), 0.0);
  for (LinkIndex li = 0; li < problem.links.size(); ++li) {
    for (ConnIndex ci : by_link[li]) link_load[li] += rates[ci];
  }

  for (ConnIndex ci = 0; ci < rates.size(); ++ci) {
    const auto& conn = problem.connections[ci];
    if (rates[ci] >= conn.demand - slack) continue;  // demand-satisfied
    // Must have a bottleneck: a saturated link where this connection's rate
    // is maximal among the link's connections.
    bool has_bottleneck = false;
    for (LinkIndex li : conn.path) {
      const bool saturated =
          link_load[li] >= problem.links[li].excess_capacity - slack;
      if (!saturated) continue;
      bool is_max = true;
      for (ConnIndex other : by_link[li]) {
        if (rates[other] > rates[ci] + slack) {
          is_max = false;
          break;
        }
      }
      if (is_max) {
        has_bottleneck = true;
        break;
      }
    }
    if (!has_bottleneck) return false;
  }
  return true;
}

}  // namespace imrm::maxmin
