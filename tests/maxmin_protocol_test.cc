// Theorem 1 validation: the distributed event-driven ADVERTISE/UPDATE
// protocol converges to the centralized max-min allocation, under initial
// allocation, capacity changes, connection arrival/departure, and both
// initiation policies.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "maxmin/problem.h"
#include "maxmin/protocol.h"
#include "maxmin/waterfill.h"
#include "sim/simulator.h"

namespace imrm::maxmin {
namespace {

DistributedProtocol::Config fast_config(InitiationPolicy policy = InitiationPolicy::kBottleneckSets) {
  DistributedProtocol::Config c;
  c.policy = policy;
  c.epsilon = 1e-6;
  return c;
}

void expect_rates_near(const std::vector<double>& actual, const std::vector<double>& expected,
                       double tol = 1e-3) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_NEAR(actual[i], expected[i], tol) << "connection " << i;
  }
}

TEST(Protocol, SingleLinkEqualSplit) {
  Problem p;
  p.links = {{9.0}};
  p.connections = {{{0}, kInfiniteDemand}, {{0}, kInfiniteDemand}, {{0}, kInfiniteDemand}};
  sim::Simulator simulator;
  DistributedProtocol proto(simulator, p, fast_config());
  proto.start_all();
  proto.run_to_quiescence();
  EXPECT_FALSE(proto.message_cap_hit());
  expect_rates_near(proto.rates(), {3.0, 3.0, 3.0});
}

TEST(Protocol, ClassicChainConvergesToWaterfill) {
  Problem p;
  p.links = {{10.0}, {4.0}};
  p.connections = {{{0}, kInfiniteDemand}, {{0, 1}, kInfiniteDemand}, {{1}, kInfiniteDemand}};
  sim::Simulator simulator;
  DistributedProtocol proto(simulator, p, fast_config());
  proto.start_all();
  proto.run_to_quiescence();
  EXPECT_FALSE(proto.message_cap_hit());
  expect_rates_near(proto.rates(), waterfill(p).rates);
}

TEST(Protocol, FiniteDemandViaArtificialLink) {
  Problem p;
  p.links = {{10.0}, {4.0}};
  p.connections = {{{0}, kInfiniteDemand}, {{0, 1}, 1.0}, {{1}, kInfiniteDemand}};
  sim::Simulator simulator;
  DistributedProtocol proto(simulator, p, fast_config());
  proto.start_all();
  proto.run_to_quiescence();
  expect_rates_near(proto.rates(), waterfill(p).rates);  // {9, 1, 3}
}

TEST(Protocol, ParkingLotConverges) {
  Problem p;
  const std::size_t n = 4;
  ProblemConnection longest;
  for (std::size_t i = 0; i < n; ++i) {
    p.links.push_back({2.0});
    longest.path.push_back(i);
    p.connections.push_back({{i}, kInfiniteDemand});
  }
  p.connections.push_back(longest);
  sim::Simulator simulator;
  DistributedProtocol proto(simulator, p, fast_config());
  proto.start_all();
  proto.run_to_quiescence();
  expect_rates_near(proto.rates(), waterfill(p).rates);
}

TEST(Protocol, CapacityIncreaseTriggersUpgrade) {
  Problem p;
  p.links = {{4.0}};
  p.connections = {{{0}, kInfiniteDemand}, {{0}, kInfiniteDemand}};
  sim::Simulator simulator;
  DistributedProtocol proto(simulator, p, fast_config());
  proto.start_all();
  proto.run_to_quiescence();
  expect_rates_near(proto.rates(), {2.0, 2.0});

  proto.set_link_excess_capacity(0, 10.0);
  proto.run_to_quiescence();
  expect_rates_near(proto.rates(), {5.0, 5.0});
}

TEST(Protocol, CapacityDecreaseSqueezesConnections) {
  Problem p;
  p.links = {{10.0}};
  p.connections = {{{0}, kInfiniteDemand}, {{0}, kInfiniteDemand}};
  sim::Simulator simulator;
  DistributedProtocol proto(simulator, p, fast_config());
  proto.start_all();
  proto.run_to_quiescence();
  expect_rates_near(proto.rates(), {5.0, 5.0});

  proto.set_link_excess_capacity(0, 6.0);
  proto.run_to_quiescence();
  expect_rates_near(proto.rates(), {3.0, 3.0});
}

TEST(Protocol, NegativeCapacityRequestsRenegotiation) {
  Problem p;
  p.links = {{10.0}};
  p.connections = {{{0}, kInfiniteDemand}};
  sim::Simulator simulator;
  DistributedProtocol proto(simulator, p, fast_config());
  proto.start_all();
  proto.run_to_quiescence();
  EXPECT_TRUE(proto.renegotiation_requests().empty());
  proto.set_link_excess_capacity(0, -1.0);
  EXPECT_FALSE(proto.renegotiation_requests().empty());
}

TEST(Protocol, ConnectionArrivalRebalances) {
  Problem p;
  p.links = {{6.0}};
  p.connections = {{{0}, kInfiniteDemand}};
  sim::Simulator simulator;
  DistributedProtocol proto(simulator, p, fast_config());
  proto.start_all();
  proto.run_to_quiescence();
  expect_rates_near(proto.rates(), {6.0});

  const ConnIndex newcomer = proto.add_connection({0});
  proto.run_to_quiescence();
  EXPECT_EQ(newcomer, 1u);
  expect_rates_near(proto.rates(), {3.0, 3.0});
}

TEST(Protocol, ConnectionDepartureFreesCapacity) {
  Problem p;
  p.links = {{6.0}};
  p.connections = {{{0}, kInfiniteDemand}, {{0}, kInfiniteDemand}};
  sim::Simulator simulator;
  DistributedProtocol proto(simulator, p, fast_config());
  proto.start_all();
  proto.run_to_quiescence();
  expect_rates_near(proto.rates(), {3.0, 3.0});

  proto.remove_connection(0);
  proto.run_to_quiescence();
  EXPECT_NEAR(proto.rates()[1], 6.0, 1e-3);
}

TEST(Protocol, FloodingPolicyAlsoConverges) {
  Problem p;
  p.links = {{10.0}, {4.0}};
  p.connections = {{{0}, kInfiniteDemand}, {{0, 1}, kInfiniteDemand}, {{1}, kInfiniteDemand}};
  sim::Simulator simulator;
  DistributedProtocol proto(simulator, p, fast_config(InitiationPolicy::kFlooding));
  proto.start_all();
  proto.run_to_quiescence();
  EXPECT_FALSE(proto.message_cap_hit());
  expect_rates_near(proto.rates(), waterfill(p).rates);
}

TEST(Protocol, BottleneckSetsSendFewerMessagesOnUpgrade) {
  // After convergence, free capacity on the shared link: the refined policy
  // should notify only the bottlenecked connections, flooding notifies all.
  // A chain of amply-provisioned transit links: the long connection crosses
  // all of them, so its ADVERTISE packets pass every link. Flooding makes
  // every visited switch re-advertise all its local connections; the refined
  // policy knows they cannot change (they sit at their bottleneck rates).
  auto build = [](InitiationPolicy policy, sim::Simulator& simulator) {
    Problem p;
    const std::size_t n_transit = 8;
    p.links.push_back({8.0});  // link 0: the bottleneck that gets upgraded
    ProblemConnection longest;
    longest.path.push_back(0);
    for (std::size_t i = 1; i <= n_transit; ++i) {
      p.links.push_back({100.0});
      longest.path.push_back(i);
      // Local connections, demand-limited well below their share.
      for (int c = 0; c < 4; ++c) p.connections.push_back({{i}, 2.0});
    }
    p.connections.push_back(longest);
    p.connections.push_back({{0}, kInfiniteDemand});  // shares the bottleneck
    return DistributedProtocol(simulator, p, fast_config(policy));
  };

  sim::Simulator s1, s2;
  auto refined = build(InitiationPolicy::kBottleneckSets, s1);
  auto flooding = build(InitiationPolicy::kFlooding, s2);
  refined.start_all();
  refined.run_to_quiescence();
  flooding.start_all();
  flooding.run_to_quiescence();

  const auto refined_before = refined.messages_sent();
  const auto flooding_before = flooding.messages_sent();
  refined.set_link_excess_capacity(0, 12.0);
  refined.run_to_quiescence();
  flooding.set_link_excess_capacity(0, 12.0);
  flooding.run_to_quiescence();

  const auto refined_cost = refined.messages_sent() - refined_before;
  const auto flooding_cost = flooding.messages_sent() - flooding_before;
  EXPECT_LT(refined_cost, flooding_cost);
}

TEST(Protocol, SteadyStateRateChangeBoundedByDelta) {
  // Theorem 1's second clause: with threshold delta, a capacity increase
  // smaller than delta triggers no adaptation at all, so the steady-state
  // optimal-rate difference stays within [0, delta].
  Problem p;
  p.links = {{4.0}};
  p.connections = {{{0}, kInfiniteDemand}, {{0}, kInfiniteDemand}};
  sim::Simulator simulator;
  auto config = fast_config();
  config.delta = 1.0;
  DistributedProtocol proto(simulator, p, config);
  proto.start_all();
  proto.run_to_quiescence();
  expect_rates_near(proto.rates(), {2.0, 2.0});

  proto.set_link_excess_capacity(0, 4.5);  // increase 0.5 < delta
  proto.run_to_quiescence();
  // No adaptation: rates unchanged, difference from optimum (2.25) < delta.
  expect_rates_near(proto.rates(), {2.0, 2.0});

  proto.set_link_excess_capacity(0, 6.0);  // increase >= delta: adapts
  proto.run_to_quiescence();
  expect_rates_near(proto.rates(), {3.0, 3.0});
}

// Churn: a long random sequence of arrivals, departures and capacity
// changes; after every event the drained protocol must sit on the max-min
// optimum of the *current* problem.
class ProtocolChurn : public ::testing::TestWithParam<int> {};

TEST_P(ProtocolChurn, TracksOptimumThroughChurn) {
  std::mt19937_64 rng{std::uint64_t(GetParam()) * 7919};
  std::uniform_real_distribution<double> cap_dist(2.0, 25.0);

  const int n_links = 4;
  Problem initial;
  for (int i = 0; i < n_links; ++i) initial.links.push_back({cap_dist(rng)});

  sim::Simulator simulator;
  DistributedProtocol proto(simulator, initial, fast_config());
  proto.start_all();
  proto.run_to_quiescence();

  // Live connection bookkeeping: protocol index -> (path, demand).
  struct Live {
    ConnIndex index;
    ProblemConnection conn;
  };
  std::vector<Live> live;
  std::vector<double> link_caps;
  for (const auto& l : initial.links) link_caps.push_back(l.excess_capacity);

  auto random_conn = [&] {
    std::uniform_int_distribution<int> start_dist(0, n_links - 1);
    const int start = start_dist(rng);
    std::uniform_int_distribution<int> end_dist(start, n_links - 1);
    const int end = end_dist(rng);
    ProblemConnection conn;
    for (int li = start; li <= end; ++li) conn.path.push_back(std::size_t(li));
    if (rng() % 3 == 0) conn.demand = cap_dist(rng) / 3.0;
    return conn;
  };

  for (int event = 0; event < 30; ++event) {
    switch (rng() % 3) {
      case 0: {  // arrival
        const ProblemConnection conn = random_conn();
        const ConnIndex idx = proto.add_connection(conn.path, conn.demand);
        live.push_back({idx, conn});
        break;
      }
      case 1: {  // departure
        if (live.empty()) continue;
        const std::size_t victim = rng() % live.size();
        proto.remove_connection(live[victim].index);
        live.erase(live.begin() + long(victim));
        break;
      }
      case 2: {  // capacity change
        const std::size_t link = rng() % std::size_t(n_links);
        link_caps[link] = cap_dist(rng);
        proto.set_link_excess_capacity(link, link_caps[link]);
        break;
      }
    }
    proto.run_to_quiescence();
    ASSERT_FALSE(proto.message_cap_hit()) << "event " << event;

    // Rebuild the current problem and compare against the optimum.
    Problem current;
    for (double c : link_caps) current.links.push_back({c});
    for (const Live& l : live) current.connections.push_back(l.conn);
    const auto optimum = waterfill(current);
    for (std::size_t i = 0; i < live.size(); ++i) {
      EXPECT_NEAR(proto.rates()[live[i].index], optimum.rates[i], 1e-3)
          << "seed=" << GetParam() << " event=" << event << " conn=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ChurnSeeds, ProtocolChurn, ::testing::Range(1, 7));

// Randomized property sweep: on random topologies the protocol must land on
// the water-filling allocation.
class ProtocolRandomized : public ::testing::TestWithParam<int> {};

TEST_P(ProtocolRandomized, ConvergesOnRandomProblem) {
  std::mt19937_64 rng{std::uint64_t(GetParam())};
  std::uniform_int_distribution<int> n_links_dist(2, 5);
  std::uniform_int_distribution<int> n_conns_dist(2, 8);
  std::uniform_real_distribution<double> cap_dist(1.0, 20.0);

  Problem p;
  const int n_links = n_links_dist(rng);
  for (int i = 0; i < n_links; ++i) p.links.push_back({cap_dist(rng)});
  const int n_conns = n_conns_dist(rng);
  for (int c = 0; c < n_conns; ++c) {
    ProblemConnection conn;
    // Random contiguous segment of links (paths in a chain network).
    std::uniform_int_distribution<int> start_dist(0, n_links - 1);
    const int start = start_dist(rng);
    std::uniform_int_distribution<int> end_dist(start, n_links - 1);
    const int end = end_dist(rng);
    for (int li = start; li <= end; ++li) conn.path.push_back(std::size_t(li));
    if (rng() % 3 == 0) conn.demand = cap_dist(rng) / 2.0;
    p.connections.push_back(std::move(conn));
  }

  sim::Simulator simulator;
  DistributedProtocol proto(simulator, p, fast_config());
  proto.start_all();
  proto.run_to_quiescence();
  ASSERT_FALSE(proto.message_cap_hit());

  const auto expected = waterfill(p).rates;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(proto.rates()[i], expected[i], 1e-3)
        << "seed=" << GetParam() << " conn=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolRandomized, ::testing::Range(1, 21));

}  // namespace
}  // namespace imrm::maxmin
