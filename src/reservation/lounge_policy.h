// Lounge policies: cafeteria (Section 6.2.2) and default lounge (Section
// 6.2.3), per the Section 6.4 summary.
//
// Both work in discrete time slots. Each slot the policy counts the
// handoffs out of its cell, predicts the next slot's count (least-squares
// for the cafeteria, one-step memory for the default lounge), and asks the
// neighbors to reserve bandwidth for that many portables, split by the cell
// profile's handoff distribution. When at least one neighbor is a *default*
// lounge (which predicts poorly), the cell additionally predicts its own
// incoming handoffs and reserves locally; the default lounge uses the
// probabilistic algorithm of Section 6.3 for that local reservation.
#pragma once

#include <optional>

#include "reservation/handoff_predictor.h"
#include "reservation/policy.h"
#include "reservation/probabilistic.h"

namespace imrm::reservation {

/// Shared slot machinery for the two lounge policies.
class LoungePolicyBase : public AdvanceReservationPolicy {
 public:
  LoungePolicyBase(PolicyEnv env, CellId cell, sim::Duration slot,
                   qos::BitsPerSecond per_user_bandwidth);

  void on_handoff(const mobility::HandoffEvent& event) override;
  void refresh(sim::SimTime now) override;

  [[nodiscard]] CellId cell() const { return cell_; }
  [[nodiscard]] bool has_default_neighbor() const;

  // Checkpoint (ISSUE 4): the open slot's counts, the slot cursor, and the
  // derived class's predictor windows (via the protected hooks below).
  void save_state(sim::CheckpointWriter& w) const override;
  void restore_state(sim::CheckpointReader& r) override;

 protected:
  virtual void save_predictors(sim::CheckpointWriter& w) const = 0;
  virtual void restore_predictors(sim::CheckpointReader& r) = 0;

  /// Predicted outgoing handoffs for the next slot.
  [[nodiscard]] virtual double predict_outgoing() const = 0;
  /// Predicted incoming handoffs for the next slot (for the self-reservation
  /// path); default implementations mirror the outgoing predictor fed with
  /// incoming counts.
  [[nodiscard]] virtual double predict_incoming() const = 0;
  /// Local reservation when a default neighbor exists; the default lounge
  /// overrides this with the probabilistic bound of eq. 7.
  [[nodiscard]] virtual qos::BitsPerSecond self_reservation() const;

  virtual void slot_closed(double outgoing_count, double incoming_count) = 0;

  CellId cell_;
  sim::Duration slot_;
  qos::BitsPerSecond per_user_bandwidth_;

 private:
  void close_slot(sim::SimTime now);

  double outgoing_this_slot_ = 0.0;
  double incoming_this_slot_ = 0.0;
  std::size_t current_slot_ = 0;
};

class CafeteriaPolicy final : public LoungePolicyBase {
 public:
  using LoungePolicyBase::LoungePolicyBase;
  [[nodiscard]] std::string name() const override { return "cafeteria"; }

 protected:
  [[nodiscard]] double predict_outgoing() const override {
    return outgoing_.predict_next();
  }
  [[nodiscard]] double predict_incoming() const override {
    return incoming_.predict_next();
  }
  void slot_closed(double outgoing_count, double incoming_count) override {
    outgoing_.push(outgoing_count);
    incoming_.push(incoming_count);
  }
  void save_predictors(sim::CheckpointWriter& w) const override;
  void restore_predictors(sim::CheckpointReader& r) override;

 private:
  CafeteriaPredictor outgoing_;
  CafeteriaPredictor incoming_;
};

class DefaultLoungePolicy final : public LoungePolicyBase {
 public:
  DefaultLoungePolicy(PolicyEnv env, CellId cell, sim::Duration slot,
                      qos::BitsPerSecond per_user_bandwidth,
                      std::optional<ProbabilisticReservation> probabilistic = std::nullopt);

  [[nodiscard]] std::string name() const override { return "default-lounge"; }

 protected:
  [[nodiscard]] double predict_outgoing() const override {
    return outgoing_.predict_next();
  }
  [[nodiscard]] double predict_incoming() const override {
    return incoming_.predict_next();
  }
  [[nodiscard]] qos::BitsPerSecond self_reservation() const override;
  void slot_closed(double outgoing_count, double incoming_count) override {
    outgoing_.push(outgoing_count);
    incoming_.push(incoming_count);
  }
  void save_predictors(sim::CheckpointWriter& w) const override {
    w.f64(outgoing_.predict_next());
    w.f64(incoming_.predict_next());
  }
  void restore_predictors(sim::CheckpointReader& r) override {
    outgoing_.push(r.f64());
    incoming_.push(r.f64());
  }

 private:
  OneStepPredictor outgoing_;
  OneStepPredictor incoming_;
  std::optional<ProbabilisticReservation> probabilistic_;
};

}  // namespace imrm::reservation
