#include "profiles/cell_profile.h"

#include <algorithm>

namespace imrm::profiles {

void CellProfile::record(CellId previous, CellId next) {
  auto& window = by_previous_[previous];
  window.push_back(next);
  while (window.size() > window_) window.pop_front();
}

namespace {

std::vector<CellProfile::NeighborShare> shares_from_counts(
    const std::map<CellId, std::size_t>& counts, std::size_t total) {
  std::vector<CellProfile::NeighborShare> out;
  if (total == 0) return out;
  out.reserve(counts.size());
  for (const auto& [cell, count] : counts) {
    out.push_back({cell, double(count) / double(total)});
  }
  return out;
}

}  // namespace

std::vector<CellProfile::NeighborShare> CellProfile::distribution(CellId previous) const {
  const auto it = by_previous_.find(previous);
  if (it == by_previous_.end()) return {};
  std::map<CellId, std::size_t> counts;
  for (CellId next : it->second) ++counts[next];
  return shares_from_counts(counts, it->second.size());
}

std::vector<CellProfile::NeighborShare> CellProfile::aggregate_distribution() const {
  std::map<CellId, std::size_t> counts;
  std::size_t total = 0;
  for (const auto& [previous, window] : by_previous_) {
    for (CellId next : window) {
      ++counts[next];
      ++total;
    }
  }
  return shares_from_counts(counts, total);
}

std::optional<CellId> CellProfile::predict(CellId previous) const {
  const auto dist = distribution(previous);
  if (dist.empty()) return std::nullopt;
  const auto best = std::max_element(
      dist.begin(), dist.end(),
      [](const NeighborShare& a, const NeighborShare& b) {
        return a.probability < b.probability;
      });
  return best->neighbor;
}

std::size_t CellProfile::observations(CellId previous) const {
  const auto it = by_previous_.find(previous);
  return it == by_previous_.end() ? 0 : it->second.size();
}

std::size_t CellProfile::total_observations() const {
  std::size_t total = 0;
  for (const auto& [previous, window] : by_previous_) total += window.size();
  return total;
}

void CellProfile::save_state(sim::CheckpointWriter& w) const {
  w.u32(id_.value());
  w.u64(window_);
  w.u64(by_previous_.size());
  for (const auto& [previous, window] : by_previous_) {
    w.u32(previous.value());
    w.u64(window.size());
    for (CellId next : window) w.u32(next.value());
  }
}

CellProfile CellProfile::restore_state(sim::CheckpointReader& r) {
  const CellId id{r.u32()};
  CellProfile profile(id, std::size_t(r.u64()));
  for (std::uint64_t states = r.u64(); states-- > 0;) {
    const CellId previous{r.u32()};
    auto& window = profile.by_previous_[previous];
    for (std::uint64_t n = r.u64(); n-- > 0;) window.push_back(CellId{r.u32()});
  }
  return profile;
}

}  // namespace imrm::profiles
