# Empty compiler generated dependencies file for admission_packet_integration_test.
# This may be replaced when dependencies are built.
