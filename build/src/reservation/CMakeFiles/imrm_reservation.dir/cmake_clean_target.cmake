file(REMOVE_RECURSE
  "libimrm_reservation.a"
)
