file(REMOVE_RECURSE
  "libimrm_experiments.a"
)
