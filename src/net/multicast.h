// Multicast routes to neighboring cells (Section 4).
//
// To reduce handoff transients, the backbone sets up multicast branches from
// the connection's wired path to every neighboring base station, so packets
// can be delivered to pre-allocated buffer space there. Admission is run on
// each branch with minimum-bound QoS, but branch failures never terminate
// the main connection.
#pragma once

#include <vector>

#include "net/ids.h"
#include "net/network_state.h"
#include "net/routing.h"

namespace imrm::net {

struct MulticastBranch {
  NodeId target_base_station = NodeId::invalid();
  Route route;                 // wired route from source to the neighbor BS
  bool admitted = false;       // end-to-end test outcome for the branch
  ConnectionId reservation = ConnectionId::invalid();  // installed if admitted
};

struct MulticastTree {
  std::vector<MulticastBranch> branches;
  /// The set of links shared by at least two admitted branches (the actual
  /// multicast fan-out points). Useful for reporting wiring efficiency.
  std::vector<LinkId> shared_links;

  [[nodiscard]] std::size_t admitted_count() const;
};

/// Builds and (where possible) reserves multicast branches from `source` to
/// each neighbor base station. Uses the *minimum* pre-negotiated QoS bound
/// (b_min only) since the branch exists purely to warm up a possible handoff.
/// Branch admission failures are recorded, never fatal.
[[nodiscard]] MulticastTree setup_neighbor_multicast(
    NetworkState& network, const Router& router, NodeId source,
    const std::vector<NodeId>& neighbor_base_stations, const qos::QosRequest& request,
    qos::Scheduler scheduler = qos::Scheduler::kWfq);

/// Tears down every admitted branch reservation in the tree.
void teardown_multicast(NetworkState& network, MulticastTree& tree);

}  // namespace imrm::net
