// Cell-type learning on live campus days (Section 6.4, final paragraph).
//
// Three synthetic workdays on the campus map: office occupants arrive in the
// morning, lunch at the cafeteria and leave in the evening; two classes
// meet in the meeting room; walkers stream through the corridors; the
// lounge sees sporadic visits. Every cell starts UNLABELED; the profile
// server aggregates its handoff behaviour into CellObservations and the
// classifier assigns a class. The bench prints the confusion against the
// ground-truth map.
#include <iostream>
#include <map>
#include <queue>
#include <vector>

#include "mobility/floorplan.h"
#include "mobility/manager.h"
#include "prediction/cell_classifier.h"
#include "sim/random.h"
#include "stats/table.h"

using namespace imrm;
using mobility::CellClass;
using mobility::CellId;
using net::PortableId;
using sim::Duration;
using sim::SimTime;

namespace {

/// BFS path between cells on the map (inclusive of endpoints).
std::vector<CellId> path_between(const mobility::CellMap& map, CellId from, CellId to) {
  std::vector<CellId> prev(map.size(), CellId::invalid());
  std::vector<bool> seen(map.size(), false);
  std::queue<CellId> frontier;
  frontier.push(from);
  seen[from.value()] = true;
  while (!frontier.empty()) {
    const CellId cur = frontier.front();
    frontier.pop();
    if (cur == to) break;
    for (CellId n : map.cell(cur).neighbors) {
      if (!seen[n.value()]) {
        seen[n.value()] = true;
        prev[n.value()] = cur;
        frontier.push(n);
      }
    }
  }
  std::vector<CellId> path;
  for (CellId cur = to; cur.is_valid(); cur = prev[cur.value()]) {
    path.push_back(cur);
    if (cur == from) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

struct Harness {
  mobility::CellMap map = mobility::campus_environment();
  sim::Simulator simulator;
  mobility::MobilityManager manager{map, simulator, Duration::minutes(3)};
  std::map<CellId, prediction::CellObservations> observations;
  sim::Rng rng{31};

  Harness() {
    for (const auto& cell : map.cells()) {
      observations.emplace(cell.id, prediction::CellObservations(Duration::minutes(5)));
    }
    manager.on_handoff([this](const mobility::HandoffEvent& e) {
      observations.at(e.to).record_entry(e.portable, e.time);
      const bool pass_through = e.to != e.prev_of_from;
      observations.at(e.from).record_exit(e.portable, e.time, pass_through);
    });
  }

  /// Walks a portable along a path with short corridor dwells, arriving at
  /// the final cell around `arrive`.
  void walk(PortableId p, CellId to, SimTime arrive) {
    simulator.at(arrive, [this, p, to, arrive] {
      const CellId from = manager.portable(p).current_cell;
      const auto path = path_between(map, from, to);
      SimTime t = arrive;
      for (std::size_t i = 1; i < path.size(); ++i) {
        simulator.at(t, [this, p, next = path[i]] { manager.move(p, next); });
        t += Duration::seconds(rng.uniform(20.0, 50.0));
      }
    });
  }
};

}  // namespace

int main() {
  std::cout << "== Cell-type learning from three campus days (Section 6.4) ==\n\n";
  Harness h;
  const auto offices = h.map.cells_of_class(CellClass::kOffice);
  const CellId meeting = *h.map.find("meeting-room");
  const CellId cafeteria = *h.map.find("cafeteria");
  const CellId lounge = *h.map.find("lounge");
  const CellId corridor0 = *h.map.find("corridor-0");
  const CellId corridor_end = *h.map.find("corridor-3");

  // The learning process runs over several days (the paper's profile
  // server aggregates until the signature is clear).
  constexpr int kDays = 3;
  constexpr double kDayHours = 9.0;

  // Office occupants are the same people every day (the "regulars"); they
  // start (and overnight) in their own offices.
  std::vector<std::pair<PortableId, CellId>> occupants;
  for (std::size_t o = 0; o < offices.size(); ++o) {
    for (int k = 0; k < 2; ++k) {
      occupants.emplace_back(h.manager.add_portable(offices[o]), offices[o]);
    }
  }

  for (int day = 0; day < kDays; ++day) {
    const SimTime base = SimTime::hours(double(day) * kDayHours);

    // Occupants: a mid-morning errand, a staggered lunch at the cafeteria,
    // then back to the office for the night.
    for (const auto& [p, office] : occupants) {
      const double errand = h.rng.uniform(-30.0, 30.0);
      const double lunch = h.rng.uniform(-70.0, 70.0);      // staggered lunches
      const double lunch_len = h.rng.uniform(15.0, 35.0);   // minutes at a table
      h.walk(p, corridor0, base + Duration::hours(1.5) + Duration::minutes(errand));
      h.walk(p, office, base + Duration::hours(1.6) + Duration::minutes(errand));
      h.walk(p, cafeteria, base + Duration::hours(3.5) + Duration::minutes(lunch));
      h.walk(p, office,
             base + Duration::hours(3.5) + Duration::minutes(lunch + lunch_len));
    }

    // Two classes in the meeting room, 24 attendees each.
    for (double start_h : {2.0, 6.0}) {
      for (int a = 0; a < 24; ++a) {
        const PortableId p = h.manager.add_portable(corridor_end);
        const double in_jitter = h.rng.uniform(-6.0, 2.0);
        h.walk(p, meeting, base + Duration::hours(start_h) + Duration::minutes(in_jitter));
        h.walk(p, corridor_end, base + Duration::hours(start_h + 0.85) +
                                    Duration::minutes(h.rng.uniform(0.0, 4.0)));
      }
    }

    // Corridor walkers all day: end to end.
    for (double t = 5.0; t < kDayHours * 60.0; t += h.rng.exponential_mean(2.5)) {
      const PortableId p = h.manager.add_portable(corridor0);
      h.walk(p, corridor_end, base + Duration::minutes(t));
    }

    // A steady coffee trickle keeps the cafeteria busy outside lunch — its
    // "slow time-varying" signature.
    for (double t = 15.0; t < kDayHours * 60.0; t += h.rng.exponential_mean(7.0)) {
      const PortableId p = h.manager.add_portable(corridor_end);
      h.walk(p, cafeteria, base + Duration::minutes(t));
      h.walk(p, corridor_end,
             base + Duration::minutes(t + h.rng.uniform(6.0, 14.0)));
    }

    // Sporadic lounge visitors with erratic dwell.
    for (double t = 10.0; t < kDayHours * 60.0;
         t += h.rng.exponential_mean(25.0) * h.rng.uniform(0.1, 3.0)) {
      const PortableId p = h.manager.add_portable(corridor0);
      h.walk(p, lounge, base + Duration::minutes(t));
      h.walk(p, corridor0, base + Duration::minutes(t + h.rng.exponential_mean(9.0)));
    }
  }

  h.simulator.run();

  stats::Table table({"cell", "ground truth", "learned", "score", "visits", "correct"});
  int correct = 0, total = 0;
  for (const auto& cell : h.map.cells()) {
    const auto result = prediction::classify_cell(h.observations.at(cell.id));
    const bool hit = result.cell_class == cell.cell_class;
    ++total;
    if (hit) ++correct;
    table.add_row({cell.name, mobility::to_string(cell.cell_class),
                   mobility::to_string(result.cell_class),
                   stats::fmt(result.scores.at(result.cell_class), 2),
                   std::to_string(h.observations.at(cell.id).total_visits()),
                   hit ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << "\nlearned " << correct << " / " << total << " cells correctly from three "
            << "days of handoff observations\n";
  std::cout << "(the paper prescribes exactly this: run the default algorithm until\n"
               "the profile server can categorize the cell from its behaviour)\n";
  return 0;
}
