# Empty dependencies file for campus_sim.
# This may be replaced when dependencies are built.
