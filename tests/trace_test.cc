// Tests for the trace recorder.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "mobility/floorplan.h"
#include "trace/trace.h"

namespace imrm::trace {
namespace {

using net::CellId;
using net::PortableId;
using sim::Duration;
using sim::SimTime;

TEST(Trace, RecordsAndCounts) {
  TraceRecorder recorder;
  recorder.handoff(SimTime::seconds(1), PortableId{1}, CellId{0}, CellId{1});
  recorder.drop(SimTime::seconds(2), PortableId{1}, CellId{1});
  recorder.record({SimTime::seconds(3), EventKind::kAdmission, PortableId{2},
                   CellId::invalid(), CellId{0}, 16000.0, "quickstart"});
  EXPECT_EQ(recorder.size(), 3u);
  EXPECT_EQ(recorder.count(EventKind::kHandoff), 1u);
  EXPECT_EQ(recorder.count(EventKind::kDrop), 1u);
  EXPECT_EQ(recorder.count(EventKind::kBlock), 0u);
}

TEST(Trace, WindowQuery) {
  TraceRecorder recorder;
  for (int s = 0; s < 10; ++s) {
    recorder.handoff(SimTime::seconds(s), PortableId{1}, CellId{0}, CellId{1});
  }
  const auto window = recorder.between(SimTime::seconds(3), SimTime::seconds(6));
  EXPECT_EQ(window.size(), 3u);  // t = 3, 4, 5 (half-open)
}

TEST(Trace, CsvOutput) {
  TraceRecorder recorder;
  recorder.record({SimTime::seconds(1.5), EventKind::kDrop, PortableId{7}, CellId{2},
                   CellId{3}, 64000.0, "note, with comma"});
  std::ostringstream os;
  recorder.write_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("time_s,kind,portable,from,to,value,note"), std::string::npos);
  EXPECT_NE(out.find("1.5,drop,7,2,3,64000,\"note, with comma\""), std::string::npos);
}

TEST(Trace, InvalidIdsPrintedAsDash) {
  TraceRecorder recorder;
  recorder.drop(SimTime::seconds(1), PortableId{1}, CellId{4});
  std::ostringstream os;
  recorder.write_csv(os);
  EXPECT_NE(os.str().find("1,drop,1,-,4,0,"), std::string::npos);
}

TEST(Trace, AttachCapturesHandoffs) {
  const auto map = mobility::fig4_environment();
  const auto cells = mobility::fig4_cells(map);
  sim::Simulator simulator;
  mobility::MobilityManager manager(map, simulator, Duration::minutes(3));
  TraceRecorder recorder;
  attach(recorder, manager);

  const auto p = manager.add_portable(cells.c);
  manager.move(p, cells.d);
  manager.move(p, cells.a);
  EXPECT_EQ(recorder.count(EventKind::kHandoff), 2u);
  EXPECT_EQ(recorder.events()[1].from, cells.d);
  EXPECT_EQ(recorder.events()[1].to, cells.a);
}

TEST(Trace, ClearEmpties) {
  TraceRecorder recorder;
  recorder.drop(SimTime::seconds(1), PortableId{1}, CellId{0});
  recorder.clear();
  EXPECT_EQ(recorder.size(), 0u);
}

TEST(Trace, UnboundedByDefault) {
  TraceRecorder recorder;
  EXPECT_EQ(recorder.capacity(), 0u);
  for (int s = 0; s < 1000; ++s) {
    recorder.handoff(SimTime::seconds(s), PortableId{1}, CellId{0}, CellId{1});
  }
  EXPECT_EQ(recorder.size(), 1000u);
  EXPECT_EQ(recorder.dropped(), 0u);
}

TEST(Trace, BoundedCapacityEvictsOldest) {
  TraceRecorder recorder(3);
  EXPECT_EQ(recorder.capacity(), 3u);
  for (int s = 0; s < 5; ++s) {
    recorder.handoff(SimTime::seconds(s), PortableId{s}, CellId{0}, CellId{1});
  }
  EXPECT_EQ(recorder.size(), 3u);
  EXPECT_EQ(recorder.dropped(), 2u);
  const auto events = recorder.events();
  ASSERT_EQ(events.size(), 3u);
  // Oldest two (t = 0, 1) were evicted; survivors stay chronological.
  EXPECT_DOUBLE_EQ(events[0].time.to_seconds(), 2.0);
  EXPECT_DOUBLE_EQ(events[2].time.to_seconds(), 4.0);
  // Queries and counts see only the retained window.
  EXPECT_EQ(recorder.count(EventKind::kHandoff), 3u);
  EXPECT_EQ(recorder.between(SimTime::zero(), SimTime::seconds(2)).size(), 0u);
}

TEST(Trace, BoundedCsvRoundTripsRetainedWindow) {
  TraceRecorder recorder(2);
  for (int s = 0; s < 4; ++s) {
    recorder.record({SimTime::seconds(s), EventKind::kAdmission, PortableId{s},
                     CellId::invalid(), CellId{0}, 1000.0 * s, {}});
  }
  std::ostringstream os;
  recorder.write_csv(os);
  const std::string out = os.str();
  // Header plus exactly the two retained rows, in time order.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
  EXPECT_EQ(out.find("0,admission"), std::string::npos);
  const auto row2 = out.find("2,admission,2,-,0,2000,");
  const auto row3 = out.find("3,admission,3,-,0,3000,");
  EXPECT_NE(row2, std::string::npos);
  EXPECT_NE(row3, std::string::npos);
  EXPECT_LT(row2, row3);
}

}  // namespace
}  // namespace imrm::trace
