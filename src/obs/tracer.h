// Low-overhead structured tracing.
//
// A bounded ring buffer of fixed-size POD records (obs::RingBuffer), written
// through interned name ids so the hot path never touches a string. Two
// switches gate the cost:
//  * compile time — building with -DIMRM_TRACING=0 (CMake option
//    IMRM_TRACING=OFF) turns every record call into an empty inline, so
//    instrumented code costs literally nothing;
//  * runtime — a tracer starts disabled; record calls on a disabled tracer
//    are a single predictable branch.
//
// Records carry simulated time. Exports:
//  * write_chrome_trace: Chrome trace_event JSON (the "JSON Array Format"
//    wrapped in {"traceEvents": ...}), loadable in chrome://tracing and
//    Perfetto — 1 simulated second renders as 1 trace second; the `track`
//    field becomes the tid, so per-portable / per-link activity lands on
//    separate timeline rows.
// The CSV TraceRecorder (trace/trace.h) sits on the same ring buffer
// primitive for its richer, string-carrying event log.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/ring_buffer.h"
#include "sim/time.h"

#ifndef IMRM_TRACING
#define IMRM_TRACING 1
#endif

namespace imrm::obs {

/// Index into the tracer's interned name table.
using NameId = std::uint32_t;
inline constexpr NameId kInvalidName = ~NameId{0};

/// One trace record; 'i' = instant event, 'X' = complete span, 'C' =
/// counter track (all straight from the trace_event phase vocabulary).
struct TraceRecord {
  double ts_us = 0.0;   // simulated time, microseconds
  double dur_us = 0.0;  // span duration ('X' only)
  double value = 0.0;   // free-form payload; the sample for 'C'
  NameId name = kInvalidName;
  std::uint32_t track = 0;  // rendered as tid
  char phase = 'i';
  /// Rendered as pid; pid 1 is the simulated-time "imrm-sim" process. The
  /// sharded runner claims further pids for its wall-clock shard lanes
  /// (declare_process), keeping the two time bases on separate tracks.
  std::uint32_t pid = 1;
};

class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  explicit Tracer(std::size_t capacity = kDefaultCapacity) : records_(capacity) {}

  /// Compile-time availability of tracing in this build.
  [[nodiscard]] static constexpr bool compiled_in() { return IMRM_TRACING != 0; }

  [[nodiscard]] bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on && compiled_in(); }

  /// Interns a name/category pair (setup-time; allocates). Ids are dense
  /// and stable; interning the same pair again returns the same id.
  NameId intern(std::string_view name, std::string_view category = "sim");

  /// Registers a process lane label for the viewer (setup-time; allocates).
  /// Emitted as a process_name metadata record alongside pid 1's. Used by
  /// the sharded runner to label its wall-clock pids ("shard-workers" etc.).
  void declare_process(std::uint32_t pid, std::string_view name);

  void instant(sim::SimTime t, NameId name, std::uint32_t track = 0,
               double value = 0.0) {
#if IMRM_TRACING
    if (enabled_) records_.push({t.to_seconds() * 1e6, 0.0, value, name, track, 'i'});
#else
    (void)t, (void)name, (void)track, (void)value;
#endif
  }

  /// A span covering [start, end] in simulated time.
  void complete(sim::SimTime start, sim::SimTime end, NameId name,
                std::uint32_t track = 0, double value = 0.0) {
#if IMRM_TRACING
    if (enabled_) {
      records_.push({start.to_seconds() * 1e6, (end - start).to_seconds() * 1e6,
                     value, name, track, 'X'});
    }
#else
    (void)start, (void)end, (void)name, (void)track, (void)value;
#endif
  }

  /// A wall-clock span on a declared pid lane: [start_us, start_us + dur_us]
  /// microseconds since run start on pid/tid. The sharded runner's profile
  /// lanes go through here; pid 1 stays reserved for simulated time.
  void complete_wall(double start_us, double dur_us, NameId name,
                     std::uint32_t pid, std::uint32_t track, double value = 0.0) {
#if IMRM_TRACING
    if (enabled_) records_.push({start_us, dur_us, value, name, track, 'X', pid});
#else
    (void)start_us, (void)dur_us, (void)name, (void)pid, (void)track, (void)value;
#endif
  }

  /// A sample on a counter track (rendered as a stacked area chart).
  void counter(sim::SimTime t, NameId name, double value) {
#if IMRM_TRACING
    if (enabled_) records_.push({t.to_seconds() * 1e6, 0.0, value, name, 0, 'C'});
#else
    (void)t, (void)name, (void)value;
#endif
  }

  [[nodiscard]] const RingBuffer<TraceRecord>& records() const { return records_; }
  [[nodiscard]] std::uint64_t dropped() const { return records_.dropped(); }
  [[nodiscard]] std::size_t capacity() const { return records_.capacity(); }
  void clear() { records_.clear(); }

  [[nodiscard]] std::string_view name_of(NameId id) const { return names_[id].name; }

  /// Chrome trace_event JSON. Always emits a valid document (empty
  /// traceEvents when tracing is off); a dropped-record count is included
  /// as document metadata when eviction occurred.
  void write_chrome_trace(std::ostream& os) const;

 private:
  struct InternedName {
    std::string name;
    std::string category;
  };

  RingBuffer<TraceRecord> records_;
  std::vector<InternedName> names_;
  std::vector<std::pair<std::uint32_t, std::string>> processes_;
  bool enabled_ = false;
};

}  // namespace imrm::obs
