#!/usr/bin/env python3
"""End-to-end contract for the sharded campus executions (ISSUE 5 + 10).

Two sweeps through scenario_cli, each with identical scenario flags:

  * the corridor campus ("campus --shards K") at K in {1, 2, 4, 8}, and
  * the grid campus ("campus-scale --shards K --batch B") over the full
    batch {1, 8, 64, auto} x K {1, 2, 4, 8} matrix, so window batching is
    pinned as an execution knob that can never leak into results.

Every run in a sweep must produce:

  * identical stdout summary lines (events, windows, boundary messages,
    and all scenario counts; the shards=/batch= echo tokens are stripped
    before comparison — they name the execution, not the simulation), and
  * byte-identical md5 over the report's "metrics" object.

Only the "metrics" object is hashed: the surrounding report carries
wall-clock fields (wall_seconds) and the config echo (which includes the
shards/batch knobs) that describe the host and the execution, not the
simulation.

Usage: check_shard_determinism.py <path-to-scenario_cli>
"""
import hashlib
import json
import subprocess
import sys
import tempfile
from pathlib import Path

SHARDS = [1, 2, 4, 8]
BATCHES = [1, 8, 64, 0]  # 0 = adaptive controller

SWEEPS = [
    ("campus",
     ["campus", "--cells", "12", "--portables", "4", "--hours", "1",
      "--seed", "9"],
     [(k, None) for k in SHARDS]),
    ("campus-scale",
     ["campus-scale", "--cells", "25", "--portables", "120",
      "--duration", "900", "--tick", "5", "--seed", "7"],
     [(k, b) for k in SHARDS for b in BATCHES]),
]


def run(cli, flags, shards, batch, metrics_path):
    cmd = [cli] + flags + ["--shards", str(shards),
                           "--metrics-json", str(metrics_path)]
    if batch is not None:
        cmd += ["--batch", str(batch)]
    proc = subprocess.run(cmd, capture_output=True, text=True, timeout=300)
    if proc.returncode != 0:
        print(f"FAIL: --shards {shards} --batch {batch} "
              f"exited {proc.returncode}")
        print(proc.stderr)
        sys.exit(1)
    return proc.stdout


def metrics_md5(path):
    report = json.loads(Path(path).read_text())
    metrics = report.get("metrics")
    if metrics is None:
        print(f"FAIL: {path} has no metrics object")
        sys.exit(1)
    canonical = json.dumps(metrics, sort_keys=True)
    return hashlib.md5(canonical.encode()).hexdigest()


def strip_execution_tokens(line):
    return " ".join(tok for tok in line.split()
                    if not tok.startswith(("shards=", "batch=")))


def sweep(cli, name, flags, points):
    ok = True
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        golden_line = golden_md5 = None
        for shards, batch in points:
            tag = f"shards={shards}" + ("" if batch is None
                                        else f" batch={batch or 'auto'}")
            metrics_path = tmp / f"s{shards}b{batch}.json"
            line = run(cli, flags, shards, batch, metrics_path)
            digest = metrics_md5(metrics_path)
            print(f"{name}: {tag} md5={digest}")
            if golden_line is None:
                golden_line, golden_md5 = line, digest
                continue
            if strip_execution_tokens(line) != strip_execution_tokens(golden_line):
                print(f"FAIL: {name} stdout at {tag} differs from baseline")
                print(f"  baseline: {golden_line.strip()}")
                print(f"  {tag}: {line.strip()}")
                ok = False
            if digest != golden_md5:
                print(f"FAIL: {name} metrics md5 at {tag} differs "
                      f"({digest} != {golden_md5})")
                ok = False
    return ok


def main() -> int:
    if len(sys.argv) != 2:
        print("usage: check_shard_determinism.py <scenario_cli>",
              file=sys.stderr)
        return 2
    cli = sys.argv[1]
    ok = all(sweep(cli, name, flags, points)
             for name, flags, points in SWEEPS)
    print("OK: metrics byte-identical across shard and batch counts"
          if ok else "FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
