// The two-cell experiment behind Figure 6 (Section 7.2).
//
// Two identical neighboring cells of capacity 40 units carry two connection
// types (b=1: arrival rate 30, mean holding 0.2; b=4: rate 1, holding 0.25),
// each departure handing off to the other cell with probability 0.7. New
// connections pass an admission test; handoffs are admitted whenever they
// physically fit. The experiment measures the new-connection blocking
// probability P_b and the handoff dropping probability P_d, for:
//   - the probabilistic admission rule of Section 6.3 (eqs. 5-6), swept over
//     the window T and the target P_QOS (the Figure 6 family of curves),
//   - a static guard-band baseline (fraction of capacity held back), and
//   - plain capacity admission (no reservation at all).
#pragma once

#include <cstdint>
#include <vector>

#include "fault/signaling.h"
#include "reservation/probabilistic.h"

namespace imrm::obs {
class Registry;
class Tracer;
}  // namespace imrm::obs

namespace imrm::experiments {

enum class AdmissionRule { kProbabilistic, kStaticGuard, kNoReservation };

struct TwoCellType {
  int bandwidth_units = 1;
  double arrival_rate = 30.0;  // per cell, per unit time
  double mean_holding = 0.2;
};

struct TwoCellConfig {
  int capacity_units = 40;
  std::vector<TwoCellType> types{{1, 30.0, 0.2}, {4, 1.0, 0.25}};
  double handoff_prob = 0.7;
  AdmissionRule rule = AdmissionRule::kProbabilistic;
  double window = 0.05;        // T (probabilistic rule)
  double p_qos = 0.01;         // P_QOS (probabilistic rule)
  double guard_fraction = 0.1; // static baseline
  double duration = 400.0;     // simulated time units
  double warmup = 20.0;        // stats ignored before this time
  std::uint64_t seed = 1;
  /// Admission-signaling faults (ISSUE 3): every new-connection and handoff
  /// admission first probes the base station through an UnreliableCall; a
  /// probe that times out after its retry budget degrades to a rejection
  /// (blocked / dropped), never to a hang or a grant. Disabled (trivial
  /// model) by default — a disabled config draws no random numbers, so
  /// fault-free runs are byte-identical to pre-fault builds.
  fault::SignalingFaults faults{};
  /// Optional observability: end-of-run metric export (sim.* totals plus
  /// twocell.* attempt/block/drop counters) and simulator tracing.
  obs::Registry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
};

struct TwoCellResult {
  std::size_t new_attempts = 0;
  std::size_t new_blocked = 0;
  std::size_t handoff_attempts = 0;
  std::size_t handoff_dropped = 0;

  [[nodiscard]] double p_block() const {
    return new_attempts ? double(new_blocked) / double(new_attempts) : 0.0;
  }
  [[nodiscard]] double p_drop() const {
    return handoff_attempts ? double(handoff_dropped) / double(handoff_attempts) : 0.0;
  }
};

[[nodiscard]] TwoCellResult run_twocell(const TwoCellConfig& config);

}  // namespace imrm::experiments
