// A day in the life of a meeting room: three classes of different sizes,
// back to back, under the booking-calendar reservation policy — the
// workload the paper's Section 6.2.1 algorithm was designed for.
//
//   $ ./meeting_room_day [class_size...]
#include <cstdlib>
#include <iostream>

#include "experiments/classroom.h"
#include "stats/table.h"

using namespace imrm;
using namespace imrm::experiments;

int main(int argc, char** argv) {
  std::vector<std::size_t> sizes{25, 55, 40};
  if (argc > 1) {
    sizes.clear();
    for (int i = 1; i < argc; ++i) sizes.push_back(std::size_t(std::atoi(argv[i])));
  }

  std::cout << "== A day of classes in one meeting room ==\n";
  std::cout << "room capacity 1.6 Mbps; users carry 16/64 kbps connections\n\n";

  stats::Table table({"class", "size", "offered load", "policy", "drops"});
  std::size_t hour = 0;
  for (std::size_t size : sizes) {
    for (PolicyKind policy :
         {PolicyKind::kMeetingRoom, PolicyKind::kBruteForce, PolicyKind::kNone}) {
      ClassroomConfig config;
      config.class_size = size;
      config.meeting = {sim::SimTime::minutes(60.0 + double(hour) * 10.0),
                        sim::SimTime::minutes(110.0 + double(hour) * 10.0), size};
      config.policy = policy;
      config.seed = 7 + hour;
      const ClassroomResult r = run_classroom(config);
      table.add_row({std::to_string(hour + 1), std::to_string(size),
                     stats::fmt(r.offered_load * 100.0, 0) + "%", r.policy,
                     std::to_string(r.connection_drops)});
    }
    ++hour;
  }
  table.print(std::cout);

  std::cout << "\nThe booking calendar tells the base station exactly how many\n"
               "attendees to expect and when; reservations shrink as attendees\n"
               "arrive and are torn down by timers after the start and end.\n";
  return 0;
}
