file(REMOVE_RECURSE
  "CMakeFiles/imrm_maxmin.dir/advertised_rate.cc.o"
  "CMakeFiles/imrm_maxmin.dir/advertised_rate.cc.o.d"
  "CMakeFiles/imrm_maxmin.dir/bridge.cc.o"
  "CMakeFiles/imrm_maxmin.dir/bridge.cc.o.d"
  "CMakeFiles/imrm_maxmin.dir/problem.cc.o"
  "CMakeFiles/imrm_maxmin.dir/problem.cc.o.d"
  "CMakeFiles/imrm_maxmin.dir/protocol.cc.o"
  "CMakeFiles/imrm_maxmin.dir/protocol.cc.o.d"
  "CMakeFiles/imrm_maxmin.dir/waterfill.cc.o"
  "CMakeFiles/imrm_maxmin.dir/waterfill.cc.o.d"
  "libimrm_maxmin.a"
  "libimrm_maxmin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imrm_maxmin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
