#include "serve/service.h"

#include <algorithm>
#include <chrono>
#include <string>

#include "qos/admission.h"

namespace imrm::serve {

namespace {

template <class... Ts>
struct Overloaded : Ts... {
  using Ts::operator()...;
};
template <class... Ts>
Overloaded(Ts...) -> Overloaded<Ts...>;

}  // namespace

obs::HistogramSpec latency_histogram_spec() {
  // 1 µs .. 2^20 µs (~1.05 s), 8 sub-buckets per octave: <=12.5% relative
  // error at every scale a request latency can plausibly land in.
  return obs::HistogramSpec::log2(1.0, 1048576.0, 8);
}

mobility::CellMap service_cell_map(std::size_t cells) {
  mobility::CellMap map;
  std::vector<mobility::CellId> ids;
  ids.reserve(cells);
  for (std::size_t i = 0; i < cells; ++i) {
    ids.push_back(map.add_cell(mobility::CellClass::kOffice, "s" + std::to_string(i)));
  }
  for (std::size_t i = 1; i < cells; ++i) map.connect(ids[i - 1], ids[i]);
  return map;
}

// ---- OverloadGovernor ----------------------------------------------------

OverloadGovernor::OverloadGovernor(const SloConfig& slo)
    : slo_(slo), window_(std::max<std::size_t>(slo.latency_window, 8), 0.0) {}

bool OverloadGovernor::admit(std::size_t queue_depth) {
  if (shedding_) {
    // Exit on depth alone. Shed mode stops latency observations, so the p99
    // estimate is frozen at its overloaded value — gating recovery on it
    // would shed forever. A drained queue is the live signal that the
    // server caught up; fresh samples then re-judge the latency SLO.
    if (queue_depth > slo_.queue_capacity / 2) return false;
    shedding_ = false;
    fresh_ = 0;  // the p99 trigger re-arms only on post-recovery evidence
  }
  if (queue_depth >= slo_.queue_capacity) {
    shedding_ = true;
    return false;
  }
  if (fresh_ >= kMinFreshSamples && p99_us_ > slo_.p99_target_us) {
    shedding_ = true;
    return false;
  }
  return true;
}

void OverloadGovernor::observe_latency(double us) {
  window_[next_] = us;
  next_ = (next_ + 1) % window_.size();
  filled_ = std::min(filled_ + 1, window_.size());
  ++fresh_;
  if (++since_refresh_ >= kRefreshInterval) refresh_p99();
}

void OverloadGovernor::refresh_p99() {
  since_refresh_ = 0;
  if (filled_ == 0) {
    p99_us_ = 0.0;
    return;
  }
  std::vector<double> sorted(window_.begin(),
                             window_.begin() + std::ptrdiff_t(filled_));
  const std::size_t rank =
      std::min(filled_ - 1, std::size_t(double(filled_) * 0.99));
  std::nth_element(sorted.begin(), sorted.begin() + std::ptrdiff_t(rank), sorted.end());
  p99_us_ = sorted[rank];
}

// ---- AdmissionService ----------------------------------------------------

AdmissionService::AdmissionService(const ServiceConfig& config, sim::Simulator& simulator)
    : config_(config),
      simulator_(&simulator),
      map_size_(std::max<std::size_t>(config.cells, 2)),
      governor_(config.slo) {
  env_.emplace(service_cell_map(map_size_), simulator, config_.backbone);
  bind_metrics();
  if (config_.profiler != nullptr) {
    ph_decode_ = config_.profiler->intern("serve.decode");
    ph_admit_ = config_.profiler->intern("serve.admit");
    ph_reply_ = config_.profiler->intern("serve.reply");
  }
}

void AdmissionService::bind_metrics() {
  obs::Registry* r = config_.metrics;
  if (r == nullptr) return;
  c_offered_ = &r->counter("serve.offered");
  c_processed_ = &r->counter("serve.processed");
  c_shed_ = &r->counter("serve.shed");
  c_errors_ = &r->counter("serve.errors");
  c_admit_accepted_ = &r->counter("serve.admit_accepted");
  c_admit_rejected_ = &r->counter("serve.admit_rejected");
  c_teardowns_ = &r->counter("serve.teardowns");
  c_handoffs_ = &r->counter("serve.handoffs");
  c_handoff_drops_ = &r->counter("serve.handoff_drops");
  c_probes_ = &r->counter("serve.probes");
  g_queue_depth_ = &r->gauge("serve.queue_depth");
  h_latency_us_ = &r->histogram("serve.latency_us", latency_histogram_spec());
}

double AdmissionService::sim_now_us() const {
  return simulator_->now().to_seconds() * 1e6;
}

void AdmissionService::set_depth_gauge() {
  if (g_queue_depth_ != nullptr) g_queue_depth_->set(double(queue_depth()));
}

void AdmissionService::ingest(ServerTransport& transport, Envelope&& env,
                              double now_us) {
  ++stats_.offered;
  if (c_offered_ != nullptr) c_offered_->add();
  if (!governor_.admit(queue_depth())) {
    ++stats_.shed;
    if (c_shed_ != nullptr) c_shed_->add();
    const std::uint64_t id = peek_request_id(env.frame);
    transport.send_reply(
        env.client, encode_reply(id, ShedReply{governor_.slo().retry_after_us}));
    return;
  }
  queue_.push_back(Pending{env.client, std::move(env.frame), now_us});
  stats_.peak_queue_depth = std::max(stats_.peak_queue_depth, queue_depth());
  set_depth_gauge();
}

void AdmissionService::process(ServerTransport& transport, Pending&& pending,
                               double now_us) {
  std::optional<RequestFrame> frame;
  {
    obs::Profiler::Scope scope(config_.profiler, ph_decode_);
    try {
      frame = decode_request(pending.frame);
    } catch (const CodecError& e) {
      ++stats_.errors;
      if (c_errors_ != nullptr) c_errors_->add();
      const std::uint64_t id = peek_request_id(pending.frame);
      transport.send_reply(
          pending.client,
          encode_reply(id, ErrorReply{ServiceError::kMalformedFrame, e.what()}));
    }
  }
  if (frame.has_value()) {
    Reply reply;
    {
      obs::Profiler::Scope scope(config_.profiler, ph_admit_);
      reply = execute(frame->body);
    }
    if (std::holds_alternative<ErrorReply>(reply)) {
      ++stats_.errors;
      if (c_errors_ != nullptr) c_errors_->add();
    }
    obs::Profiler::Scope scope(config_.profiler, ph_reply_);
    transport.send_reply(pending.client,
                         encode_reply(frame->request_id, std::move(reply)));
  }
  ++stats_.processed;
  if (c_processed_ != nullptr) c_processed_->add();
  const double latency_us = std::max(0.0, now_us - pending.arrival_us);
  governor_.observe_latency(latency_us);
  if (h_latency_us_ != nullptr) h_latency_us_->record(latency_us);
  set_depth_gauge();

  if (config_.adapt_every > 0 && ++processed_since_adapt_ >= config_.adapt_every) {
    processed_since_adapt_ = 0;
    obs::Profiler::Scope scope(config_.profiler, ph_admit_);
    env_->adapt();
  }
}

void AdmissionService::schedule_virtual_completion() {
  if (virtual_busy_ || queue_.empty()) return;
  virtual_busy_ = true;
  simulator_->after(
      sim::Duration::seconds(config_.virtual_service_cost_us * 1e-6), [this] {
        Pending pending = std::move(queue_.front());
        queue_.pop_front();
        process(*virtual_transport_, std::move(pending), sim_now_us());
        virtual_busy_ = false;
        schedule_virtual_completion();
      });
}

void AdmissionService::pump_virtual(ServerTransport& transport) {
  virtual_transport_ = &transport;
  Envelope env;
  const double now_us = sim_now_us();
  while (transport.next_request(env, std::chrono::microseconds(0))) {
    ingest(transport, std::move(env), now_us);
  }
  schedule_virtual_completion();
}

void AdmissionService::run_wall(ServerTransport& transport, double deadline_seconds) {
  using clock = std::chrono::steady_clock;
  const auto start = clock::now();
  const auto now_us = [&start] {
    return std::chrono::duration<double, std::micro>(clock::now() - start).count();
  };
  while (true) {
    // Ingest a burst: block briefly only when there is nothing to do.
    Envelope env;
    auto wait = queue_.empty() ? std::chrono::microseconds(1000)
                               : std::chrono::microseconds(0);
    while (queue_.size() <= governor_.slo().queue_capacity &&
           transport.next_request(env, wait)) {
      ingest(transport, std::move(env), now_us());
      wait = std::chrono::microseconds(0);
    }
    if (!queue_.empty()) {
      // Advance simulated time alongside the wall clock so environment-side
      // time (static/mobile classification, reservations) keeps moving.
      simulator_->run_until(sim::SimTime::seconds(now_us() * 1e-6));
      Pending pending = std::move(queue_.front());
      queue_.pop_front();
      process(transport, std::move(pending), now_us());
    }
    if (shutdown_ && queue_.empty()) return;
    if (queue_.empty() && transport.finished()) return;
    if (deadline_seconds > 0.0 && now_us() * 1e-6 >= deadline_seconds) return;
  }
}

Reply AdmissionService::execute(const Request& request) {
  if (shutdown_) {
    return ErrorReply{ServiceError::kShuttingDown, "service is shutting down"};
  }
  return std::visit(
      Overloaded{
          [this](const AdmitRequest& r) { return do_admit(r); },
          [this](const TeardownRequest& r) { return do_teardown(r); },
          [this](const HandoffRequest& r) { return do_handoff(r); },
          [this](const ProbeRequest&) -> Reply {
            ++stats_.probes;
            if (c_probes_ != nullptr) c_probes_->add();
            ProbeReply reply;
            reply.offered = stats_.offered;
            reply.processed = stats_.processed;
            reply.shed = stats_.shed;
            reply.errors = stats_.errors;
            reply.queue_depth = std::uint32_t(queue_depth());
            reply.cells = std::uint32_t(map_size_);
            return reply;
          },
          [this](const ShutdownRequest&) -> Reply {
            shutdown_ = true;
            return ShutdownReply{};
          },
      },
      request);
}

Reply AdmissionService::do_admit(const AdmitRequest& request) {
  if (request.cell >= map_size_) {
    return ErrorReply{ServiceError::kUnknownCell,
                      "cell " + std::to_string(request.cell) + " out of range (" +
                          std::to_string(map_size_) + " cells)"};
  }
  const mobility::CellId cell{request.cell};
  const auto [it, inserted] = portable_of_.try_emplace(request.portable,
                                                      net::PortableId::invalid());
  if (inserted) it->second = env_->add_portable(cell);
  const net::PortableId portable = it->second;
  if (env_->has_connection(portable)) {
    return ErrorReply{ServiceError::kAlreadyAdmitted,
                      "portable " + std::to_string(request.portable) +
                          " already has an open connection"};
  }
  const mobility::CellId current = env_->mobility().portable(portable).current_cell;
  if (current != cell) {
    // A session-less portable re-admitting from elsewhere: relocate it, but
    // only along the neighbor relation the mobility model enforces.
    if (!env_->map().cell(current).is_neighbor(cell)) {
      return ErrorReply{ServiceError::kNotAdjacent,
                        "portable " + std::to_string(request.portable) + " is in cell " +
                            std::to_string(current.value()) + ", not adjacent to " +
                            std::to_string(request.cell)};
    }
    env_->handoff(portable, cell);
  }
  if (!request.qos.valid()) {
    AdmitReply reply;
    reply.accepted = false;
    reply.reason = std::uint8_t(qos::RejectReason::kInvalidRequest);
    ++stats_.admit_rejected;
    if (c_admit_rejected_ != nullptr) c_admit_rejected_->add();
    return reply;
  }
  const bool accepted = env_->open_connection(
      portable, request.qos,
      request.uplink ? core::Direction::kUplink : core::Direction::kDownlink);
  AdmitReply reply;
  reply.accepted = accepted;
  reply.allocated_bps = accepted ? env_->allocated(portable) : 0.0;
  if (accepted) {
    ++stats_.admit_accepted;
    if (c_admit_accepted_ != nullptr) c_admit_accepted_->add();
  } else {
    ++stats_.admit_rejected;
    if (c_admit_rejected_ != nullptr) c_admit_rejected_->add();
  }
  return reply;
}

Reply AdmissionService::do_teardown(const TeardownRequest& request) {
  ++stats_.teardowns;
  if (c_teardowns_ != nullptr) c_teardowns_->add();
  const auto it = portable_of_.find(request.portable);
  TeardownReply reply;  // idempotent: unknown portable / no session => false
  if (it != portable_of_.end() && env_->has_connection(it->second)) {
    env_->close_connection(it->second);
    reply.had_session = true;
  }
  return reply;
}

Reply AdmissionService::do_handoff(const HandoffRequest& request) {
  const auto it = portable_of_.find(request.portable);
  if (it == portable_of_.end()) {
    return ErrorReply{ServiceError::kUnknownPortable,
                      "portable " + std::to_string(request.portable) + " was never admitted"};
  }
  if (request.to_cell >= map_size_) {
    return ErrorReply{ServiceError::kUnknownCell,
                      "cell " + std::to_string(request.to_cell) + " out of range (" +
                          std::to_string(map_size_) + " cells)"};
  }
  const mobility::CellId to{request.to_cell};
  const mobility::CellId current = env_->mobility().portable(it->second).current_cell;
  if (current == to || !env_->map().cell(current).is_neighbor(to)) {
    return ErrorReply{ServiceError::kNotAdjacent,
                      "cell " + std::to_string(request.to_cell) + " is not a neighbor of " +
                          std::to_string(current.value())};
  }
  const bool completed = env_->handoff(it->second, to);
  HandoffReply reply;
  reply.completed = completed;
  ++stats_.handoffs;
  if (c_handoffs_ != nullptr) c_handoffs_->add();
  if (!completed) {
    ++stats_.handoff_drops;
    if (c_handoff_drops_ != nullptr) c_handoff_drops_->add();
  }
  return reply;
}

}  // namespace imrm::serve
