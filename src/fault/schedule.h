// Discrete failure timelines (ISSUE 3 tentpole, part 2).
//
// A FaultSchedule is a scripted or randomly generated list of failure events
// — link down/up flaps, base-station crash/restart (losing soft state), and
// partition/heal of named cell groups — armed onto a simulator so that each
// event fires its hook at the scheduled time. The schedule itself is plain
// data: the same schedule can drive a FaultyChannel (down = drop everything)
// and a hardened protocol (crash = wipe per-connection soft state) at once.
//
// Observability: arming with a Registry registers `fault.injected.*`
// counters; arming with a Tracer emits one complete span per down→up outage
// (track = the failed link) plus instants for crashes, so failure epochs are
// visible in the Chrome trace next to the adaptation rounds they disturb.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace imrm::obs {
class Registry;
class Tracer;
}  // namespace imrm::obs

namespace imrm::sim {
class ShardedRunner;
}  // namespace imrm::sim

namespace imrm::fault {

enum class FaultKind : std::uint8_t {
  kLinkDown,   // target = link/channel index
  kLinkUp,     // target = link/channel index
  kCellCrash,  // target = link index of the restarting base station
  kPartition,  // target = group index (every member link goes down)
  kHeal,       // target = group index (every member link comes back)
};

struct FaultEvent {
  sim::SimTime at;
  FaultKind kind = FaultKind::kLinkDown;
  std::uint32_t target = 0;
};

class FaultSchedule {
 public:
  using LinkHook = std::function<void(std::uint32_t link)>;

  /// Callbacks the schedule drives. Any hook may be left empty; partitions
  /// expand to per-member-link down/up calls.
  struct Hooks {
    LinkHook link_down;
    LinkHook link_up;
    LinkHook cell_crash;
  };

  void add(FaultEvent event) { events_.push_back(event); }

  /// Convenience: one down→up flap of `link`.
  void flap(std::uint32_t link, sim::SimTime down, sim::SimTime up) {
    add({down, FaultKind::kLinkDown, link});
    add({up, FaultKind::kLinkUp, link});
  }

  /// Crash/restart of the base station owning `link` at `at`.
  void crash(std::uint32_t link, sim::SimTime at) {
    add({at, FaultKind::kCellCrash, link});
  }

  /// Declares a cell group for partition events; returns the group index.
  std::uint32_t add_group(std::vector<std::uint32_t> links) {
    groups_.push_back(std::move(links));
    return std::uint32_t(groups_.size() - 1);
  }

  /// Partitions `group` (all member links down) at `start`, heals at `heal`.
  void partition(std::uint32_t group, sim::SimTime start, sim::SimTime heal) {
    add({start, FaultKind::kPartition, group});
    add({heal, FaultKind::kHeal, group});
  }

  struct RandomConfig {
    sim::SimTime start = sim::SimTime::zero();
    sim::SimTime stop = sim::SimTime::seconds(1.0);
    std::uint32_t links = 1;            // flap/crash targets drawn from [0, links)
    std::size_t flaps = 0;              // number of down→up flaps
    sim::Duration mean_outage = sim::Duration::millis(20.0);
    std::size_t crashes = 0;            // number of cell crash/restarts
  };

  /// Generates a random timeline: `flaps` outages with exponential duration
  /// and `crashes` restarts, uniformly placed in [start, stop). Deterministic
  /// given the rng state.
  [[nodiscard]] static FaultSchedule random(const RandomConfig& config, sim::Rng& rng);

  /// Schedules every event on `simulator`. Hooks fire in event-time order;
  /// same-time events fire in insertion order (the simulator's queue is
  /// FIFO within a timestamp). Counters/spans are emitted when a registry /
  /// tracer is supplied.
  void arm(sim::Simulator& simulator, Hooks hooks, obs::Registry* metrics = nullptr,
           obs::Tracer* tracer = nullptr) const;

  /// Hooks for sharded execution: each fires with the domain it fired on, so
  /// the callback can mutate that domain's state without cross-shard reads.
  struct ShardedHooks {
    using Hook = std::function<void(std::size_t domain, std::uint32_t link)>;
    Hook link_down;
    Hook link_up;
    Hook cell_crash;
  };

  /// Schedules every event on EVERY domain of `runner`. This is the batched-
  /// window correctness fix (ISSUE 10): with multi-window bursts between
  /// barriers, a fault armed on a single domain could reach the others only
  /// as a boundary message at the next burst edge — so where the fault took
  /// effect would depend on the batch size, breaking the runner's
  /// byte-identical contract. Arming per domain puts the event in each
  /// domain's own queue, so it fires at the exact scheduled sim time inside
  /// whatever burst that domain is executing, for any (workers, batch).
  ///
  /// Counters and trace spans are emitted from domain 0 only, so each
  /// injected fault is counted once no matter how many domains observe it.
  /// Must be called before `runner.run_until` (same rule as Simulator::at).
  void arm_sharded(sim::ShardedRunner& runner, ShardedHooks hooks,
                   obs::Registry* metrics = nullptr,
                   obs::Tracer* tracer = nullptr) const;

  [[nodiscard]] const std::vector<FaultEvent>& events() const { return events_; }
  [[nodiscard]] const std::vector<std::vector<std::uint32_t>>& groups() const {
    return groups_;
  }
  [[nodiscard]] bool empty() const { return events_.empty(); }

  /// Time of the last scheduled event (zero when empty) — the earliest
  /// moment the system can be called fault-free again.
  [[nodiscard]] sim::SimTime end_time() const;

 private:
  std::vector<FaultEvent> events_;
  std::vector<std::vector<std::uint32_t>> groups_;
};

}  // namespace imrm::fault
