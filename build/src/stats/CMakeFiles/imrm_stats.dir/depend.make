# Empty dependencies file for imrm_stats.
# This may be replaced when dependencies are built.
