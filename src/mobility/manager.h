// Mobility manager: owns the portables, validates moves against the cell
// map, applies the static/mobile classifier, and fans handoff events out to
// listeners (profile servers, resource managers, statistics).
#pragma once

#include <functional>
#include <vector>

#include "mobility/cell.h"
#include "mobility/floorplan.h"
#include "mobility/portable.h"
#include "sim/checkpoint.h"
#include "sim/simulator.h"

namespace imrm::obs {
class Counter;
class Histogram;
class Registry;
}  // namespace imrm::obs

namespace imrm::mobility {

struct HandoffEvent {
  PortableId portable = PortableId::invalid();
  CellId from = CellId::invalid();
  CellId to = CellId::invalid();
  /// The portable's previous cell *before* `from` — what profile-based
  /// prediction keys on.
  CellId prev_of_from = CellId::invalid();
  sim::SimTime time = sim::SimTime::zero();
};

class MobilityManager {
 public:
  using HandoffListener = std::function<void(const HandoffEvent&)>;

  MobilityManager(const CellMap& map, sim::Simulator& simulator,
                  sim::Duration static_threshold)
      : map_(&map), simulator_(&simulator), classifier_(static_threshold) {}

  /// Creates a portable in `start`. It is considered to have entered the
  /// cell at the current simulation time.
  PortableId add_portable(CellId start);

  /// Moves a portable to a neighboring cell, firing handoff listeners.
  /// Moving to a non-neighbor is a programming error (asserted).
  void move(PortableId portable, CellId to);

  [[nodiscard]] const Portable& portable(PortableId id) const {
    return portables_.at(id.value());
  }
  [[nodiscard]] Portable& portable(PortableId id) { return portables_.at(id.value()); }
  [[nodiscard]] std::size_t portable_count() const { return portables_.size(); }

  [[nodiscard]] qos::MobilityClass classify(PortableId id) const {
    return classifier_.classify(portable(id), simulator_->now());
  }
  [[nodiscard]] const StaticMobileClassifier& classifier() const { return classifier_; }

  /// Portables currently in `cell`.
  [[nodiscard]] std::vector<PortableId> portables_in(CellId cell) const;

  void on_handoff(HandoffListener listener) { listeners_.push_back(std::move(listener)); }

  /// Registers the mobility.handoffs counter; every move() increments it.
  /// Also lights up per-handoff trace instants when the simulator has a
  /// tracer attached. Deterministic across replications.
  void bind_metrics(obs::Registry& registry);

  /// Registers mobility.handoff_wall_us — a wall-clock histogram of the
  /// listener fan-out latency per handoff, measured with steady_clock. Wall
  /// time is NOT deterministic, so sweeps that compare snapshots across
  /// thread counts must leave this unbound (see experiments::CampusDayConfig
  /// ::wall_metrics).
  void bind_latency_metrics(obs::Registry& registry);

  [[nodiscard]] const CellMap& map() const { return *map_; }
  [[nodiscard]] sim::Simulator& simulator() { return *simulator_; }

  // --- checkpoint/restore (ISSUE 4) ---------------------------------------
  // Serializes the portable roster (cells, entry times, home offices).
  // Listeners and metric bindings are addresses, so the restoring harness
  // reconstructs them through its own constructor before calling
  // restore_state.
  void save_state(sim::CheckpointWriter& w) const;
  void restore_state(sim::CheckpointReader& r);

 private:
  const CellMap* map_;
  sim::Simulator* simulator_;
  StaticMobileClassifier classifier_;
  std::vector<Portable> portables_;
  std::vector<HandoffListener> listeners_;
  obs::Counter* handoff_counter_ = nullptr;
  obs::Histogram* handoff_wall_us_ = nullptr;
  obs::NameId trace_handoff_name_ = obs::kInvalidName;
};

}  // namespace imrm::mobility
