#include "experiments/campus_day.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "fault/fault_model.h"
#include "maxmin/waterfill.h"
#include "mobility/floorplan.h"
#include "mobility/manager.h"
#include "obs/profiler.h"
#include "qos/adaptation.h"
#include "qos/packet_sim.h"
#include "qos/shaper.h"
#include "prediction/predictor.h"
#include "profiles/profile_server.h"
#include "reservation/dispatcher.h"
#include "sim/flat_map.h"
#include "sim/random.h"
#include "sim/replication.h"
#include "sim/simulator.h"
#include "workload/connection_mix.h"

namespace imrm::experiments {

using mobility::CellId;
using net::PortableId;
using qos::kbps;
using sim::Duration;
using sim::SimTime;

std::string to_string(CampusPolicy policy) {
  switch (policy) {
    case CampusPolicy::kNone: return "none";
    case CampusPolicy::kStatic: return "static";
    case CampusPolicy::kBruteForce: return "brute-force";
    case CampusPolicy::kAggregate: return "aggregate";
    case CampusPolicy::kDispatcher: return "dispatcher (Sec. 6.4)";
  }
  return "unknown";
}

namespace {

class CampusDay {
 public:
  explicit CampusDay(const CampusDayConfig& config)
      : config_(config), map_(mobility::campus_environment()),
        manager_(map_, simulator_, Duration::minutes(3)), server_(net::ZoneId{0}),
        predictor_(map_, server_), rng_(config.seed),
        horizon_(config.meeting_stop + Duration::minutes(40)) {
    for (const auto& cell : map_.cells()) {
      directory_.add_cell(cell.id, config_.cell_capacity);
    }
    room_ = *map_.find("meeting-room");
    corridor_ = *map_.find("corridor-0");
    far_corridor_ = *map_.find("corridor-3");
    server_.calendar(room_).book(
        {config_.meeting_start, config_.meeting_stop, config_.attendees});

    manager_.on_handoff([this](const mobility::HandoffEvent& e) {
      server_.record_handoff(e);
      if (policy_) policy_->on_handoff(e);
    });
    build_policy();

    // Only fork a probe stream when faults are on, so fault-free days keep
    // drawing exactly the pre-fault sequence from rng_.
    if (config_.faults.enabled()) probe_.emplace(config_.faults, rng_.fork());

    // The adaptation loop is likewise gated: a disabled loop builds no
    // packet pipeline and forks no RNG, so loop-off days stay byte-identical.
    if (config_.adapt.enabled) setup_adapt_loop();

    if (config_.tracer) simulator_.set_tracer(config_.tracer);
    if (config_.metrics) {
      directory_.bind_metrics(*config_.metrics);
      manager_.bind_metrics(*config_.metrics);
      if (config_.wall_metrics) manager_.bind_latency_metrics(*config_.metrics);
      if (probe_) probe_->bind_metrics(config_.metrics);
    }
  }

  CampusDayResult run() {
    start();
    simulator_.run();
    return finish();
  }

  /// Runs up to (not including) the first event at or after `at`, then
  /// snapshots everything a resume needs. The quiescence rule holds by
  /// construction: every pending event is a tagged record in pending_.
  sim::Checkpoint checkpoint(SimTime at) {
    if (config_.adapt.enabled) {
      // The packet pipeline schedules raw lambdas (source ticks, link
      // serves), not tagged PendingEvent records — there is nothing to
      // re-arm on the other side, so refuse instead of silently dropping
      // the in-flight packets.
      throw sim::CheckpointError(
          "campus: the adaptation loop does not support checkpoint/resume");
    }
    start();
    while (simulator_.next_event_time() < at && simulator_.step()) {
    }
    sim::Checkpoint ckpt;
    {
      sim::CheckpointWriter w;
      sim::save_simulator_core(w, simulator_);
      ckpt.set("sim.core", std::move(w));
    }
    {
      sim::CheckpointWriter w;
      save_harness(w);
      ckpt.set("experiment.campus", std::move(w));
    }
    if (config_.metrics) {
      sim::CheckpointWriter w;
      sim::save_registry(w, *config_.metrics);
      ckpt.set("obs.registry", std::move(w));
    }
    return ckpt;
  }

  CampusDayResult resume(const sim::Checkpoint& ckpt) {
    if (config_.adapt.enabled) {
      throw sim::CheckpointError(
          "campus: the adaptation loop does not support checkpoint/resume");
    }
    sim::CheckpointReader h = ckpt.reader("experiment.campus");
    restore_harness(h);
    if (!h.done()) {
      throw sim::CheckpointError("campus: trailing bytes in experiment section");
    }
    // Driver core last: re-arming above inflated the queue counters; the
    // saved totals already account for every live event.
    sim::CheckpointReader core = ckpt.reader("sim.core");
    sim::restore_simulator_core(core, simulator_);
    if (config_.metrics) {
      // A metered resume needs the warm-phase instrument totals; silently
      // continuing from zeros would report a day missing its first half.
      if (!ckpt.has("obs.registry")) {
        throw sim::CheckpointError(
            "campus: resume wants metrics but the checkpoint has no "
            "obs.registry section (re-take it with metrics enabled)");
      }
      sim::CheckpointReader reg = ckpt.reader("obs.registry");
      sim::restore_registry(reg, *config_.metrics);
    }
    simulator_.run();
    return finish();
  }

 private:
  // Every scheduled occurrence is one of these tags plus plain data — no
  // captured lambdas — so a checkpoint can re-arm the exact schedule.
  enum class EventKind : std::uint8_t {
    kAttendeeAppear = 0,  // portable, bandwidth
    kHandoff = 1,         // portable, cell (target), attendee flag
    kSquatterTry = 2,     // portable
    kRoamerStep = 3,      // portable
    kRefresh = 4,         // self-re-arming 30 s periodic
    kRoomSample = 5,      // self-re-arming 1 min periodic
  };

  struct PendingEvent {
    std::uint64_t serial = 0;  // global scheduling order, FIFO-tie preserving
    SimTime at = SimTime::zero();
    EventKind kind = EventKind::kRefresh;
    PortableId portable = PortableId::invalid();
    CellId cell = CellId::invalid();
    qos::BitsPerSecond bandwidth = 0.0;
    bool attendee = false;
  };

  void start() {
    schedule_attendees();
    schedule_squatters();
    schedule_roamers();
    if (adapt_) start_adapt_loop();
    PendingEvent refresh_tick;
    refresh_tick.at = simulator_.now() + Duration::seconds(30);
    refresh_tick.kind = EventKind::kRefresh;
    schedule_event(refresh_tick);
    PendingEvent sample_tick;
    sample_tick.at = simulator_.now() + Duration::minutes(1);
    sample_tick.kind = EventKind::kRoomSample;
    schedule_event(sample_tick);
  }

  CampusDayResult finish() {
    result_.policy = to_string(config_.policy);
    if (adapt_) {
      result_.renegotiations =
          std::size_t(adapt_->controller->renegotiations_accepted());
      result_.adapt_granted_prefault_bps = adapt_->prefault_total;
      result_.adapt_granted_min_bps =
          adapt_->min_total == std::numeric_limits<double>::infinity()
              ? total_granted()
              : adapt_->min_total;
      result_.adapt_granted_final_bps = total_granted();
    }
    if (config_.metrics) export_metrics(*config_.metrics);
    return result_;
  }

  void schedule_event(PendingEvent e) {
    e.serial = next_serial_++;
    pending_.push_back(e);
    arm(e);
  }

  void arm(const PendingEvent& e) {
    simulator_.at(e.at, [this, serial = e.serial] { fire(serial); });
  }

  void fire(std::uint64_t serial) {
    const auto it =
        std::find_if(pending_.begin(), pending_.end(),
                     [serial](const PendingEvent& e) { return e.serial == serial; });
    assert(it != pending_.end() && "fired event missing from pending list");
    const PendingEvent e = *it;
    pending_.erase(it);
    dispatch(e);
  }

  void dispatch(const PendingEvent& e) {
    switch (e.kind) {
      case EventKind::kAttendeeAppear:
        if (probe_signaling() &&
            directory_.at(far_corridor_).admit_new(e.portable, e.bandwidth)) {
          demand_[e.portable.value()] = e.bandwidth;
        }
        refresh();
        break;
      case EventKind::kHandoff:
        do_handoff(e.portable, e.cell, e.attendee);
        break;
      case EventKind::kSquatterTry:
        squat(e.portable);
        break;
      case EventKind::kRoamerStep:
        roam_step(e.portable);
        break;
      case EventKind::kRefresh:
        refresh();
        if (adapt_) adapt_tick();
        rearm_periodic(e, Duration::seconds(30));
        break;
      case EventKind::kRoomSample:
        result_.room_peak_allocated =
            std::max(result_.room_peak_allocated, directory_.at(room_).allocated());
        rearm_periodic(e, Duration::minutes(1));
        break;
    }
  }

  void rearm_periodic(const PendingEvent& e, Duration period) {
    const SimTime next = simulator_.now() + period;
    if (next > horizon_) return;
    PendingEvent tick;
    tick.at = next;
    tick.kind = e.kind;
    schedule_event(tick);
  }

  reservation::PolicyEnv env() {
    reservation::PolicyEnv e;
    e.map = &map_;
    e.directory = &directory_;
    e.profiles = &server_;
    e.demand = [this](PortableId p) {
      const qos::BitsPerSecond* b = demand_.find(p.value());
      return b == nullptr ? 0.0 : *b;
    };
    e.classify = [this](PortableId p) { return manager_.classify(p); };
    e.portables_in = [this](CellId c) { return manager_.portables_in(c); };
    e.previous_cell = [this](PortableId p) { return manager_.portable(p).previous_cell; };
    return e;
  }

  void build_policy() {
    switch (config_.policy) {
      case CampusPolicy::kNone:
        policy_ = std::make_unique<reservation::NoReservationPolicy>(env());
        break;
      case CampusPolicy::kStatic:
        policy_ = std::make_unique<reservation::StaticPolicy>(env(), 0.10);
        break;
      case CampusPolicy::kBruteForce:
        policy_ = std::make_unique<reservation::BruteForcePolicy>(env());
        break;
      case CampusPolicy::kAggregate:
        policy_ = std::make_unique<reservation::AggregatePolicy>(env());
        break;
      case CampusPolicy::kDispatcher:
        policy_ = std::make_unique<reservation::PolicyDispatcher>(
            env(), predictor_, server_, reservation::PolicyDispatcher::Params{});
        break;
    }
  }

  void refresh() { policy_->refresh(simulator_.now()); }

  // ---- adaptation loop (ISSUE 9) ----------------------------------------
  //
  // A handful of adaptive packet streams live in the meeting room, admitted
  // into the room's bandwidth account at b_min like any connection. Each
  // stream is source -> shaper -> Virtual Clock link -> lossy hop -> sink.
  // Every refresh tick the controller harvests the hop's per-flow loss
  // window and the sinks' delay-bound violations; sustained breach
  // renegotiates the requested range down, sustained clean ramps it back,
  // and every grant change is pushed into the shaper so the delivered rate
  // IS the granted rate.

  /// Packet payload: large enough to keep the event count tractable over a
  /// full day, small enough for >= min_samples packets per 30 s window even
  /// when a flow is throttled to b_min.
  static constexpr qos::Bits kAdaptPacketBits = 32000.0;  // 4000 bytes

  struct AdaptRuntime {
    qos::DelaySink sink;
    std::optional<qos::LossyHop> hop;
    std::optional<qos::ScheduledLink> link;
    std::optional<qos::DualTokenBucketShaper> shaper;
    std::optional<qos::AdaptationController> controller;
    std::vector<std::unique_ptr<qos::TokenBucketSource>> sources;
    std::vector<qos::QosRequest> requests;  // current requested ranges
    std::vector<PortableId> ids;            // room-account identities
    double prefault_total = 0.0;
    double min_total = std::numeric_limits<double>::infinity();
    bool fault_seen = false;
  };

  [[nodiscard]] PortableId adapt_id(std::size_t i) const {
    // Outside the mobility roster's id range: the streams are room fixtures
    // (no mobility, no policy interaction), only their bandwidth is real.
    return PortableId{std::uint32_t(1000000 + i)};
  }

  void setup_adapt_loop() {
    adapt_ = std::make_unique<AdaptRuntime>();
    adapt_->hop.emplace(fault::LinkFaultModel{}, rng_.fork(),
                        [this](qos::Packet p) {
                          const qos::Seconds delay =
                              (simulator_.now() - p.created).to_seconds();
                          adapt_->sink(p, simulator_.now());
                          adapt_->controller->on_delivered(p.flow, delay);
                        });
    adapt_->link.emplace(simulator_, config_.cell_capacity,
                         [this](qos::Packet p) { adapt_->hop->offer(std::move(p)); });
    adapt_->shaper.emplace(simulator_,
                           [this](qos::Packet p) { adapt_->link->enqueue(std::move(p)); });
    adapt_->controller.emplace(
        qos::AdaptationConfig{}, *adapt_->hop,
        [this](qos::FlowId flow, qos::BandwidthRange range) {
          return adapt_renegotiate(flow, range);
        });
    if (config_.metrics) {
      adapt_->controller->set_window_observer(
          [this](qos::FlowId, const qos::LossyHop::LossWindow& w,
                 qos::AdaptationController::WindowVerdict v) {
            if (v == qos::AdaptationController::WindowVerdict::kInsufficient) return;
            config_.metrics
                ->histogram("adapt.window_loss_rate",
                            obs::HistogramSpec::linear(0.0, 1.0, 20))
                .record(w.loss_rate());
          });
    }

    reservation::CellBandwidth& account = directory_.at(room_);
    for (std::size_t i = 0; i < config_.adapt.flows; ++i) {
      const qos::FlowId flow = qos::FlowId(i);
      qos::QosRequest request;
      request.bandwidth = {config_.adapt.b_min, config_.adapt.b_max};
      request.delay_bound = 0.25;    // generous: the room link is unloaded
      request.jitter_bound = 0.25;
      request.loss_bound = 0.02;     // p_e the fault window must breach
      request.traffic = {2.0 * kAdaptPacketBits, kAdaptPacketBits};
      assert(request.valid());
      adapt_->requests.push_back(request);
      adapt_->ids.push_back(adapt_id(i));
      const bool admitted = account.admit_new(adapt_->ids[i], config_.adapt.b_min);
      assert(admitted && "adaptive streams are admitted into an empty room");
      (void)admitted;
      adapt_->link->add_flow(flow, config_.adapt.b_min);
      adapt_->shaper->add_flow(
          flow, qos::DualTokenBucketShaper::Shape{
                    config_.adapt.b_min, 0.0,
                    /*bg_depth=*/2.0 * kAdaptPacketBits,
                    /*wc_depth=*/2.0 * kAdaptPacketBits});
      adapt_->controller->add_flow(flow, request, config_.adapt.b_min);
      // Greedy at b_max: the stream always wants its ceiling; what it gets
      // on the wire is whatever the shaper currently enforces.
      qos::TokenBucketSource::Config source;
      source.flow = flow;
      source.sigma = 2.0 * kAdaptPacketBits;
      source.rho = config_.adapt.b_max;
      source.packet_size = kAdaptPacketBits;
      source.greedy = true;
      adapt_->sources.push_back(std::make_unique<qos::TokenBucketSource>(
          simulator_, source, rng_.fork(),
          [this](qos::Packet p) { adapt_->shaper->offer(std::move(p)); }));
    }
    redivide_adaptive();
  }

  void start_adapt_loop() {
    for (auto& source : adapt_->sources) source->start(horizon_);
    const auto& cfg = config_.adapt;
    if (cfg.fault_loss > 0.0 && cfg.fault_start < cfg.fault_stop &&
        cfg.fault_start < horizon_) {
      // Raw lambdas, not PendingEvents: fine, the loop refuses checkpoints.
      simulator_.at(cfg.fault_start, [this] {
        adapt_->prefault_total = total_granted();
        adapt_->fault_seen = true;
        adapt_->hop->set_model(fault::LinkFaultModel::gilbert_elliott(
            0.2, config_.adapt.fault_loss, 20.0));
      });
      simulator_.at(cfg.fault_stop, [this] {
        adapt_->hop->set_model(fault::LinkFaultModel{});
      });
    }
  }

  /// The controller asks for a new range: record it and re-divide. The
  /// grant itself comes out of the max-min division, not the request.
  bool adapt_renegotiate(qos::FlowId flow, qos::BandwidthRange range) {
    adapt_->requests[flow].bandwidth = range;
    redivide_adaptive();
    return true;
  }

  /// Max-min re-division of the room's excess among the adaptive streams'
  /// current headrooms (requested - b_min), pushed into the account, the
  /// link's reserved rates, the shaper and the controller — one shared
  /// split for control plane and data plane.
  void redivide_adaptive() {
    reservation::CellBandwidth& account = directory_.at(room_);
    for (std::size_t i = 0; i < adapt_->ids.size(); ++i) {
      account.set_allocation(adapt_->ids[i], adapt_->requests[i].bandwidth.b_min);
    }
    const double excess = std::max(
        account.capacity() - account.allocated() - account.reserved_total(), 0.0);
    std::vector<double> headrooms;
    headrooms.reserve(adapt_->ids.size());
    for (const qos::QosRequest& r : adapt_->requests) {
      headrooms.push_back(r.bandwidth.headroom());
    }
    const std::vector<double> shares = maxmin::divide_excess(excess, headrooms);
    for (std::size_t i = 0; i < adapt_->ids.size(); ++i) {
      const qos::FlowId flow = qos::FlowId(i);
      const qos::BitsPerSecond b_min = adapt_->requests[i].bandwidth.b_min;
      account.set_allocation(adapt_->ids[i], b_min + shares[i]);
      adapt_->link->set_rate(flow, b_min + shares[i]);
      adapt_->shaper->set_shape(flow, b_min, shares[i]);
      adapt_->controller->on_granted(flow, b_min + shares[i]);
    }
  }

  void adapt_tick() {
    adapt_->controller->tick();
    // Re-divide unconditionally: reservations and meeting traffic move the
    // room's excess even between renegotiations.
    redivide_adaptive();
    if (adapt_->fault_seen) {
      adapt_->min_total = std::min(adapt_->min_total, total_granted());
    }
  }

  [[nodiscard]] double total_granted() const {
    double total = 0.0;
    for (std::size_t i = 0; i < adapt_->ids.size(); ++i) {
      total += adapt_->controller->granted(qos::FlowId(i));
    }
    return total;
  }

  [[nodiscard]] double total_enforced() const {
    double total = 0.0;
    for (std::size_t i = 0; i < adapt_->ids.size(); ++i) {
      total += adapt_->shaper->enforced_rate(qos::FlowId(i));
    }
    return total;
  }

  void export_metrics(obs::Registry& m) const {
    simulator_.collect_metrics(m);
    m.counter("campus.attendee_drops").add(result_.attendee_drops);
    m.counter("campus.squatter_blocks").add(result_.squatter_blocks);
    m.counter("campus.squatter_admits").add(result_.squatter_admits);
    m.counter("campus.other_drops").add(result_.other_drops);
    m.gauge("campus.room_peak_allocated_bps").set(result_.room_peak_allocated);
    if (adapt_) {
      const qos::AdaptationController& c = *adapt_->controller;
      m.counter("adapt.renegotiations_triggered").add(c.renegotiations_triggered());
      m.counter("adapt.renegotiations_accepted").add(c.renegotiations_accepted());
      m.counter("adapt.windows_breached").add(c.windows_breached());
      m.counter("adapt.windows_clean").add(c.windows_clean());
      m.counter("adapt.windows_insufficient").add(c.windows_insufficient());
      const qos::DualTokenBucketShaper::Counters& t = adapt_->shaper->totals();
      m.counter("adapt.shaper_offered_packets").add(t.offered_packets);
      m.counter("adapt.shaper_bg_packets").add(t.bg_packets);
      m.counter("adapt.shaper_wc_packets").add(t.wc_packets);
      m.counter("adapt.shaper_nonconforming_packets").add(t.nonconforming_packets);
      m.counter("adapt.shaper_offered_bits").add(std::uint64_t(t.offered_bits));
      m.counter("adapt.shaper_bg_bits").add(std::uint64_t(t.bg_bits));
      m.counter("adapt.shaper_wc_bits").add(std::uint64_t(t.wc_bits));
      m.counter("adapt.shaper_nonconforming_bits")
          .add(std::uint64_t(t.nonconforming_bits));
      m.counter("adapt.hop_offered_packets").add(adapt_->hop->offered());
      m.counter("adapt.hop_delivered_packets").add(adapt_->hop->delivered());
      m.counter("adapt.hop_dropped_packets").add(adapt_->hop->dropped());
      m.gauge("adapt.granted_bps").set(total_granted());
      m.gauge("adapt.enforced_bps").set(total_enforced());
    }
  }

  void do_handoff(PortableId p, CellId to, bool is_attendee) {
    const CellId from = manager_.portable(p).current_cell;
    if (from == to || !map_.cell(from).is_neighbor(to)) return;
    const qos::BitsPerSecond* d = demand_.find(p.value());
    const bool connected = d != nullptr;
    const qos::BitsPerSecond bandwidth = connected ? *d : 0.0;
    if (connected) directory_.at(from).release(p);
    manager_.move(p, to);
    ++result_.handoffs;
    if (connected &&
        !(probe_signaling() && directory_.at(to).admit_handoff(p, bandwidth))) {
      if (is_attendee) {
        ++result_.attendee_drops;
      } else {
        ++result_.other_drops;
      }
      demand_.erase(p.value());
    }
    refresh();
  }

  void schedule_attendee_handoff(SimTime at, PortableId p, CellId to) {
    PendingEvent e;
    e.at = at;
    e.kind = EventKind::kHandoff;
    e.portable = p;
    e.cell = to;
    e.attendee = true;
    schedule_event(e);
  }

  void schedule_attendees() {
    const workload::ConnectionMix mix = workload::paper_fig5_mix();
    // The corridor chain from the far end to the room's corridor.
    const std::vector<CellId> chain{*map_.find("corridor-3"), *map_.find("corridor-2"),
                                    *map_.find("corridor-1"), *map_.find("corridor-0")};
    for (std::size_t i = 0; i < config_.attendees; ++i) {
      const PortableId p = manager_.add_portable(far_corridor_);
      const qos::BitsPerSecond b = mix.sample(rng_);
      // Appear in the far corridor with a connection well before the
      // meeting, walk the corridor chain to the room around the start,
      // leave after.
      const double appear = rng_.uniform(5.0, 30.0);
      PendingEvent appear_event;
      appear_event.at = SimTime::minutes(appear);
      appear_event.kind = EventKind::kAttendeeAppear;
      appear_event.portable = p;
      appear_event.bandwidth = b;
      schedule_event(appear_event);
      const double arrive =
          config_.meeting_start.to_minutes() + rng_.truncated_normal(-2.0, 3.0, -8.0, 2.0);
      for (std::size_t hop = 1; hop < chain.size(); ++hop) {
        const double at = arrive - double(chain.size() - hop) * 0.7;
        schedule_attendee_handoff(SimTime::minutes(at), p, chain[hop]);
      }
      schedule_attendee_handoff(SimTime::minutes(arrive), p, room_);
      const double leave = config_.meeting_stop.to_minutes() + rng_.uniform(0.0, 5.0);
      schedule_attendee_handoff(SimTime::minutes(leave), p, corridor_);
    }
  }

  void schedule_squatters() {
    // Attempts spread from well before the meeting into the reservation
    // window (T_s - 10 min onward): reservation-aware policies block the
    // late ones; with no reservations they all land.
    for (std::size_t i = 0; i < config_.squatters; ++i) {
      const PortableId p = manager_.add_portable(room_);
      retry_squat(p, rng_.uniform(40.0, config_.meeting_start.to_minutes() - 1.0));
    }
  }

  void retry_squat(PortableId p, double at_minutes) {
    PendingEvent e;
    e.at = SimTime::minutes(at_minutes);
    e.kind = EventKind::kSquatterTry;
    e.portable = p;
    schedule_event(e);
  }

  /// A squatter repeatedly tries to open a bulk connection; once admitted it
  /// holds it for the rest of the day (the adversarial case for the meeting).
  void squat(PortableId p) {
    if (demand_.contains(p.value())) return;
    if (probe_signaling() &&
        directory_.at(room_).admit_new(p, config_.squatter_bandwidth)) {
      demand_[p.value()] = config_.squatter_bandwidth;
      ++result_.squatter_admits;
    } else {
      ++result_.squatter_blocks;
      retry_squat(p, simulator_.now().to_minutes() + 5.0);
    }
    refresh();
  }

  void schedule_roamers() {
    // Light corridor background so profiles have something to aggregate.
    for (int i = 0; i < 6; ++i) {
      const PortableId p = manager_.add_portable(corridor_);
      double t = rng_.uniform(1.0, 10.0);
      for (int hop = 0; hop < 30; ++hop) {
        // Ping-pong along the corridor chain.
        t += rng_.exponential_mean(6.0);
        PendingEvent e;
        e.at = SimTime::minutes(t);
        e.kind = EventKind::kRoamerStep;
        e.portable = p;
        schedule_event(e);
      }
    }
  }

  void roam_step(PortableId p) {
    // Walk one step along the corridor backbone.
    const auto& me = manager_.portable(p);
    for (CellId n : map_.cell(me.current_cell).neighbors) {
      if (map_.cell(n).cell_class == mobility::CellClass::kCorridor) {
        do_handoff(p, n, false);
        break;
      }
    }
  }

  // ---- checkpoint plumbing ----------------------------------------------

  void save_harness(sim::CheckpointWriter& w) const {
    // Config fingerprint: resume must be given the same day.
    w.u8(std::uint8_t(config_.policy));
    w.f64(config_.cell_capacity);
    w.u64(config_.attendees);
    w.u64(config_.squatters);
    w.f64(config_.squatter_bandwidth);
    w.u64(config_.seed);
    w.time(config_.meeting_start);
    w.time(config_.meeting_stop);
    w.boolean(config_.faults.enabled());

    w.rng(rng_.engine());
    w.boolean(probe_.has_value());
    if (probe_) probe_->save_state(w);

    std::vector<std::pair<std::uint32_t, qos::BitsPerSecond>> demand_entries;
    demand_entries.reserve(demand_.size());
    demand_.for_each([&demand_entries](std::uint32_t p, qos::BitsPerSecond b) {
      demand_entries.emplace_back(p, b);
    });
    std::sort(demand_entries.begin(), demand_entries.end());
    w.u64(demand_entries.size());
    for (const auto& [p, b] : demand_entries) {
      w.u32(p);
      w.f64(b);
    }

    w.u64(result_.attendee_drops);
    w.u64(result_.squatter_blocks);
    w.u64(result_.squatter_admits);
    w.u64(result_.other_drops);
    w.u64(result_.handoffs);
    w.f64(result_.room_peak_allocated);

    manager_.save_state(w);
    server_.save_state(w);
    directory_.save_state(w);
    policy_->save_state(w);

    w.u64(next_serial_);
    w.u64(pending_.size());
    for (const PendingEvent& e : pending_) {
      w.u64(e.serial);
      w.time(e.at);
      w.u8(std::uint8_t(e.kind));
      w.u32(e.portable.value());
      w.u32(e.cell.value());
      w.f64(e.bandwidth);
      w.boolean(e.attendee);
    }
  }

  void restore_harness(sim::CheckpointReader& r) {
    const bool config_matches =
        r.u8() == std::uint8_t(config_.policy) && r.f64() == config_.cell_capacity &&
        r.u64() == config_.attendees && r.u64() == config_.squatters &&
        r.f64() == config_.squatter_bandwidth && r.u64() == config_.seed &&
        r.time() == config_.meeting_start && r.time() == config_.meeting_stop &&
        r.boolean() == config_.faults.enabled();
    if (!config_matches) {
      throw sim::CheckpointError("campus: checkpoint was taken with a different config");
    }

    r.rng(rng_.engine());
    if (r.boolean() != probe_.has_value()) {
      throw sim::CheckpointError("campus: checkpoint probe state mismatch");
    }
    if (probe_) probe_->restore_state(r);

    demand_.clear();
    for (std::uint64_t n = r.u64(); n-- > 0;) {
      const std::uint32_t p = r.u32();
      demand_[p] = r.f64();
    }

    result_.attendee_drops = std::size_t(r.u64());
    result_.squatter_blocks = std::size_t(r.u64());
    result_.squatter_admits = std::size_t(r.u64());
    result_.other_drops = std::size_t(r.u64());
    result_.handoffs = std::size_t(r.u64());
    result_.room_peak_allocated = r.f64();

    manager_.restore_state(r);
    server_.restore_state(r);
    directory_.restore_state(r);
    policy_->restore_state(r);

    next_serial_ = r.u64();
    // Re-arm in saved (= original scheduling) order: fresh queue sequence
    // numbers then rise in the same relative order as the originals, so
    // equal-timestamp ties keep breaking identically.
    pending_.clear();
    for (std::uint64_t n = r.u64(); n-- > 0;) {
      PendingEvent e;
      e.serial = r.u64();
      e.at = r.time();
      e.kind = EventKind(r.u8());
      e.portable = PortableId{r.u32()};
      e.cell = CellId{r.u32()};
      e.bandwidth = r.f64();
      e.attendee = r.boolean();
      pending_.push_back(e);
      arm(e);
    }
  }

  /// True when the admission probe got through (or faults are off). A false
  /// return is a timed-out probe: the caller must treat it as a rejection.
  [[nodiscard]] bool probe_signaling() { return !probe_ || probe_->attempt(); }

  CampusDayConfig config_;
  mobility::CellMap map_;
  sim::Simulator simulator_;
  std::optional<fault::UnreliableCall> probe_;
  mobility::MobilityManager manager_;
  profiles::ProfileServer server_;
  prediction::ThreeLevelPredictor predictor_;
  reservation::ReservationDirectory directory_;
  sim::FlatMap<std::uint32_t, qos::BitsPerSecond> demand_;
  std::unique_ptr<reservation::AdvanceReservationPolicy> policy_;
  sim::Rng rng_;
  CellId room_, corridor_, far_corridor_;
  std::unique_ptr<AdaptRuntime> adapt_;  // null unless config_.adapt.enabled
  CampusDayResult result_;
  SimTime horizon_;
  std::vector<PendingEvent> pending_;  // scheduling (= serial) order
  std::uint64_t next_serial_ = 0;
};

}  // namespace

CampusDayResult run_campus_day(const CampusDayConfig& config) {
  return CampusDay(config).run();
}

sim::Checkpoint checkpoint_campus_day(const CampusDayConfig& config, sim::SimTime at) {
  return CampusDay(config).checkpoint(at);
}

CampusDayResult resume_campus_day(const CampusDayConfig& config,
                                  const sim::Checkpoint& checkpoint) {
  return CampusDay(config).resume(checkpoint);
}

CampusSweepResult run_campus_day_sweep(const CampusSweepConfig& config) {
  struct Replication {
    CampusDayResult day;
    obs::Snapshot metrics;
  };
  const sim::ReplicationRunner runner(config.threads);
  const bool profiled = config.profiler != nullptr && config.profiler->enabled();
  std::vector<std::uint64_t> replication_ns;
  const std::vector<Replication> replications =
      runner.run(
          config.replications, config.base_seed,
          [&](std::uint64_t seed, std::size_t) {
            // Each replication collects into its own registry; wall
            // metrics and tracing stay off so every snapshot is a
            // pure function of the seed.
            obs::Registry registry;
            CampusDayConfig day = config.base;
            day.seed = seed;
            day.metrics = &registry;
            day.tracer = nullptr;
            day.wall_metrics = false;
            Replication r;
            r.day = run_campus_day(day);
            r.metrics = registry.snapshot();
            return r;
          },
          profiled ? &replication_ns : nullptr);
  if (profiled) {
    // Fold timings in replication order on the caller's thread — the
    // Profiler is single-threaded by design.
    const obs::PhaseId phase = config.profiler->intern("campus.replication");
    for (const std::uint64_t ns : replication_ns) {
      config.profiler->record(phase, ns);
    }
  }

  // Fold in replication order: byte-identical at any thread count.
  CampusSweepResult sweep;
  sweep.policy = to_string(config.base.policy);
  sweep.replications = replications.size();
  for (const Replication& rep : replications) {
    const CampusDayResult& r = rep.day;
    sweep.attendee_drops += r.attendee_drops;
    sweep.squatter_blocks += r.squatter_blocks;
    sweep.squatter_admits += r.squatter_admits;
    sweep.other_drops += r.other_drops;
    sweep.handoffs += r.handoffs;
    sweep.renegotiations += r.renegotiations;
    sweep.mean_room_peak_allocated += r.room_peak_allocated;
    sweep.max_room_peak_allocated =
        std::max(sweep.max_room_peak_allocated, r.room_peak_allocated);
    sweep.metrics.merge(rep.metrics);
  }
  if (!replications.empty()) {
    sweep.mean_room_peak_allocated /= double(replications.size());
  }
  return sweep;
}

}  // namespace imrm::experiments
