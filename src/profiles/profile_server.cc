#include "profiles/profile_server.h"

#include <utility>

namespace imrm::profiles {

namespace {

// Grows `slots` so index `i` is addressable (still disengaged).
template <typename T>
void ensure_slot(std::vector<std::optional<T>>& slots, std::size_t i) {
  if (i >= slots.size()) slots.resize(i + 1);
}

template <typename T>
const T* slot_get(const std::vector<std::optional<T>>& slots, std::size_t i) {
  if (i >= slots.size() || !slots[i].has_value()) return nullptr;
  return &*slots[i];
}

}  // namespace

void ProfileServer::record_handoff(const mobility::HandoffEvent& event) {
  record_handoff(event.portable, event.prev_of_from, event.from, event.to);
}

void ProfileServer::record_handoff(net::PortableId portable, CellId prev, CellId from,
                                   CellId to) {
  // <portable id, current cell, previous cell, next cell>: the portable was
  // in `from` (having come from `prev`) and handed off to `to`.
  portable_profile_mut(portable).record(prev, from, to);
  // Cell profile of the departed cell: <previous cell, next cell>.
  cell_profile_mut(from).record(prev, to);
  ++traffic_.handoff_updates;    // old BS notifies the server
  ++traffic_.profile_transfers;  // old BS forwards the cached profile
}

const PortableProfile* ProfileServer::portable_profile(net::PortableId id) const {
  return slot_get(portables_, id.value());
}

const CellProfile* ProfileServer::cell_profile(CellId id) const {
  return slot_get(cells_, id.value());
}

PortableProfile& ProfileServer::portable_profile_mut(net::PortableId id) {
  ensure_slot(portables_, id.value());
  auto& slot = portables_[id.value()];
  if (!slot.has_value()) slot.emplace(id, config_.portable_window);
  return *slot;
}

CellProfile& ProfileServer::cell_profile_mut(CellId id) {
  ensure_slot(cells_, id.value());
  auto& slot = cells_[id.value()];
  if (!slot.has_value()) slot.emplace(id, config_.cell_window);
  return *slot;
}

BookingCalendar& ProfileServer::calendar(CellId id) {
  ensure_slot(calendars_, id.value());
  auto& slot = calendars_[id.value()];
  if (!slot.has_value()) slot.emplace();
  return *slot;
}

const BookingCalendar* ProfileServer::calendar_if(CellId id) const {
  return slot_get(calendars_, id.value());
}

std::optional<PortableProfile> ProfileServer::extract_portable(net::PortableId id) {
  if (id.value() >= portables_.size() || !portables_[id.value()].has_value()) {
    return std::nullopt;
  }
  std::optional<PortableProfile> profile = std::move(portables_[id.value()]);
  portables_[id.value()].reset();
  return profile;
}

void ProfileServer::adopt_portable(PortableProfile profile) {
  const net::PortableId id = profile.id();
  ensure_slot(portables_, id.value());
  portables_[id.value()] = std::move(profile);
}

void ProfileServer::refresh_on_static(net::PortableId id) {
  (void)id;
  ++traffic_.refreshes;
}

std::size_t ProfileServer::memory_bytes() const {
  std::size_t total =
      portables_.capacity() * sizeof(std::optional<PortableProfile>) +
      cells_.capacity() * sizeof(std::optional<CellProfile>) +
      calendars_.capacity() * sizeof(std::optional<BookingCalendar>);
  for (const auto& slot : portables_) {
    if (slot.has_value()) total += slot->memory_bytes();
  }
  for (const auto& slot : cells_) {
    if (slot.has_value()) total += slot->memory_bytes();
  }
  return total;
}

void ProfileServer::save_state(sim::CheckpointWriter& w) const {
  std::uint64_t portable_count = 0;
  for (const auto& slot : portables_) portable_count += slot.has_value();
  w.u64(portable_count);
  for (const auto& slot : portables_) {
    if (slot.has_value()) slot->save_state(w);
  }

  std::uint64_t cell_count = 0;
  for (const auto& slot : cells_) cell_count += slot.has_value();
  w.u64(cell_count);
  for (const auto& slot : cells_) {
    if (slot.has_value()) slot->save_state(w);
  }

  w.u64(traffic_.handoff_updates);
  w.u64(traffic_.profile_transfers);
  w.u64(traffic_.refreshes);
}

void ProfileServer::restore_state(sim::CheckpointReader& r) {
  portables_.clear();
  for (std::uint64_t n = r.u64(); n-- > 0;) {
    adopt_portable(PortableProfile::restore_state(r));
  }
  cells_.clear();
  for (std::uint64_t n = r.u64(); n-- > 0;) {
    CellProfile profile = CellProfile::restore_state(r);
    const CellId id = profile.id();
    ensure_slot(cells_, id.value());
    cells_[id.value()] = std::move(profile);
  }
  traffic_.handoff_updates = r.u64();
  traffic_.profile_transfers = r.u64();
  traffic_.refreshes = r.u64();
}

}  // namespace imrm::profiles
