#include "core/network_environment.h"

#include <algorithm>
#include <cassert>

#include "maxmin/bridge.h"

namespace imrm::core {

NetworkEnvironment::NetworkEnvironment(mobility::CellMap map, sim::Simulator& simulator,
                                       BackboneConfig config)
    : map_(std::move(map)), simulator_(&simulator), config_(config),
      mobility_(map_, simulator, config.static_threshold) {
  assert(config_.zones >= 1);
  if (config_.zones > 1) {
    profiles::assign_zones_round_robin(map_, config_.zones);
  }
  universe_.emplace(map_, config_.zones);
  predictor_.emplace(map_, *universe_);
  build_topology();
  network_.emplace(topology_);
  router_.emplace(topology_);
  mobility_.on_handoff([this](const mobility::HandoffEvent& event) {
    universe_->record_handoff(event);
    stats_.profile_migrations = universe_->migrations();
    ++stats_.handoffs;
  });
}

void NetworkEnvironment::build_topology() {
  // Two-level backbone: server - core switch - area switches - base
  // stations - (wireless link) - the cell's radio side.
  server_ = topology_.add_node(net::NodeKind::kHost, "server");
  const net::NodeId core = topology_.add_node(net::NodeKind::kSwitch, "core");
  topology_.add_duplex(server_, core, config_.wired_capacity, config_.wired_buffer);

  constexpr std::size_t kCellsPerArea = 4;
  std::vector<net::NodeId> areas;
  const std::size_t n_areas = (map_.size() + kCellsPerArea - 1) / kCellsPerArea;
  for (std::size_t a = 0; a < n_areas; ++a) {
    const net::NodeId sw =
        topology_.add_node(net::NodeKind::kSwitch, "area-" + std::to_string(a));
    topology_.add_duplex(core, sw, config_.wired_capacity, config_.wired_buffer);
    areas.push_back(sw);
  }

  bs_of_.resize(map_.size());
  air_of_.resize(map_.size());
  wireless_link_of_.resize(map_.size());
  for (const mobility::Cell& cell : map_.cells()) {
    const std::size_t i = cell.id.value();
    const net::NodeId bs =
        topology_.add_node(net::NodeKind::kBaseStation, "bs-" + cell.name);
    topology_.add_duplex(areas[i / kCellsPerArea], bs, config_.wired_capacity,
                         config_.wired_buffer);
    const net::NodeId air = topology_.add_node(net::NodeKind::kHost, "air-" + cell.name);
    const net::LinkId down =
        topology_.add_duplex(bs, air, config_.wireless_capacity, config_.wireless_buffer,
                             config_.wireless_error_prob, /*wireless=*/true);
    bs_of_[i] = bs;
    air_of_[i] = air;
    wireless_link_of_[i] = down;
  }
}

std::optional<net::Route> NetworkEnvironment::route_for(CellId cell,
                                                        Direction direction) const {
  return direction == Direction::kDownlink
             ? router_->shortest_path(server_, air_of_.at(cell.value()))
             : router_->shortest_path(air_of_.at(cell.value()), server_);
}

PortableId NetworkEnvironment::add_portable(CellId start,
                                            std::optional<CellId> home_office) {
  const PortableId id = mobility_.add_portable(start);
  if (home_office.has_value()) {
    mobility_.portable(id).home_office = home_office;
    map_.add_occupant(*home_office, id);
  }
  return id;
}

bool NetworkEnvironment::open_connection(PortableId portable,
                                         const qos::QosRequest& request,
                                         Direction direction) {
  assert(!sessions_.contains(portable));
  const CellId cell = mobility_.portable(portable).current_cell;
  const auto route = route_for(cell, direction);
  if (!route) {
    ++stats_.connections_blocked;
    return false;
  }
  const net::NodeId src = direction == Direction::kDownlink ? server_
                                                            : air_of_[cell.value()];
  const net::NodeId dst = direction == Direction::kDownlink ? air_of_[cell.value()]
                                                            : server_;
  auto admitted = network_->admit(src, dst, *route, request,
                                  mobility_.classify(portable), config_.scheduler);
  if (!admitted) {
    // Conflict resolution (Section 5.2): squeeze static portables'
    // connections back toward their minima and retry once.
    adapt();
    admitted = network_->admit(src, dst, *route, request,
                               mobility_.classify(portable), config_.scheduler);
  }
  if (!admitted) {
    ++stats_.connections_blocked;
    return false;
  }
  Session session;
  session.connection = *admitted;
  session.request = request;
  session.direction = direction;
  sessions_.emplace(portable, std::move(session));
  ++stats_.connections_opened;

  Session& stored = sessions_.at(portable);
  if (mobility_.classify(portable) == qos::MobilityClass::kMobile) {
    place_advance_reservation(portable, stored);
  }
  rebuild_multicast(portable, stored);
  adapt();
  return true;
}

void NetworkEnvironment::teardown_session(PortableId portable, Session& session) {
  if (session.connection.is_valid()) {
    network_->teardown(session.connection);
    session.connection = net::ConnectionId::invalid();
  }
  net::teardown_multicast(*network_, session.multicast);
  cancel_advance_reservation(portable, session);
}

void NetworkEnvironment::close_connection(PortableId portable) {
  const auto it = sessions_.find(portable);
  assert(it != sessions_.end());
  teardown_session(portable, it->second);
  sessions_.erase(it);
  adapt();
}

bool NetworkEnvironment::handoff(PortableId portable, CellId to) {
  const auto it = sessions_.find(portable);
  if (it == sessions_.end()) {
    mobility_.move(portable, to);
    return true;
  }
  Session& session = it->second;

  // Was the multicast branch to the new base station warm?
  const net::NodeId new_bs = bs_of_[to.value()];
  for (const net::MulticastBranch& branch : session.multicast.branches) {
    if (branch.target_base_station == new_bs && branch.admitted) {
      ++stats_.warm_handoffs;
      break;
    }
  }

  // Tear the old path down and move; the advance reservation in the target
  // cell (if any) stays until admission consumes it.
  const bool predicted_here = session.reserved_in == to;
  if (session.connection.is_valid()) {
    network_->teardown(session.connection);
    session.connection = net::ConnectionId::invalid();
  }
  net::teardown_multicast(*network_, session.multicast);
  mobility_.move(portable, to);

  const auto route = route_for(to, session.direction);
  const net::NodeId src = session.direction == Direction::kDownlink
                              ? server_ : air_of_[to.value()];
  const net::NodeId dst = session.direction == Direction::kDownlink
                              ? air_of_[to.value()] : server_;
  auto admitted =
      route ? network_->admit(src, dst, *route, session.request,
                              qos::MobilityClass::kMobile, config_.scheduler, 0.0,
                              qos::ConnectionKind::kHandoff)
            : std::nullopt;
  if (!admitted && route) {
    adapt();  // squeeze and retry
    admitted = network_->admit(src, dst, *route, session.request,
                               qos::MobilityClass::kMobile, config_.scheduler, 0.0,
                               qos::ConnectionKind::kHandoff);
  }

  if (predicted_here) {
    // The admission consumed (or the failure wasted) the reservation.
    session.reserved_in = CellId::invalid();
    if (admitted) ++stats_.reservations_consumed;
  } else {
    cancel_advance_reservation(portable, session);
  }

  // Signaling latency (footnote 5): with the reservation in place only the
  // local base station exchange is needed; otherwise the admission control
  // packet makes a full round trip over the new path.
  if (route) {
    const double hop = config_.signaling_hop_latency.to_seconds();
    if (predicted_here) {
      stats_.total_handoff_latency_s += 2.0 * hop;
      ++stats_.local_handoffs;
    } else {
      stats_.total_handoff_latency_s += 2.0 * hop * double(route->size());
      ++stats_.e2e_handoffs;
    }
  }

  if (!admitted) {
    ++stats_.handoff_drops;
    sessions_.erase(it);
    adapt();
    return false;
  }
  session.connection = *admitted;
  place_advance_reservation(portable, session);
  rebuild_multicast(portable, session);
  adapt();
  return true;
}

void NetworkEnvironment::place_advance_reservation(PortableId portable, Session& session) {
  cancel_advance_reservation(portable, session);
  const prediction::Prediction p = predictor_->predict(mobility_.portable(portable));
  if (!p.next_cell.has_value()) return;
  network_->link(wireless_link_of_[p.next_cell->value()])
      .reserve_advance(session.request.bandwidth.b_min);
  session.reserved_in = *p.next_cell;
  ++stats_.reservations_placed;
}

void NetworkEnvironment::cancel_advance_reservation(PortableId portable, Session& session) {
  (void)portable;
  if (!session.reserved_in.is_valid()) return;
  network_->link(wireless_link_of_[session.reserved_in.value()])
      .release_advance(session.request.bandwidth.b_min);
  session.reserved_in = CellId::invalid();
}

void NetworkEnvironment::rebuild_multicast(PortableId portable, Session& session) {
  net::teardown_multicast(*network_, session.multicast);
  session.multicast = net::MulticastTree{};
  if (!config_.enable_multicast) return;
  const CellId cell = mobility_.portable(portable).current_cell;
  std::vector<net::NodeId> neighbor_bs;
  for (CellId n : map_.cell(cell).neighbors) {
    neighbor_bs.push_back(bs_of_[n.value()]);
  }
  session.multicast = net::setup_neighbor_multicast(*network_, *router_, server_,
                                                    neighbor_bs, session.request,
                                                    config_.scheduler);
  stats_.multicast_branches_admitted += session.multicast.admitted_count();
  stats_.multicast_branches_rejected +=
      session.multicast.branches.size() - session.multicast.admitted_count();
}

void NetworkEnvironment::adapt() {
  // Refresh static/mobile classes on the live connections (portables that
  // sat still past T_th join the adaptable set), then solve max-min.
  for (auto& [portable, session] : sessions_) {
    if (!session.connection.is_valid()) continue;
    network_->set_mobility(session.connection, mobility_.classify(portable));
  }
  maxmin::resolve_conflicts(*network_, /*static_only=*/true);
  ++stats_.conflict_resolutions;
}

bool NetworkEnvironment::renegotiate(PortableId portable, const qos::QosRequest& request) {
  const auto it = sessions_.find(portable);
  assert(it != sessions_.end());
  Session& session = it->second;
  const CellId cell = mobility_.portable(portable).current_cell;
  const auto route = route_for(cell, session.direction);
  if (!route) return false;

  // Treated as a new connection request: release the old reservation first,
  // then admit the new one; on failure restore the old connection.
  const qos::QosRequest old_request = session.request;
  network_->teardown(session.connection);
  session.connection = net::ConnectionId::invalid();

  const net::NodeId src = session.direction == Direction::kDownlink
                              ? server_ : air_of_[cell.value()];
  const net::NodeId dst = session.direction == Direction::kDownlink
                              ? air_of_[cell.value()] : server_;
  auto admitted = network_->admit(src, dst, *route, request,
                                  mobility_.classify(portable), config_.scheduler);
  if (admitted) {
    session.connection = *admitted;
    session.request = request;
    rebuild_multicast(portable, session);
    adapt();
    return true;
  }
  // Roll back: the old request fit before the teardown, so it fits now.
  auto restored = network_->admit(src, dst, *route, old_request,
                                  mobility_.classify(portable), config_.scheduler);
  assert(restored.has_value());
  session.connection = *restored;
  return false;
}

qos::BitsPerSecond NetworkEnvironment::allocated(PortableId portable) const {
  const auto it = sessions_.find(portable);
  if (it == sessions_.end() || !it->second.connection.is_valid()) return 0.0;
  return network_->connection(it->second.connection).allocated;
}

}  // namespace imrm::core
