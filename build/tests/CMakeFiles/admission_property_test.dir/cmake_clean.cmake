file(REMOVE_RECURSE
  "CMakeFiles/admission_property_test.dir/admission_property_test.cc.o"
  "CMakeFiles/admission_property_test.dir/admission_property_test.cc.o.d"
  "admission_property_test"
  "admission_property_test.pdb"
  "admission_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admission_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
