// Console table / CSV emitters for benchmark output.
//
// Every bench binary reproduces a table or figure from the paper; these
// helpers render the rows in a stable, diff-friendly format.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace imrm::stats {

class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  /// Appends a row; cells are already-formatted strings.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  void add_row_numeric(std::initializer_list<double> values, int precision = 4);

  /// Pretty-prints with aligned columns and a header rule.
  void print(std::ostream& os) const;

  /// Emits comma-separated values (header row first).
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& row(std::size_t i) const { return rows_.at(i); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders a horizontal ASCII bar chart of a series — used to eyeball the
/// figure shapes (handoff spikes, Pd-vs-Pb curves) directly in bench output.
void print_ascii_bars(std::ostream& os, const std::vector<double>& values,
                      const std::vector<std::string>& labels, int max_width = 60);

/// Formats a double with fixed precision (helper for Table rows).
[[nodiscard]] std::string fmt(double v, int precision = 4);

}  // namespace imrm::stats
