// Per-cell wireless bandwidth accounting for advance reservation (Section
// 3.3's reservation model).
//
// A cell's capacity is consumed by (a) ongoing connections (allocated), (b)
// portable-specific advance reservations made for predicted handoffs, and
// (c) anonymous reservations: the dynamically adjustable pool B_dyn plus
// aggregate reservations that are not tied to one portable.
//
// Admission semantics:
//  - a NEW connection must fit under capacity minus everything reserved,
//  - a HANDOFF may consume the reservation made for its portable and may
//    draw from the anonymous pool, but never from reservations made for
//    other portables.
#pragma once

#include <cstdint>

#include "net/ids.h"
#include "qos/flow_spec.h"
#include "sim/checkpoint.h"
#include "sim/flat_map.h"

namespace imrm::obs {
class Counter;
class Histogram;
}  // namespace imrm::obs

namespace imrm::reservation {

using net::CellId;
using net::PortableId;

class CellBandwidth {
 public:
  /// Shared instrument set for admission telemetry. One Telemetry is
  /// typically owned by the ReservationDirectory and shared by every cell,
  /// so the counters aggregate across the whole coverage area. All pointers
  /// optional; a default-constructed Telemetry records nothing.
  struct Telemetry {
    obs::Counter* new_admitted = nullptr;
    obs::Counter* new_blocked = nullptr;
    obs::Counter* handoff_admitted = nullptr;
    obs::Counter* handoff_dropped = nullptr;
    obs::Counter* reservation_hits = nullptr;    // handoff found own reservation
    obs::Counter* reservation_misses = nullptr;  // handoff arrived unreserved
    obs::Histogram* reservation_coverage = nullptr;  // min(own / b, 1) per handoff
  };

  CellBandwidth() = default;
  explicit CellBandwidth(qos::BitsPerSecond capacity) : capacity_(capacity) {}

  /// Attaches admission telemetry; `t` must outlive this cell (or the next
  /// set_telemetry call). Pass nullptr to detach.
  void set_telemetry(const Telemetry* t) { telemetry_ = t; }

  // ---- admission -------------------------------------------------------
  /// Admits a new connection of `b` for `portable` if it fits under the
  /// capacity net of all reservations. Returns success.
  bool admit_new(PortableId portable, qos::BitsPerSecond b);

  /// Admits a handoff: the portable's own reservation is released (used up)
  /// and the anonymous pool may cover any shortfall. Returns success; on
  /// failure the portable's reservation is still released (the portable has
  /// arrived; the stale reservation must not linger).
  bool admit_handoff(PortableId portable, qos::BitsPerSecond b);

  /// Releases an ongoing connection's bandwidth (departure or teardown).
  void release(PortableId portable);

  /// Re-points an admitted connection's allocation (QoS adaptation within
  /// the negotiated bounds). The caller guarantees the new total fits.
  void set_allocation(PortableId portable, qos::BitsPerSecond b);

  // ---- reservations ------------------------------------------------------
  /// Advance-reserves `b` for a specific portable (replaces any previous
  /// reservation for it).
  void reserve_for(PortableId portable, qos::BitsPerSecond b);
  void cancel_reservation(PortableId portable);

  /// Sets the anonymous reservation level (aggregate policies and the B_dyn
  /// pool are both expressed this way).
  void set_anonymous_reservation(qos::BitsPerSecond b);
  /// Adds to the anonymous reservation (several policies contributing to
  /// one cell within a refresh cycle).
  void add_anonymous_reservation(qos::BitsPerSecond b);

  /// Drops every portable-specific reservation (used by policies that
  /// recompute their reservation picture from scratch).
  void clear_specific_reservations();

  // ---- introspection -----------------------------------------------------
  [[nodiscard]] qos::BitsPerSecond capacity() const { return capacity_; }
  [[nodiscard]] qos::BitsPerSecond allocated() const { return allocated_; }
  [[nodiscard]] qos::BitsPerSecond reserved_total() const {
    return reserved_specific_total_ + anonymous_reserved_;
  }
  [[nodiscard]] qos::BitsPerSecond anonymous_reservation() const {
    return anonymous_reserved_;
  }
  [[nodiscard]] qos::BitsPerSecond reservation_for(PortableId portable) const;
  [[nodiscard]] std::size_t active_connections() const { return connections_.size(); }
  [[nodiscard]] bool has_connection(PortableId portable) const {
    return connections_.contains(portable.value());
  }

  /// Estimated heap footprint of the per-portable tables in bytes.
  [[nodiscard]] std::size_t memory_bytes() const {
    return reserved_for_.memory_bytes() + connections_.memory_bytes();
  }

  /// Capacity available to a brand-new connection right now.
  [[nodiscard]] qos::BitsPerSecond free_for_new() const {
    return capacity_ - allocated_ - reserved_total();
  }

  /// Time-integral bookkeeping hook: wasted = reserved but never used.
  [[nodiscard]] qos::BitsPerSecond utilization_fraction() const {
    return capacity_ > 0.0 ? allocated_ / capacity_ : 0.0;
  }

  // --- checkpoint/restore (ISSUE 4): the whole account (capacity, running
  // totals, per-portable reservation/connection maps, sorted by portable so
  // the bytes are iteration-order independent). Telemetry pointers are
  // rebound by the owner.
  void save_state(sim::CheckpointWriter& w) const;
  void restore_state(sim::CheckpointReader& r);

 private:
  // Open-addressing tables keyed on PortableId::value(): the admission path
  // (admit/release/reserve) is the hot loop at campus scale, and the flat
  // layout keeps each probe inside one cache line instead of a heap node.
  using PortableMap = sim::FlatMap<std::uint32_t, qos::BitsPerSecond>;

  qos::BitsPerSecond capacity_ = 0.0;
  qos::BitsPerSecond allocated_ = 0.0;
  qos::BitsPerSecond anonymous_reserved_ = 0.0;
  qos::BitsPerSecond reserved_specific_total_ = 0.0;
  PortableMap reserved_for_;
  PortableMap connections_;
  const Telemetry* telemetry_ = nullptr;
};

}  // namespace imrm::reservation
