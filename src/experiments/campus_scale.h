// Campus-at-scale harness (ISSUE 6 tentpole): a grid campus of N cells and
// M portables driven through class-schedule workloads, built to measure how
// the SoA/arena data layout scales — events/s and bytes-per-portable at up
// to 1000 cells x 100k portables.
//
// Two engines run the SAME deterministic workload through the SAME admission
// order (movers sorted by (destination cell, portable id) each tick):
//
//   kSoa   — the shipping layout: dense id-indexed arrays, per-cell resident
//            counts maintained in O(1), batched per-destination-cell handoff
//            groups, predictor/profile lookups on the admission path served
//            from cache-resident flat tables. A mobility tick costs
//            O(active movers).
//   kNaive — the pre-SoA access pattern, kept as an honest baseline: every
//            mover re-derives destination occupancy by scanning the full
//            portable roster (O(M)) and re-derives the busy-cell picture by
//            sweeping every cell account (O(N)), the way map-based policy
//            refresh used to.
//
// Both engines fold the same integer observations (occupancy before
// admission, admission outcome, busy-cell count) into `outcome_hash`, so a
// test can assert the layouts are behaviorally identical while the clock
// shows the complexity gap.
// A third front end, run_campus_scale_sharded (ISSUE 10), executes the same
// generated workload as one sim::ShardedRunner domain per cell: milestones
// fire in per-cell tick handlers, walkers travel as boundary messages with
// one-tick latency, and admission/reservation state is cell-local. It is its
// own oracle — byte-identical across any shard/batch count (the runner's
// contract), but deliberately NOT decision-identical with the monolithic
// engines: global state the monolith consults on the admission path (the
// ThreeLevelPredictor, the busy-cell census) has no partition-invariant
// cell-local equivalent, so the sharded engine reserves along the walking
// route instead of along predicted mobility (see DESIGN.md).
#pragma once

#include <cstddef>
#include <cstdint>

#include "mobility/floorplan.h"
#include "obs/profiler.h"
#include "sim/time.h"

namespace imrm::obs {
class Registry;
class ProgressMeter;
class Tracer;
}  // namespace imrm::obs

namespace imrm::experiments {

enum class ScaleEngine { kNaive, kSoa };

struct CampusScaleConfig {
  std::size_t cells = 100;
  std::size_t portables = 1000;
  sim::Duration duration = sim::Duration::seconds(3600);
  /// Scheduler tick; a walking portable advances one cell per tick.
  sim::Duration tick = sim::Duration::seconds(5);
  double cell_capacity_bps = 1.6e6;
  std::uint64_t seed = 5;
  ScaleEngine engine = ScaleEngine::kSoa;
  /// Optional metric registry: scale.* counters, resv.* admission telemetry,
  /// scale.bytes_* gauges, and the sim.time_seconds / sim.events_fired pair
  /// the CLI report reads.
  obs::Registry* metrics = nullptr;
  /// Optional wall-clock attribution (ISSUE 7): the tick loop is split into
  /// scale.mobility / scale.admission / scale.prediction / scale.reservation
  /// phases recorded once per run. Observation-only — decisions, the outcome
  /// hash, and all metrics are identical with profiling on or off.
  obs::Profiler* profiler = nullptr;
  /// Optional stderr heartbeat, polled once per tick (the sharded engine
  /// polls once per coordinator dispatch, with straggler attribution).
  obs::ProgressMeter* progress = nullptr;
  /// Sharded-engine knobs (run_campus_scale_sharded only; the monolithic
  /// engines ignore all three). `shards` is the worker-thread count —
  /// execution only, results are byte-identical for any value. `batch` is
  /// windows per coordinator dispatch (0 = adaptive), equally result-
  /// invariant. `tracer` receives the runner's wall lanes when profiling.
  std::size_t shards = 1;
  std::size_t batch = 0;
  obs::Tracer* tracer = nullptr;
};

struct CampusScaleResult {
  std::uint64_t events = 0;  // milestones fired + handoffs processed
  std::uint64_t ticks = 0;
  std::uint64_t handoffs = 0;
  std::uint64_t new_admitted = 0;
  std::uint64_t new_blocked = 0;
  std::uint64_t handoff_admitted = 0;
  std::uint64_t handoff_dropped = 0;
  std::uint64_t reservations_placed = 0;
  std::uint64_t departures = 0;
  /// Heap footprint of all live state (directory, profiles, classifier
  /// observations, SoA arrays, milestone arena, scheduler buckets).
  std::size_t state_bytes = 0;
  double bytes_per_portable = 0.0;
  /// Order-sensitive digest of every admission decision; equal across
  /// engines iff they made identical decisions in identical order. (The
  /// sharded engine folds per-cell digests in cell order — comparable across
  /// shard/batch counts, not with the monolithic engines.)
  std::uint64_t outcome_hash = 0;
  /// Sharded-engine execution totals (zero for the monolithic engines).
  /// `windows` and `boundary_messages` are batch/shard-invariant;
  /// `dispatches` is a pure execution statistic (varies with `batch` and the
  /// adaptive controller) and must never feed golden outputs.
  std::uint64_t windows = 0;
  std::uint64_t dispatches = 0;
  std::uint64_t boundary_messages = 0;
  /// Wall-clock attribution (sharded engine, only when config.profiler was
  /// enabled): shard lanes, dispatch/window histograms. Quarantined from
  /// `outcome_hash` and the metric counters.
  obs::ProfileSnapshot profile;
};

/// Builds the grid floorplan the scale harness runs on: side = ceil(sqrt(N))
/// columns, every third row a corridor (horizontal edges on row 0 only, the
/// backbone), other rows offices/meeting rooms/cafeterias, vertical edges
/// everywhere. Deterministic; exposed for tests.
[[nodiscard]] mobility::CellMap scale_grid_floorplan(std::size_t cells);

[[nodiscard]] CampusScaleResult run_campus_scale(const CampusScaleConfig& config);

/// The grid campus executed through sim::ShardedRunner: one domain per cell
/// (the runner's contiguous worker-block assignment is the cell→shard
/// partitioner), window = config.tick, every cross-cell interaction — a
/// walking portable, an advance reservation, a stale-reservation cancel — a
/// boundary message with one-tick latency. config.engine must be kSoa
/// (kNaive's whole-roster rescans are meaningless without global state; the
/// CLI rejects the combination). Deterministic and byte-identical for any
/// (shards, batch); config.metrics additionally receives the runner's
/// shard.windows / shard.boundary_messages counters.
[[nodiscard]] CampusScaleResult run_campus_scale_sharded(
    const CampusScaleConfig& config);

}  // namespace imrm::experiments
