// The locational hierarchy of Section 3.4.1: cell -> neighborhood -> zone
// -> universe, with one profile server per zone.
//
// Each zone's server holds the cell profiles of its cells and the portable
// profiles of the portables currently in the zone. When a portable hands
// off across a zone boundary its profile migrates to the new zone's server
// (the old base station forwards the cached profile; the servers
// synchronize) — the Universe tracks that residency and counts the
// migration traffic.
#pragma once

#include <unordered_map>
#include <vector>

#include "mobility/floorplan.h"
#include "mobility/manager.h"
#include "profiles/profile_server.h"
#include "profiles/profile_source.h"

namespace imrm::profiles {

class Universe final : public ProfileSource {
 public:
  /// `zone_count` servers; cells carry their zone in Cell::zone.
  Universe(const mobility::CellMap& map, std::size_t zone_count);

  /// Routes a handoff to the owning servers: the cell profile update goes
  /// to the zone of the departed cell; the portable profile follows the
  /// portable (migrating between servers on zone crossings).
  void record_handoff(const mobility::HandoffEvent& event);

  [[nodiscard]] ProfileServer& server(net::ZoneId zone) {
    return servers_.at(zone.value());
  }
  [[nodiscard]] const ProfileServer& server(net::ZoneId zone) const {
    return servers_.at(zone.value());
  }
  [[nodiscard]] ProfileServer& server_for_cell(net::CellId cell) {
    return servers_.at(map_->cell(cell).zone.value());
  }
  [[nodiscard]] std::size_t zone_count() const { return servers_.size(); }

  /// The zone currently hosting a portable's profile (invalid if never seen).
  [[nodiscard]] net::ZoneId residence(net::PortableId portable) const;

  [[nodiscard]] std::size_t migrations() const { return migrations_; }

  /// Looks the portable profile up wherever it currently resides.
  [[nodiscard]] const PortableProfile* portable_profile(
      net::PortableId portable) const override;
  /// Looks the cell profile up in the cell's owning zone.
  [[nodiscard]] const CellProfile* cell_profile(net::CellId cell) const override;

 private:
  const mobility::CellMap* map_;
  std::vector<ProfileServer> servers_;
  std::unordered_map<net::PortableId, net::ZoneId> residence_;
  std::size_t migrations_ = 0;
};

/// Partitions a cell map into `zones` zones of contiguous cell ids (a
/// convenience for tests and benches; real deployments would partition
/// geographically).
void assign_zones_round_robin(mobility::CellMap& map, std::size_t zones);

}  // namespace imrm::profiles
