#include "net/routing.h"

#include <cassert>
#include <limits>
#include <queue>

namespace imrm::net {

namespace {

struct QueueItem {
  double dist;
  NodeId node;
  bool operator<(const QueueItem& rhs) const { return dist > rhs.dist; }  // min-heap
};

}  // namespace

std::vector<std::optional<Route>> Router::shortest_paths_from(NodeId src) const {
  const std::size_t n = topology_->node_count();
  assert(src.value() < n);

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(n, kInf);
  std::vector<LinkId> via(n, LinkId::invalid());
  std::vector<bool> done(n, false);

  std::priority_queue<QueueItem> heap;
  dist[src.value()] = 0.0;
  heap.push({0.0, src});

  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (done[u.value()]) continue;
    done[u.value()] = true;
    for (LinkId lid : topology_->out_links(u)) {
      const Link& link = topology_->link(lid);
      const double w = weight_(link);
      assert(w >= 0.0);
      const double nd = d + w;
      if (nd < dist[link.to.value()]) {
        dist[link.to.value()] = nd;
        via[link.to.value()] = lid;
        heap.push({nd, link.to});
      }
    }
  }

  std::vector<std::optional<Route>> routes(n);
  for (std::size_t v = 0; v < n; ++v) {
    if (dist[v] == kInf) continue;
    Route path;
    for (NodeId cur{static_cast<NodeId::underlying>(v)}; cur != src;) {
      const LinkId lid = via[cur.value()];
      path.push_back(lid);
      cur = topology_->link(lid).from;
    }
    std::reverse(path.begin(), path.end());
    routes[v] = std::move(path);
  }
  return routes;
}

std::optional<Route> Router::shortest_path(NodeId src, NodeId dst) const {
  // Single-destination query; runs the full Dijkstra (topologies here are
  // small) and extracts one entry.
  auto all = shortest_paths_from(src);
  return std::move(all.at(dst.value()));
}

std::vector<NodeId> route_nodes(const Topology& topology, const Route& route) {
  std::vector<NodeId> nodes;
  if (route.empty()) return nodes;
  nodes.push_back(topology.link(route.front()).from);
  for (LinkId lid : route) {
    assert(topology.link(lid).from == nodes.back() && "route links must chain");
    nodes.push_back(topology.link(lid).to);
  }
  return nodes;
}

}  // namespace imrm::net
