#include "prediction/cell_classifier.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>

namespace imrm::prediction {

void CellObservations::bump(sim::SimTime t) {
  const auto slot = std::size_t(std::max(t.to_seconds(), 0.0) / slot_.to_seconds());
  if (slot >= activity_.size()) activity_.resize(slot + 1, 0.0);
  activity_[slot] += 1.0;
}

void CellObservations::record_entry(net::PortableId portable, sim::SimTime t) {
  bump(t);
  ++total_visits_;
  ++visits_by_user_[portable.value()];
  entered_at_[portable.value()] = t;
}

void CellObservations::record_exit(net::PortableId portable, sim::SimTime t,
                                   bool pass_through) {
  bump(t);
  ++exits_;
  if (pass_through) ++pass_throughs_;
  const sim::SimTime* entered = entered_at_.find(portable.value());
  if (entered != nullptr) {
    dwell_sum_ += (t - *entered).to_seconds();
    ++dwell_count_;
    entered_at_.erase(portable.value());
  }
}

void CellObservations::record_final_departure(net::PortableId portable) {
  const std::size_t* visits = visits_by_user_.find(portable.value());
  if (visits == nullptr) return;
  // Keep the largest kDepartedTopK departed counts: enough to answer
  // regular_fraction(k <= kDepartedTopK) exactly, O(1) memory regardless of
  // how many portables pass through over a long run.
  departed_top_.insert(
      std::upper_bound(departed_top_.begin(), departed_top_.end(), *visits,
                       std::greater<>()),
      *visits);
  if (departed_top_.size() > kDepartedTopK) departed_top_.pop_back();
  ++departed_users_;
  visits_by_user_.erase(portable.value());
  entered_at_.erase(portable.value());
}

double CellObservations::mean_dwell_seconds() const {
  return dwell_count_ ? dwell_sum_ / double(dwell_count_) : 0.0;
}

double CellObservations::pass_through_fraction() const {
  return exits_ ? double(pass_throughs_) / double(exits_) : 0.0;
}

double CellObservations::regular_fraction(std::size_t k) const {
  if (total_visits_ == 0) return 0.0;
  std::vector<std::size_t> counts;
  counts.reserve(visits_by_user_.size() + departed_top_.size());
  visits_by_user_.for_each(
      [&counts](std::uint32_t, std::size_t visits) { counts.push_back(visits); });
  counts.insert(counts.end(), departed_top_.begin(), departed_top_.end());
  std::sort(counts.rbegin(), counts.rend());
  std::size_t top = 0;
  for (std::size_t i = 0; i < std::min(k, counts.size()); ++i) top += counts[i];
  return double(top) / double(total_visits_);
}

double CellObservations::peak_to_mean() const {
  if (activity_.empty()) return 0.0;
  const double total = std::accumulate(activity_.begin(), activity_.end(), 0.0);
  if (total <= 0.0) return 0.0;
  const double mean = total / double(activity_.size());
  const double peak = *std::max_element(activity_.begin(), activity_.end());
  return peak / mean;
}

double CellObservations::roughness() const {
  if (activity_.size() < 2) return 0.0;
  const double total = std::accumulate(activity_.begin(), activity_.end(), 0.0);
  if (total <= 0.0) return 0.0;
  const double mean = total / double(activity_.size());
  double steps = 0.0;
  for (std::size_t i = 1; i < activity_.size(); ++i) {
    steps += std::abs(activity_[i] - activity_[i - 1]);
  }
  return steps / double(activity_.size() - 1) / mean;
}

double CellObservations::duty_cycle() const {
  if (activity_.empty()) return 0.0;
  const auto busy = std::count_if(activity_.begin(), activity_.end(),
                                  [](double v) { return v > 0.0; });
  return double(busy) / double(activity_.size());
}

namespace {

/// Smooth indicator: 0 below `lo`, 1 above `hi`, linear ramp in between.
double above(double x, double lo, double hi) {
  if (x <= lo) return 0.0;
  if (x >= hi) return 1.0;
  return (x - lo) / (hi - lo);
}
double below(double x, double lo, double hi) { return 1.0 - above(x, lo, hi); }

}  // namespace

Classification classify_cell(const CellObservations& obs, std::size_t min_visits) {
  using mobility::CellClass;
  Classification out;
  if (obs.total_visits() < min_visits) {
    out.cell_class = CellClass::kLounge;
    out.scores[CellClass::kLounge] = 0.0;
    return out;
  }

  const double dwell_min = obs.mean_dwell_seconds() / 60.0;
  const double pass = obs.pass_through_fraction();
  const double reg = obs.regular_fraction();
  const double users = double(obs.distinct_users());
  const double p2m = obs.peak_to_mean();
  const double rough = obs.roughness();
  const double duty = obs.duty_cycle();

  auto& scores = out.scores;

  // Corridor: visitors flow through quickly, exiting toward a new neighbor.
  scores[CellClass::kCorridor] = below(dwell_min, 1.0, 4.0) * above(pass, 0.3, 0.7);

  // Office: long stays by a small set of regulars.
  scores[CellClass::kOffice] = above(dwell_min, 10.0, 40.0) * above(reg, 0.5, 0.9) *
                               below(users, 4.0, 16.0);

  // Meeting room: long stays by a *crowd* that arrives and leaves together —
  // bursty activity with long quiet stretches.
  scores[CellClass::kMeetingRoom] = above(dwell_min, 10.0, 40.0) *
                                    below(reg, 0.3, 0.8) * above(p2m, 2.5, 6.0) *
                                    below(duty, 0.25, 0.6);

  // Cafeteria: sustained, smoothly varying traffic from many users.
  scores[CellClass::kCafeteria] = below(rough, 0.4, 1.2) * above(duty, 0.3, 0.7) *
                                  below(reg, 0.3, 0.8) *
                                  above(dwell_min, 2.0, 10.0) * below(dwell_min, 20.0, 60.0);

  // Default lounge: whatever shows no clear signature. Baseline plus a bonus
  // for genuinely erratic activity.
  const double best_other = std::max({scores[CellClass::kCorridor],
                                      scores[CellClass::kOffice],
                                      scores[CellClass::kMeetingRoom],
                                      scores[CellClass::kCafeteria]});
  scores[CellClass::kLounge] =
      std::max(0.15, (1.0 - best_other) * 0.5 * above(rough, 0.5, 1.5));

  out.cell_class = CellClass::kLounge;
  double best = scores[CellClass::kLounge];
  for (const auto& [cls, score] : scores) {
    if (score > best) {
      best = score;
      out.cell_class = cls;
    }
  }
  return out;
}

}  // namespace imrm::prediction
