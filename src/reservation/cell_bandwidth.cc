#include "reservation/cell_bandwidth.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "obs/metrics.h"

namespace {

void bump(imrm::obs::Counter* c) {
  if (c) c->add();
}

}  // namespace

namespace imrm::reservation {

bool CellBandwidth::admit_new(PortableId portable, qos::BitsPerSecond b) {
  assert(b > 0.0);
  assert(!connections_.contains(portable.value()));
  if (b > free_for_new() + 1e-9) {
    if (telemetry_) bump(telemetry_->new_blocked);
    return false;
  }
  connections_.insert(portable.value(), b);
  allocated_ += b;
  if (telemetry_) bump(telemetry_->new_admitted);
  return true;
}

bool CellBandwidth::admit_handoff(PortableId portable, qos::BitsPerSecond b) {
  assert(b > 0.0);
  assert(!connections_.contains(portable.value()));
  // The portable's own reservation is consumed by its arrival either way.
  const qos::BitsPerSecond own = reservation_for(portable);
  cancel_reservation(portable);
  if (telemetry_) {
    bump(own > 0.0 ? telemetry_->reservation_hits : telemetry_->reservation_misses);
    if (telemetry_->reservation_coverage) {
      telemetry_->reservation_coverage->record(std::min(own / b, 1.0));
    }
  }

  // Others' specific reservations stay untouchable; the anonymous pool is
  // exactly the instrument meant to absorb handoffs (Section 4.3).
  const qos::BitsPerSecond blocked = reserved_specific_total_;
  const qos::BitsPerSecond free = capacity_ - allocated_ - blocked;
  (void)own;  // own reservation already excluded from reserved_specific_total_
  if (b > free + 1e-9) {
    if (telemetry_) bump(telemetry_->handoff_dropped);
    return false;
  }
  // Consume anonymous pool before bare capacity so the pool reflects how
  // much "unforeseen event" headroom remains.
  const qos::BitsPerSecond from_pool = std::min(anonymous_reserved_, b);
  anonymous_reserved_ -= from_pool;
  connections_.insert(portable.value(), b);
  allocated_ += b;
  if (telemetry_) bump(telemetry_->handoff_admitted);
  return true;
}

void CellBandwidth::release(PortableId portable) {
  qos::BitsPerSecond* b = connections_.find(portable.value());
  assert(b != nullptr);
  allocated_ -= *b;
  if (allocated_ < 0.0) allocated_ = 0.0;
  connections_.erase(portable.value());
}

void CellBandwidth::set_allocation(PortableId portable, qos::BitsPerSecond b) {
  assert(b > 0.0);
  qos::BitsPerSecond* cur = connections_.find(portable.value());
  assert(cur != nullptr);
  allocated_ += b - *cur;
  if (allocated_ < 0.0) allocated_ = 0.0;
  *cur = b;
}

void CellBandwidth::reserve_for(PortableId portable, qos::BitsPerSecond b) {
  assert(b >= 0.0);
  cancel_reservation(portable);
  if (b <= 0.0) return;
  reserved_for_.insert(portable.value(), b);
  reserved_specific_total_ += b;
}

void CellBandwidth::cancel_reservation(PortableId portable) {
  const qos::BitsPerSecond* b = reserved_for_.find(portable.value());
  if (b == nullptr) return;
  reserved_specific_total_ -= *b;
  if (reserved_specific_total_ < 0.0) reserved_specific_total_ = 0.0;
  reserved_for_.erase(portable.value());
}

void CellBandwidth::clear_specific_reservations() {
  reserved_for_.clear();
  reserved_specific_total_ = 0.0;
}

void CellBandwidth::set_anonymous_reservation(qos::BitsPerSecond b) {
  assert(b >= 0.0);
  anonymous_reserved_ = b;
}

void CellBandwidth::add_anonymous_reservation(qos::BitsPerSecond b) {
  assert(b >= 0.0);
  anonymous_reserved_ += b;
}

qos::BitsPerSecond CellBandwidth::reservation_for(PortableId portable) const {
  const qos::BitsPerSecond* b = reserved_for_.find(portable.value());
  return b == nullptr ? 0.0 : *b;
}

namespace {

// Checkpoint bytes must stay identical to the pre-FlatMap format: count,
// then (u32 portable id, f64 bits/s) sorted ascending by id.
void save_portable_map(sim::CheckpointWriter& w,
                       const sim::FlatMap<std::uint32_t, qos::BitsPerSecond>& map) {
  std::vector<std::pair<std::uint32_t, qos::BitsPerSecond>> entries;
  entries.reserve(map.size());
  map.for_each([&entries](std::uint32_t id, qos::BitsPerSecond b) {
    entries.emplace_back(id, b);
  });
  std::sort(entries.begin(), entries.end());
  w.u64(entries.size());
  for (const auto& [id, b] : entries) {
    w.u32(id);
    w.f64(b);
  }
}

void restore_portable_map(sim::CheckpointReader& r,
                          sim::FlatMap<std::uint32_t, qos::BitsPerSecond>& map) {
  map.clear();
  for (std::uint64_t n = r.u64(); n-- > 0;) {
    const std::uint32_t id = r.u32();
    map[id] = r.f64();
  }
}

}  // namespace

void CellBandwidth::save_state(sim::CheckpointWriter& w) const {
  w.f64(capacity_);
  w.f64(allocated_);
  w.f64(anonymous_reserved_);
  w.f64(reserved_specific_total_);
  save_portable_map(w, reserved_for_);
  save_portable_map(w, connections_);
}

void CellBandwidth::restore_state(sim::CheckpointReader& r) {
  capacity_ = r.f64();
  allocated_ = r.f64();
  anonymous_reserved_ = r.f64();
  reserved_specific_total_ = r.f64();
  restore_portable_map(r, reserved_for_);
  restore_portable_map(r, connections_);
}

}  // namespace imrm::reservation
