// Tests for the parallel replication runner: deterministic seed derivation,
// order-independent aggregation (byte-identical results at 1, 4, and 8
// threads), full index coverage, and exception propagation.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "experiments/campus_day.h"
#include "sim/replication.h"

namespace imrm {
namespace {

TEST(ReplicationSeed, DeterministicAndDistinct) {
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < 1000; ++i) {
    const std::uint64_t seed = sim::replication_seed(42, i);
    EXPECT_EQ(seed, sim::replication_seed(42, i));  // stable
    seeds.insert(seed);
  }
  EXPECT_EQ(seeds.size(), 1000u);  // no collisions across indices
  // Nearby bases must not alias each other's streams.
  EXPECT_NE(sim::replication_seed(42, 0), sim::replication_seed(43, 0));
}

TEST(ReplicationRunner, CoversEveryIndexExactlyOnce) {
  const sim::ReplicationRunner runner(4);
  constexpr std::size_t kN = 257;
  std::vector<std::atomic<int>> hits(kN);
  runner.run_indexed(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ReplicationRunner, ResultsIndependentOfThreadCount) {
  auto body = [](std::uint64_t seed, std::size_t index) {
    return seed ^ (std::uint64_t(index) << 17);
  };
  const auto at1 = sim::ReplicationRunner(1).run(64, 9, body);
  const auto at4 = sim::ReplicationRunner(4).run(64, 9, body);
  const auto at8 = sim::ReplicationRunner(8).run(64, 9, body);
  EXPECT_EQ(at1, at4);
  EXPECT_EQ(at1, at8);
}

TEST(ReplicationRunner, PropagatesBodyException) {
  const sim::ReplicationRunner runner(4);
  EXPECT_THROW(runner.run_indexed(16,
                                  [](std::size_t i) {
                                    if (i == 7) throw std::runtime_error("boom");
                                  }),
               std::runtime_error);
}

// The acceptance property for the scale-out layer: a campus-day sweep must
// produce byte-identical aggregate statistics for the same seeds at 1, 4,
// and 8 threads.
TEST(CampusDaySweep, AggregatesAreThreadCountInvariant) {
  experiments::CampusSweepConfig config;
  config.base.attendees = 12;      // trimmed day so the test stays fast
  config.base.squatters = 4;
  config.replications = 8;
  config.base_seed = 77;

  experiments::CampusSweepResult results[3];
  const std::size_t threads[3] = {1, 4, 8};
  for (int i = 0; i < 3; ++i) {
    config.threads = threads[i];
    results[i] = experiments::run_campus_day_sweep(config);
  }
  for (int i = 1; i < 3; ++i) {
    EXPECT_EQ(results[0].replications, results[i].replications);
    EXPECT_EQ(results[0].attendee_drops, results[i].attendee_drops);
    EXPECT_EQ(results[0].squatter_blocks, results[i].squatter_blocks);
    EXPECT_EQ(results[0].squatter_admits, results[i].squatter_admits);
    EXPECT_EQ(results[0].other_drops, results[i].other_drops);
    EXPECT_EQ(results[0].handoffs, results[i].handoffs);
    // Bit-exact, not approximate: the fold order is fixed by replication
    // index, so even floating-point aggregates must match exactly.
    EXPECT_EQ(results[0].mean_room_peak_allocated, results[i].mean_room_peak_allocated);
    EXPECT_EQ(results[0].max_room_peak_allocated, results[i].max_room_peak_allocated);
  }
  EXPECT_EQ(results[0].replications, 8u);
}

}  // namespace
}  // namespace imrm
