// imrm scenario runner: a command-line front end for the experiment
// harnesses, so scenarios can be swept without recompiling.
//
//   $ ./scenario_cli classroom --size 55 --policy brute-force --seed 7
//   $ ./scenario_cli twocell --window 0.05 --pqos 0.01 --rule probabilistic
//   $ ./scenario_cli fig4 --hours 100 --users 12
//   $ ./scenario_cli maxmin --links 8 --conns 24 --seed 3
//   $ ./scenario_cli campus --policy dispatcher --attendees 40 --seed 5
//   $ ./scenario_cli campus --attendees 40 --faults 0.2 --seed 5
//   $ ./scenario_cli faults --topology campus --drop 0.1 --crashes 1
//
// Every subcommand also accepts the observability flags:
//   --metrics-json <path>   write a versioned obs::RunReport JSON document
//   --trace-out <path>      write a Chrome trace_event JSON (Perfetto-loadable)
// Leading flags with no subcommand default to the campus scenario, so
//   $ ./scenario_cli --metrics-json out.json --trace-out trace.json
// runs a campus day and emits both artifacts.
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "experiments/campus_day.h"
#include "experiments/campus_scale.h"
#include "experiments/classroom.h"
#include "experiments/sharded_campus.h"
#include "experiments/fig4_mobility.h"
#include "experiments/twocell.h"
#include "fault/convergence.h"
#include "fault/fault_model.h"
#include "fault/schedule.h"
#include "maxmin/protocol.h"
#include "maxmin/waterfill.h"
#include "obs/profiler.h"
#include "obs/progress.h"
#include "obs/report.h"
#include "obs/tracer.h"
#include "serve/load_driver.h"
#include "serve/socket_transport.h"
#include "stats/table.h"

#include <thread>

using namespace imrm;
using namespace imrm::experiments;

namespace {

/// Minimal flag scanner: --name value pairs after the subcommand.
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i + 1 < argc; i += 2) {
      if (std::strncmp(argv[i], "--", 2) == 0) values_[argv[i] + 2] = argv[i + 1];
    }
  }
  // Numeric flags go through parse_count / parse_number below — strict,
  // full-token parses that exit 2 on garbage. There is deliberately no lax
  // std::stod accessor here.
  [[nodiscard]] std::string text(const std::string& name, std::string fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }

 private:
  std::map<std::string, std::string> values_;
};

bool parse_count(const Flags& flags, const std::string& name, std::size_t fallback,
                 std::size_t& out);
bool parse_number(const Flags& flags, const std::string& name, double fallback,
                  double& out, bool probability);

/// Shared observability state for one CLI run: the registry/tracer/profiler
/// handed to the experiment, the output paths, and the report skeleton.
struct ObsSession {
  explicit ObsSession(const Flags& flags)
      : metrics_path(flags.text("metrics-json", "")),
        trace_path(flags.text("trace-out", "")) {
    std::size_t profile_flag = 0;
    double progress_period = 0.0;
    if (!parse_count(flags, "profile", 0, profile_flag)) flag_error = true;
    if (!parse_number(flags, "progress", 0.0, progress_period, false)) {
      flag_error = true;
    }
    want_profile_ = profile_flag != 0;
    if (want_profile_ && !obs::Profiler::compiled_in()) {
      std::cerr << "scenario_cli: --profile requested but profiling is "
                   "compiled out (IMRM_PROFILING=0); running without it\n";
      want_profile_ = false;
    }
    profiler.set_enabled(want_profile_);
    progress = obs::ProgressMeter(progress_period);
    tracer.set_enabled(want_trace());
    start = std::chrono::steady_clock::now();
  }

  [[nodiscard]] bool want_metrics() const { return !metrics_path.empty(); }
  [[nodiscard]] bool want_trace() const { return !trace_path.empty(); }
  [[nodiscard]] bool want_profile() const { return want_profile_; }
  [[nodiscard]] obs::Registry* registry_or_null() {
    return want_metrics() ? &registry : nullptr;
  }
  [[nodiscard]] obs::Tracer* tracer_or_null() {
    return want_trace() ? &tracer : nullptr;
  }
  [[nodiscard]] obs::Profiler* profiler_or_null() {
    return want_profile_ ? &profiler : nullptr;
  }
  [[nodiscard]] obs::ProgressMeter* progress_or_null() {
    return progress.armed() ? &progress : nullptr;
  }

  void config_echo(std::string key, std::string value) {
    config.emplace_back(std::move(key), std::move(value));
  }

  /// Writes whichever artifacts were requested. `sim_seconds`/`events_fired`
  /// come from the experiment's own metric export when present. A non-null
  /// `profile_override` replaces the session profiler's snapshot — used by
  /// experiments that augment it with engine-side accounting (shard lanes).
  /// A non-null `service` attaches the schema-v3 service block (serve/drive);
  /// a non-null `adaptation` attaches the schema-v4 adaptation block
  /// (campus --adapt-loop).
  int finish(const std::string& scenario, const obs::Snapshot& snapshot,
             const obs::ProfileSnapshot* profile_override = nullptr,
             const obs::ServiceBlock* service = nullptr,
             const obs::AdaptationBlock* adaptation = nullptr) {
    const auto elapsed = std::chrono::steady_clock::now() - start;
    obs::ProfileSnapshot profile;
    if (profile_override != nullptr) {
      profile = *profile_override;
    } else if (want_profile()) {
      profile = profiler.snapshot();
    }
    if (want_metrics()) {
      obs::RunReport report;
      report.tool = "scenario_cli";
      report.scenario = scenario;
      report.config = config;
      report.wall_seconds = std::chrono::duration<double>(elapsed).count();
      if (const obs::GaugeSample* g = snapshot.gauge("sim.time_seconds")) {
        report.sim_seconds = g->value;
      }
      if (const obs::CounterSample* c = snapshot.counter("sim.events_fired")) {
        report.events_fired = c->value;
      }
      report.metrics = snapshot;
      report.profile = profile;
      if (service != nullptr) report.service = *service;
      if (adaptation != nullptr) report.adaptation = *adaptation;
      std::ofstream os(metrics_path);
      if (!os) {
        std::cerr << "cannot write " << metrics_path << '\n';
        return 1;
      }
      report.write_json(os);
      os << '\n';
    }
    if (want_trace()) {
      std::ofstream os(trace_path);
      if (!os) {
        std::cerr << "cannot write " << trace_path << '\n';
        return 1;
      }
      tracer.write_chrome_trace(os);
      os << '\n';
    }
    if (want_profile() && !profile.empty()) profile.write_table(std::cout);
    return 0;
  }

  std::string metrics_path;
  std::string trace_path;
  obs::Registry registry;
  obs::Tracer tracer;
  obs::Profiler profiler;
  obs::ProgressMeter progress;
  std::vector<std::pair<std::string, std::string>> config;
  std::chrono::steady_clock::time_point start;
  /// Malformed --profile/--progress value; main exits 2 before dispatch.
  bool flag_error = false;

 private:
  bool want_profile_ = false;
};

std::string fmt_count(double v) { return stats::fmt(v, 0); }

/// Strict parse for count-valued flags (--replications, --threads, ...): the
/// value must be a plain non-negative decimal integer. Malformed values get a
/// diagnostic and a false return so sweeps fail loudly with a non-zero exit
/// instead of crashing in std::stod or silently truncating "4x" to 4.
bool parse_count(const Flags& flags, const std::string& name, std::size_t fallback,
                 std::size_t& out) {
  const std::string raw = flags.text(name, "");
  if (raw.empty()) {
    out = fallback;
    return true;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw.c_str(), &end, 10);
  if (end == raw.c_str() || *end != '\0' || errno == ERANGE || raw.front() == '-') {
    std::cerr << "scenario_cli: invalid --" << name << " value '" << raw
              << "' (expected a non-negative integer)\n";
    return false;
  }
  out = std::size_t(value);
  return true;
}

/// Strict parse for real-valued flags (--drop, --pqos, --hours, ...). The
/// whole token must parse as a finite double; NaN, infinities, trailing
/// garbage ("0.1x"), and negative values are rejected with a diagnostic so a
/// typo'd sweep exits 2 instead of feeding std::stod wreckage (or a negative
/// probability) into the simulation. Flags marked `probability` must also be
/// <= 1.
bool parse_number(const Flags& flags, const std::string& name, double fallback,
                  double& out, bool probability = false) {
  const std::string raw = flags.text(name, "");
  if (raw.empty()) {
    out = fallback;
    return true;
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(raw.c_str(), &end);
  const bool malformed = end == raw.c_str() || *end != '\0' || errno == ERANGE ||
                         !std::isfinite(value);
  if (malformed || value < 0.0 || (probability && value > 1.0)) {
    std::cerr << "scenario_cli: invalid --" << name << " value '" << raw << "' (expected a "
              << (probability ? "probability in [0, 1]" : "finite non-negative number")
              << ")\n";
    return false;
  }
  out = value;
  return true;
}

/// Shared --faults / --fault-retries handling for the experiment commands:
/// a positive drop probability turns every admission probe into an
/// UnreliableCall over a Bernoulli-loss channel. False = malformed flag
/// (already diagnosed); the caller must exit 2.
bool apply_signaling_faults(const Flags& flags, fault::SignalingFaults& faults,
                            ObsSession& obs) {
  double drop = 0.0;
  std::size_t retries = 0;
  if (!parse_number(flags, "faults", 0.0, drop, /*probability=*/true)) return false;
  if (!parse_count(flags, "fault-retries", 3, retries)) return false;
  if (drop <= 0.0) return true;
  faults.model = fault::LinkFaultModel::bernoulli_loss(drop);
  faults.max_attempts = int(retries);
  obs.config_echo("faults", stats::fmt(drop, 4));
  obs.config_echo("fault-retries", fmt_count(double(faults.max_attempts)));
  return true;
}

int run_classroom_cmd(const Flags& flags, ObsSession& obs) {
  ClassroomConfig config;
  std::size_t size = 0, seed = 0;
  double passby = 0.0;
  if (!parse_count(flags, "size", 35, size)) return 2;
  if (!parse_count(flags, "seed", 7, seed)) return 2;
  if (!parse_number(flags, "passby", 18.0, passby)) return 2;
  config.class_size = size;
  config.meeting = {sim::SimTime::minutes(60), sim::SimTime::minutes(110),
                    config.class_size};
  config.seed = std::uint64_t(seed);
  config.passby_per_minute = passby;
  const std::string policy = flags.text("policy", "meeting-room");
  if (policy == "brute-force") config.policy = PolicyKind::kBruteForce;
  else if (policy == "aggregate") config.policy = PolicyKind::kAggregate;
  else if (policy == "static") config.policy = PolicyKind::kStatic;
  else if (policy == "none") config.policy = PolicyKind::kNone;
  else config.policy = PolicyKind::kMeetingRoom;
  config.metrics = obs.registry_or_null();
  config.tracer = obs.tracer_or_null();
  obs.config_echo("size", fmt_count(double(config.class_size)));
  obs.config_echo("policy", policy);
  obs.config_echo("seed", fmt_count(double(config.seed)));

  const ClassroomResult result = run_classroom(config);
  std::cout << "policy=" << result.policy << " size=" << result.attendees
            << " load=" << stats::fmt(result.offered_load * 100, 0) << "%"
            << " drops=" << result.connection_drops << " walkers=" << result.walkers
            << '\n';
  return obs.finish("classroom", obs.registry.snapshot());
}

int run_twocell_cmd(const Flags& flags, ObsSession& obs) {
  TwoCellConfig config;
  std::size_t seed = 0;
  if (!parse_number(flags, "window", 0.05, config.window)) return 2;
  if (!parse_number(flags, "pqos", 0.01, config.p_qos, /*probability=*/true)) return 2;
  if (!parse_number(flags, "duration", 1000.0, config.duration)) return 2;
  if (!parse_number(flags, "guard", 0.1, config.guard_fraction, /*probability=*/true)) {
    return 2;
  }
  if (!parse_count(flags, "seed", 3, seed)) return 2;
  config.seed = std::uint64_t(seed);
  const std::string rule = flags.text("rule", "probabilistic");
  if (rule == "static") config.rule = AdmissionRule::kStaticGuard;
  else if (rule == "none") config.rule = AdmissionRule::kNoReservation;
  else config.rule = AdmissionRule::kProbabilistic;
  config.metrics = obs.registry_or_null();
  config.tracer = obs.tracer_or_null();
  if (!apply_signaling_faults(flags, config.faults, obs)) return 2;
  obs.config_echo("rule", rule);
  obs.config_echo("window", stats::fmt(config.window, 4));
  obs.config_echo("pqos", stats::fmt(config.p_qos, 4));
  obs.config_echo("seed", fmt_count(double(config.seed)));

  const TwoCellResult r = run_twocell(config);
  std::cout << "rule=" << rule << " T=" << config.window << " Pqos=" << config.p_qos
            << "  Pb=" << stats::fmt(r.p_block(), 5) << " Pd=" << stats::fmt(r.p_drop(), 5)
            << " (" << r.new_attempts << " arrivals, " << r.handoff_attempts
            << " handoffs)\n";
  return obs.finish("twocell", obs.registry.snapshot());
}

int run_fig4_cmd(const Flags& flags, ObsSession& obs) {
  Fig4Config config;
  std::size_t users = 0, seed = 0;
  if (!parse_number(flags, "hours", 100.0, config.hours)) return 2;
  if (!parse_count(flags, "users", 12, users)) return 2;
  if (!parse_count(flags, "seed", 1, seed)) return 2;
  config.background_users = int(users);
  config.seed = std::uint64_t(seed);
  config.metrics = obs.registry_or_null();
  config.tracer = obs.tracer_or_null();
  obs.config_echo("hours", stats::fmt(config.hours, 1));
  obs.config_echo("users", fmt_count(double(config.background_users)));
  obs.config_echo("seed", fmt_count(double(config.seed)));

  const Fig4Result r = run_fig4(config);
  auto pct = [](std::size_t a, std::size_t b) {
    return b ? stats::fmt(100.0 * double(a) / double(b), 1) : std::string("-");
  };
  std::cout << "faculty C->D fanout: A " << pct(r.faculty.to_a, r.faculty.total())
            << "% | towards B " << pct(r.faculty.toward_b, r.faculty.total())
            << "% | F/G " << pct(r.faculty.to_fg, r.faculty.total()) << "%\n";
  std::cout << "prediction hit rate: "
            << pct(r.predictive_hits, r.predictive_reservations) << "% over "
            << r.predictive_reservations << " reservations ("
            << r.total_handoffs << " handoffs)\n";
  return obs.finish("fig4", obs.registry.snapshot());
}

int run_maxmin_cmd(const Flags& flags, ObsSession& obs) {
  std::size_t links = 0, conns = 0, seed = 0;
  if (!parse_count(flags, "links", 6, links)) return 2;
  if (!parse_count(flags, "conns", 12, conns)) return 2;
  if (!parse_count(flags, "seed", 1, seed)) return 2;
  if (links == 0) {
    std::cerr << "scenario_cli: --links must be at least 1\n";
    return 2;
  }
  const int n_links = int(links);
  const int n_conns = int(conns);
  std::mt19937_64 rng{std::uint64_t(seed)};
  std::uniform_real_distribution<double> cap(5.0, 50.0);
  obs.config_echo("links", fmt_count(double(n_links)));
  obs.config_echo("conns", fmt_count(double(n_conns)));

  maxmin::Problem problem;
  for (int i = 0; i < n_links; ++i) problem.links.push_back({cap(rng)});
  for (int c = 0; c < n_conns; ++c) {
    std::uniform_int_distribution<int> start_dist(0, n_links - 1);
    const int start = start_dist(rng);
    std::uniform_int_distribution<int> end_dist(start, n_links - 1);
    const int end = end_dist(rng);
    maxmin::ProblemConnection conn;
    for (int li = start; li <= end; ++li) conn.path.push_back(std::size_t(li));
    problem.connections.push_back(std::move(conn));
  }

  sim::Simulator simulator;
  if (obs.want_trace()) simulator.set_tracer(&obs.tracer);
  maxmin::DistributedProtocol protocol(simulator, problem, {});
  protocol.start_all();
  const std::uint64_t adapt0 =
      obs.want_profile() ? obs::Profiler::now_ns() : 0;
  protocol.run_to_quiescence();
  if (obs.want_profile()) {
    // Aggregate wall cost of the max-min adaptation: total protocol runtime
    // attributed across the rounds it took to converge.
    const std::uint64_t rounds = std::max<std::uint64_t>(
        1, std::uint64_t(protocol.rounds_run()));
    obs.profiler.record(obs.profiler.intern("maxmin.adaptation_round"),
                        obs::Profiler::now_ns() - adapt0, rounds);
  }
  if (obs.want_metrics()) {
    simulator.collect_metrics(obs.registry);
    protocol.export_metrics(obs.registry);
  }
  const auto optimum = maxmin::waterfill(problem);
  double dev = 0.0;
  for (std::size_t i = 0; i < optimum.rates.size(); ++i) {
    dev = std::max(dev, std::abs(protocol.rates()[i] - optimum.rates[i]));
  }
  std::cout << "links=" << n_links << " conns=" << n_conns << " messages="
            << protocol.messages_sent() << " rounds=" << protocol.rounds_run()
            << " max-dev-from-optimal=" << stats::fmt(dev, 9) << '\n';
  return obs.finish("maxmin", obs.registry.snapshot());
}

/// `campus --shards K`: the sharded multi-cell corridor scenario. K is the
/// worker count only — cells are the determinism unit, so the metrics block
/// of --metrics-json is byte-identical for any K (asserted by the
/// shard-labeled ctests through tools/check_shard_determinism.py).
int run_campus_sharded_cmd(const Flags& flags, ObsSession& obs, std::size_t shards) {
  ShardedCampusConfig config;
  std::size_t cells = 0, portables = 0, seed = 0, batch = 0;
  double hours = 0.0, hop_ms = 0.0;
  if (!parse_count(flags, "cells", 24, cells)) return 2;
  if (!parse_count(flags, "portables", 8, portables)) return 2;
  if (!parse_count(flags, "seed", 5, seed)) return 2;
  if (!parse_count(flags, "batch", 0, batch)) return 2;
  if (!parse_number(flags, "hours", 4.0, hours)) return 2;
  if (!parse_number(flags, "hop-ms", 5.0, hop_ms)) return 2;
  if (cells == 0) {
    std::cerr << "scenario_cli: --cells must be at least 1\n";
    return 2;
  }
  if (hop_ms <= 0.0) {
    std::cerr << "scenario_cli: --hop-ms must be positive (it is the "
                 "conservative window width)\n";
    return 2;
  }
  config.cells = cells;
  config.shards = shards;
  config.batch = batch;
  config.portables_per_cell = portables;
  config.seed = std::uint64_t(seed);
  config.horizon = sim::SimTime::hours(hours);
  config.hop_latency = sim::Duration::millis(hop_ms);
  config.profiler = obs.profiler_or_null();
  config.tracer = obs.tracer_or_null();
  config.progress = obs.progress_or_null();
  obs.config_echo("cells", fmt_count(double(cells)));
  obs.config_echo("shards", fmt_count(double(shards)));
  // batch is execution-only; echo it only when explicitly set so default
  // runs keep their pre-batching config fingerprint (bench_compare.py keys
  // trajectory entries on the config echo).
  if (batch > 0) obs.config_echo("batch", fmt_count(double(batch)));
  obs.config_echo("portables", fmt_count(double(portables)));
  obs.config_echo("seed", fmt_count(double(config.seed)));
  obs.config_echo("hours", stats::fmt(hours, 2));

  const ShardedCampusResult r = run_sharded_campus(config);
  std::cout << "cells=" << cells << " shards=" << shards
            << " events=" << r.events_fired << " windows=" << r.windows
            << " boundary=" << r.boundary_messages << " admits=" << r.admits
            << " blocks=" << r.blocks << " handoffs=" << r.handoffs
            << " drops=" << r.handoff_drops << " reclaims=" << r.lease_reclaims
            << '\n';
  return obs.finish("campus-sharded", r.metrics, &r.profile);
}

/// Builds the schema-v4 adaptation block from the run's metric snapshot plus
/// the grant trajectory (single runs only; sweep aggregates leave it zero).
obs::AdaptationBlock make_adaptation_block(const CampusDayConfig& config,
                                           const obs::Snapshot& snapshot,
                                           const CampusDayResult* result) {
  const auto count = [&snapshot](const char* name) -> std::uint64_t {
    const obs::CounterSample* c = snapshot.counter(name);
    return c == nullptr ? 0 : c->value;
  };
  const auto level = [&snapshot](const char* name) -> double {
    const obs::GaugeSample* g = snapshot.gauge(name);
    return g == nullptr ? 0.0 : g->value;
  };
  obs::AdaptationBlock block;
  block.present = true;
  block.flows = config.adapt.flows;
  block.renegotiations_triggered = count("adapt.renegotiations_triggered");
  block.renegotiations_accepted = count("adapt.renegotiations_accepted");
  block.windows_breached = count("adapt.windows_breached");
  block.windows_clean = count("adapt.windows_clean");
  block.windows_insufficient = count("adapt.windows_insufficient");
  block.offered_bits = count("adapt.shaper_offered_bits");
  block.bg_bits = count("adapt.shaper_bg_bits");
  block.wc_bits = count("adapt.shaper_wc_bits");
  block.nonconforming_bits = count("adapt.shaper_nonconforming_bits");
  block.hop_offered_packets = count("adapt.hop_offered_packets");
  block.hop_delivered_packets = count("adapt.hop_delivered_packets");
  block.hop_dropped_packets = count("adapt.hop_dropped_packets");
  block.granted_bps = level("adapt.granted_bps");
  block.enforced_bps = level("adapt.enforced_bps");
  if (result != nullptr) {
    block.granted_prefault_bps = result->adapt_granted_prefault_bps;
    block.granted_min_bps = result->adapt_granted_min_bps;
    block.granted_final_bps = result->adapt_granted_final_bps;
  }
  return block;
}

int run_campus_cmd(const Flags& flags, ObsSession& obs) {
  std::size_t shards = 0, adapt_loop = 0;
  if (!parse_count(flags, "shards", 0, shards)) return 2;
  if (!parse_count(flags, "adapt-loop", 0, adapt_loop)) return 2;
  if (shards == 0 && !flags.text("batch", "").empty()) {
    std::cerr << "scenario_cli: --batch tunes the sharded runner's window "
                 "batching; it requires --shards K\n";
    return 2;
  }
  if (shards > 0) {
    if (adapt_loop != 0) {
      std::cerr << "scenario_cli: --adapt-loop runs the single-process campus "
                   "day; it does not support --shards\n";
      return 2;
    }
    return run_campus_sharded_cmd(flags, obs, shards);
  }

  CampusDayConfig config;
  std::size_t attendees = 0, squatters = 0, seed = 0;
  if (!parse_count(flags, "attendees", 40, attendees)) return 2;
  if (!parse_count(flags, "squatters", 10, squatters)) return 2;
  if (!parse_count(flags, "seed", 5, seed)) return 2;
  config.attendees = attendees;
  config.squatters = squatters;
  config.seed = std::uint64_t(seed);
  const std::string policy = flags.text("policy", "dispatcher");
  if (policy == "none") config.policy = CampusPolicy::kNone;
  else if (policy == "static") config.policy = CampusPolicy::kStatic;
  else if (policy == "brute-force") config.policy = CampusPolicy::kBruteForce;
  else if (policy == "aggregate") config.policy = CampusPolicy::kAggregate;
  else config.policy = CampusPolicy::kDispatcher;
  std::size_t replications = 0;
  std::size_t threads = 0;
  double checkpoint_at = 0.0;
  if (!parse_count(flags, "replications", 1, replications)) return 2;
  if (!parse_count(flags, "threads", 0, threads)) return 2;
  if (!parse_number(flags, "checkpoint-at", 60.0, checkpoint_at)) return 2;
  if (replications == 0) {
    // A 0-replication sweep used to fall through to a single run, silently
    // ignoring the flag; fail loudly instead.
    std::cerr << "scenario_cli: --replications must be at least 1\n";
    return 2;
  }
  const std::string ckpt_out = flags.text("checkpoint-out", "");
  const std::string ckpt_in = flags.text("checkpoint-in", "");
  if (!ckpt_out.empty() && !ckpt_in.empty()) {
    std::cerr << "scenario_cli: --checkpoint-out and --checkpoint-in are exclusive\n";
    return 2;
  }
  if ((!ckpt_out.empty() || !ckpt_in.empty()) && replications > 1) {
    std::cerr << "scenario_cli: checkpoints apply to single runs, not --replications\n";
    return 2;
  }
  std::size_t adapt_flows = 0;
  double adapt_fault = 0.0, adapt_fault_start = 0.0, adapt_fault_stop = 0.0;
  if (!parse_count(flags, "adapt-flows", 4, adapt_flows)) return 2;
  if (!parse_number(flags, "adapt-fault", 0.8, adapt_fault, /*probability=*/true)) {
    return 2;
  }
  if (!parse_number(flags, "adapt-fault-start", 60.0, adapt_fault_start)) return 2;
  if (!parse_number(flags, "adapt-fault-stop", 100.0, adapt_fault_stop)) return 2;
  if (adapt_loop != 0) {
    if (!ckpt_out.empty() || !ckpt_in.empty()) {
      std::cerr << "scenario_cli: the adaptation loop does not support "
                   "checkpoint/resume; drop --adapt-loop or the "
                   "--checkpoint-out/--checkpoint-in flag\n";
      return 2;
    }
    if (adapt_flows == 0) {
      std::cerr << "scenario_cli: --adapt-flows must be at least 1\n";
      return 2;
    }
    if (adapt_fault > 0.0 && adapt_fault_start >= adapt_fault_stop) {
      std::cerr << "scenario_cli: --adapt-fault-start (" << stats::fmt(adapt_fault_start, 1)
                << ") must be before --adapt-fault-stop ("
                << stats::fmt(adapt_fault_stop, 1) << ")\n";
      return 2;
    }
    config.adapt.enabled = true;
    config.adapt.flows = adapt_flows;
    config.adapt.fault_loss = adapt_fault;
    config.adapt.fault_start = sim::SimTime::minutes(adapt_fault_start);
    config.adapt.fault_stop = sim::SimTime::minutes(adapt_fault_stop);
  }
  if (!apply_signaling_faults(flags, config.faults, obs)) return 2;
  obs.config_echo("policy", policy);
  obs.config_echo("attendees", fmt_count(double(config.attendees)));
  obs.config_echo("squatters", fmt_count(double(config.squatters)));
  obs.config_echo("seed", fmt_count(double(config.seed)));
  obs.config_echo("replications", fmt_count(double(replications)));
  if (config.adapt.enabled) {
    // Echoed only when enabled: loop-off config fingerprints (and therefore
    // golden reports) stay byte-identical to pre-adaptation builds.
    obs.config_echo("adapt-loop", "1");
    obs.config_echo("adapt-flows", fmt_count(double(adapt_flows)));
    obs.config_echo("adapt-fault", stats::fmt(adapt_fault, 4));
    obs.config_echo("adapt-fault-start", stats::fmt(adapt_fault_start, 1));
    obs.config_echo("adapt-fault-stop", stats::fmt(adapt_fault_stop, 1));
  }

  if (replications > 1) {
    // Monte-Carlo sweep: per-replication snapshots merged deterministically;
    // tracing and wall metrics stay off inside the sweep.
    CampusSweepConfig sweep;
    sweep.base = config;
    sweep.replications = replications;
    sweep.threads = threads;
    sweep.base_seed = config.seed;
    sweep.profiler = obs.profiler_or_null();
    const CampusSweepResult r = run_campus_day_sweep(sweep);
    std::cout << "policy=" << r.policy << " replications=" << r.replications
              << " attendee-drops=" << r.attendee_drops
              << " squatter-blocks=" << r.squatter_blocks
              << " handoffs=" << r.handoffs;
    if (config.adapt.enabled) std::cout << " renegotiations=" << r.renegotiations;
    std::cout << '\n';
    obs::AdaptationBlock adapt_block;
    if (config.adapt.enabled) {
      adapt_block = make_adaptation_block(config, r.metrics, nullptr);
    }
    return obs.finish("campus-sweep", r.metrics, nullptr, nullptr,
                      config.adapt.enabled ? &adapt_block : nullptr);
  }

  config.metrics = obs.registry_or_null();
  config.tracer = obs.tracer_or_null();
  // A single interactive run may record the (nondeterministic) wall-clock
  // handoff latency histogram; sweeps never do. Checkpointed runs also keep
  // it off so the restored run's metrics JSON is byte-identical to an
  // uninterrupted one.
  config.wall_metrics = obs.want_metrics() && ckpt_out.empty() && ckpt_in.empty();

  if (!ckpt_out.empty()) {
    // Run the day up to the barrier and freeze it; a later --checkpoint-in
    // run with the same flags finishes it.
    config.tracer = nullptr;  // traces hold wall timestamps — not resumable
    // Always carry the instrument totals: the resuming side may ask for a
    // metrics report even if this invocation did not.
    config.metrics = &obs.registry;
    try {
      const sim::Checkpoint ckpt =
          checkpoint_campus_day(config, sim::SimTime::minutes(checkpoint_at));
      ckpt.save_file(ckpt_out);
    } catch (const sim::CheckpointError& e) {
      std::cerr << "scenario_cli: " << e.what() << '\n';
      return 1;
    }
    std::cout << "checkpoint policy=" << policy << " t=" << stats::fmt(checkpoint_at, 1)
              << "min written to " << ckpt_out << '\n';
    return 0;
  }

  CampusDayResult r;
  if (!ckpt_in.empty()) {
    try {
      r = resume_campus_day(config, sim::Checkpoint::load_file(ckpt_in));
    } catch (const sim::CheckpointError& e) {
      std::cerr << "scenario_cli: " << e.what() << '\n';
      return 1;
    }
  } else {
    r = run_campus_day(config);
  }
  std::cout << "policy=" << r.policy << " attendee-drops=" << r.attendee_drops
            << " squatter-blocks=" << r.squatter_blocks << " squatter-admits="
            << r.squatter_admits << " handoffs=" << r.handoffs
            << " room-peak=" << stats::fmt(r.room_peak_allocated / 1000.0, 0)
            << "kbps";
  if (config.adapt.enabled) {
    std::cout << " renegotiations=" << r.renegotiations
              << " adapt-prefault=" << stats::fmt(r.adapt_granted_prefault_bps / 1000.0, 1)
              << "kbps adapt-min=" << stats::fmt(r.adapt_granted_min_bps / 1000.0, 1)
              << "kbps adapt-final=" << stats::fmt(r.adapt_granted_final_bps / 1000.0, 1)
              << "kbps";
  }
  std::cout << '\n';
  const obs::Snapshot snapshot = obs.registry.snapshot();
  obs::AdaptationBlock adapt_block;
  if (config.adapt.enabled) adapt_block = make_adaptation_block(config, snapshot, &r);
  return obs.finish("campus", snapshot, nullptr, nullptr,
                    config.adapt.enabled ? &adapt_block : nullptr);
}

int run_faults_cmd(const Flags& flags, ObsSession& obs) {
  std::size_t replications = 0, threads = 0, flaps = 0, crashes = 0;
  std::size_t cells = 0, conns = 0, seed_count = 0, fork = 0;
  double drop = 0.0, stop = 0.0, horizon = 0.0, faults_start = 0.0;
  if (!parse_count(flags, "replications", 8, replications)) return 2;
  if (!parse_count(flags, "threads", 0, threads)) return 2;
  if (!parse_count(flags, "flaps", 2, flaps)) return 2;
  if (!parse_count(flags, "crashes", 1, crashes)) return 2;
  if (!parse_count(flags, "cells", 8, cells)) return 2;
  if (!parse_count(flags, "conns", 24, conns)) return 2;
  if (!parse_count(flags, "seed", 1, seed_count)) return 2;
  if (!parse_count(flags, "fork", 0, fork)) return 2;
  if (!parse_number(flags, "drop", 0.1, drop, /*probability=*/true)) return 2;
  if (!parse_number(flags, "stop", 0.5, stop)) return 2;
  if (!parse_number(flags, "horizon", 30.0, horizon)) return 2;
  if (!parse_number(flags, "faults-start", 0.0, faults_start)) return 2;
  if (fork != 0 && threads > replications) {
    // A forked sweep hands each thread a variant to fork from the shared
    // warm image; more threads than variants means idle workers at best and
    // a confusing hang-looking stall at worst. 0 (auto) self-clamps.
    std::cerr << "scenario_cli: --threads (" << threads
              << ") exceeds --replications (" << replications
              << ") for a forked sweep; lower --threads or raise "
                 "--replications\n";
    return 2;
  }
  const std::uint64_t seed = std::uint64_t(seed_count);
  const std::string topology = flags.text("topology", "twocell");

  fault::ConvergenceConfig base;
  if (topology == "campus") {
    base.problem = fault::campus_problem(cells, conns, seed);
  } else if (topology == "twocell") {
    base.problem = fault::two_cell_problem();
  } else {
    std::cerr << "scenario_cli: unknown --topology '" << topology
              << "' (expected twocell or campus)\n";
    return 2;
  }
  base.faults = fault::LinkFaultModel::bernoulli_loss(drop);
  base.faults_start = sim::SimTime::seconds(faults_start);
  base.faults_stop = sim::SimTime::seconds(faults_start + stop);
  base.horizon = sim::SimTime::seconds(faults_start + horizon);
  base.seed = seed;
  const std::string ckpt_out = flags.text("checkpoint-out", "");
  const std::string ckpt_in = flags.text("checkpoint-in", "");
  if ((!ckpt_out.empty() || !ckpt_in.empty() || fork != 0) && faults_start <= 0.0) {
    std::cerr << "scenario_cli: --checkpoint-out/--checkpoint-in/--fork need a "
                 "positive --faults-start barrier (the warm, fault-free phase)\n";
    return 2;
  }
  if (!ckpt_out.empty() && !ckpt_in.empty()) {
    std::cerr << "scenario_cli: --checkpoint-out and --checkpoint-in are exclusive\n";
    return 2;
  }

  fault::FaultSchedule::RandomConfig timeline;
  timeline.start = base.faults_start;
  timeline.stop = base.faults_stop;
  timeline.links = std::uint32_t(base.problem.links.size());
  timeline.flaps = flaps;
  timeline.crashes = crashes;
  sim::Rng schedule_rng(seed);
  base.schedule = fault::FaultSchedule::random(timeline, schedule_rng);

  obs.config_echo("topology", topology);
  obs.config_echo("drop", stats::fmt(drop, 4));
  obs.config_echo("flaps", fmt_count(double(flaps)));
  obs.config_echo("crashes", fmt_count(double(crashes)));
  obs.config_echo("seed", fmt_count(double(seed)));
  obs.config_echo("replications", fmt_count(double(replications)));
  if (faults_start > 0.0) obs.config_echo("faults-start", stats::fmt(faults_start, 3));

  if (!ckpt_out.empty()) {
    // Freeze the warm, fault-free phase: the protocol converges, the queue
    // drains, and the image (seed-independent — no RNG was drawn) serves as
    // the shared starting point for every fault variant.
    try {
      fault::make_warm_checkpoint(base).save_file(ckpt_out);
    } catch (const sim::CheckpointError& e) {
      std::cerr << "scenario_cli: " << e.what() << '\n';
      return 1;
    }
    std::cout << "warm checkpoint topology=" << topology << " t="
              << stats::fmt(faults_start, 3) << "s written to " << ckpt_out << '\n';
    return 0;
  }

  if (replications <= 1) {
    base.metrics = obs.registry_or_null();
    base.tracer = obs.tracer_or_null();
    fault::ConvergenceResult r;
    if (!ckpt_in.empty()) {
      try {
        r = fault::run_convergence_from(base, sim::Checkpoint::load_file(ckpt_in));
      } catch (const sim::CheckpointError& e) {
        std::cerr << "scenario_cli: " << e.what() << '\n';
        return 1;
      }
    } else {
      r = fault::run_convergence(base);
    }
    std::cout << "topology=" << topology << " drop=" << stats::fmt(drop, 3)
              << " safety=" << (r.safety_held ? "held" : "VIOLATED")
              << " reconverged=" << (r.reconverged ? "yes" : "NO")
              << " t-reconverge=" << stats::fmt(r.reconverge_seconds, 4) << "s"
              << " overshoot=" << stats::fmt(r.worst_overshoot, 9)
              << " final-dev=" << stats::fmt(r.final_deviation, 9) << '\n';
    return obs.finish("faults", obs.registry.snapshot());
  }

  if (!ckpt_in.empty()) {
    std::cerr << "scenario_cli: --checkpoint-in applies to single runs; use --fork 1 "
                 "to share one warm checkpoint across a sweep\n";
    return 2;
  }
  fault::ConvergenceSweepConfig sweep;
  sweep.base = base;
  sweep.replications = replications;
  sweep.threads = threads;
  sweep.fork_from_warm = fork != 0;
  fault::ConvergenceSweepResult r;
  try {
    r = fault::run_convergence_sweep(sweep);
  } catch (const sim::CheckpointError& e) {
    std::cerr << "scenario_cli: " << e.what() << '\n';
    return 1;
  }
  std::cout << "topology=" << topology << " drop=" << stats::fmt(drop, 3)
            << " replications=" << r.replications
            << " safety-failures=" << r.safety_failures
            << " reconverge-failures=" << r.reconverge_failures
            << " t-reconverge p50=" << stats::fmt(r.reconverge_p50, 3)
            << "s p90=" << stats::fmt(r.reconverge_p90, 3)
            << "s p99=" << stats::fmt(r.reconverge_p99, 3) << "s\n";
  return obs.finish("faults-sweep", r.metrics);
}

int run_campus_scale_cmd(const Flags& flags, ObsSession& obs) {
  CampusScaleConfig config;
  std::size_t cells = 0, portables = 0, seed = 0;
  double duration = 0.0, tick = 0.0;
  if (!parse_count(flags, "cells", 100, cells)) return 2;
  if (!parse_count(flags, "portables", 1000, portables)) return 2;
  if (!parse_count(flags, "seed", 5, seed)) return 2;
  if (!parse_number(flags, "duration", 3600.0, duration)) return 2;
  if (!parse_number(flags, "tick", 5.0, tick)) return 2;
  if (cells < 2) {
    std::cerr << "scenario_cli: --cells must be at least 2\n";
    return 2;
  }
  if (tick <= 0.0 || duration <= 0.0) {
    std::cerr << "scenario_cli: --duration and --tick must be positive\n";
    return 2;
  }
  const std::string engine = flags.text("engine", "soa");
  if (engine == "soa") config.engine = ScaleEngine::kSoa;
  else if (engine == "naive") config.engine = ScaleEngine::kNaive;
  else {
    std::cerr << "scenario_cli: invalid --engine value '" << engine
              << "' (expected soa or naive)\n";
    return 2;
  }
  std::size_t shards = 0, batch = 0;
  if (!parse_count(flags, "shards", 0, shards)) return 2;
  if (!parse_count(flags, "batch", 0, batch)) return 2;
  if (shards > 0 && config.engine == ScaleEngine::kNaive) {
    std::cerr << "scenario_cli: --engine naive is the monolithic pre-SoA "
                 "baseline; it cannot run sharded (drop --shards or "
                 "--engine)\n";
    return 2;
  }
  if (shards > cells) {
    std::cerr << "scenario_cli: --shards (" << shards << ") exceeds --cells ("
              << cells << "); cells are the unit of parallelism\n";
    return 2;
  }
  if (shards == 0 && !flags.text("batch", "").empty()) {
    std::cerr << "scenario_cli: --batch tunes the sharded runner's window "
                 "batching; it requires --shards K\n";
    return 2;
  }
  config.cells = cells;
  config.portables = portables;
  config.seed = std::uint64_t(seed);
  config.duration = sim::Duration::seconds(duration);
  config.tick = sim::Duration::seconds(tick);
  config.metrics = obs.registry_or_null();
  config.profiler = obs.profiler_or_null();
  config.progress = obs.progress_or_null();
  obs.config_echo("cells", fmt_count(double(cells)));
  obs.config_echo("portables", fmt_count(double(portables)));
  obs.config_echo("duration", stats::fmt(duration, 1));
  obs.config_echo("tick", stats::fmt(tick, 2));
  obs.config_echo("seed", fmt_count(double(seed)));
  obs.config_echo("engine", engine);

  if (shards > 0) {
    config.shards = shards;
    config.batch = batch;
    config.tracer = obs.tracer_or_null();
    // shards/batch are execution-only (results byte-identical for any
    // value); tools/check_shard_determinism.py strips these two echo keys
    // before comparing reports across the (shards, batch) sweep.
    obs.config_echo("shards", fmt_count(double(shards)));
    if (batch > 0) obs.config_echo("batch", fmt_count(double(batch)));
    const CampusScaleResult r = run_campus_scale_sharded(config);
    // No dispatch count here: stdout must stay byte-identical across batch
    // sizes (dispatches vary; windows and boundary messages do not).
    std::cout << "engine=sharded cells=" << cells << " portables=" << portables
              << " events=" << r.events << " windows=" << r.windows
              << " boundary=" << r.boundary_messages
              << " handoffs=" << r.handoffs << " admits=" << r.handoff_admitted
              << " drops=" << r.handoff_dropped << " blocked=" << r.new_blocked
              << " departed=" << r.departures
              << " bytes/portable=" << stats::fmt(r.bytes_per_portable, 1)
              << '\n';
    return obs.finish("campus_scale", obs.registry.snapshot(),
                      obs.want_profile() ? &r.profile : nullptr);
  }

  const CampusScaleResult r = run_campus_scale(config);
  std::cout << "engine=" << engine << " cells=" << cells << " portables=" << portables
            << " events=" << r.events << " handoffs=" << r.handoffs
            << " admits=" << r.handoff_admitted << " drops=" << r.handoff_dropped
            << " blocked=" << r.new_blocked << " departed=" << r.departures
            << " bytes/portable=" << stats::fmt(r.bytes_per_portable, 1) << '\n';
  return obs.finish("campus_scale", obs.registry.snapshot());
}

/// Shared serve/drive service-shape flags -> ServiceConfig. False = a flag
/// was malformed (already diagnosed); the caller exits 2.
bool parse_service_config(const Flags& flags, ObsSession& obs,
                          serve::ServiceConfig& config) {
  std::size_t cells = 0, queue_cap = 0, adapt_every = 0;
  double slo_p99 = 0.0, retry_after = 0.0, cost = 0.0;
  if (!parse_count(flags, "cells", 16, cells)) return false;
  if (!parse_count(flags, "queue-cap", 512, queue_cap)) return false;
  if (!parse_count(flags, "adapt-every", 0, adapt_every)) return false;
  if (!parse_number(flags, "slo-p99-us", 5000.0, slo_p99)) return false;
  if (!parse_number(flags, "retry-after-us", 5000.0, retry_after)) return false;
  if (!parse_number(flags, "service-cost-us", 200.0, cost)) return false;
  if (cells < 2) {
    std::cerr << "scenario_cli: --cells must be at least 2\n";
    return false;
  }
  if (queue_cap == 0 || slo_p99 <= 0.0 || cost <= 0.0) {
    std::cerr << "scenario_cli: --queue-cap, --slo-p99-us and "
                 "--service-cost-us must be positive\n";
    return false;
  }
  config.cells = cells;
  config.slo.queue_capacity = queue_cap;
  config.slo.p99_target_us = slo_p99;
  config.slo.retry_after_us = retry_after;
  config.virtual_service_cost_us = cost;
  config.adapt_every = adapt_every;
  // serve/drive always record into the session registry: the latency
  // percentiles in the service block come from the serve.latency_us /
  // drive.latency_us histograms whether or not --metrics-json was given.
  config.metrics = &obs.registry;
  config.profiler = obs.profiler_or_null();
  obs.config_echo("cells", fmt_count(double(cells)));
  obs.config_echo("slo-p99-us", stats::fmt(slo_p99, 1));
  obs.config_echo("queue-cap", fmt_count(double(queue_cap)));
  return true;
}

/// Service-side block: exact offered == processed + shed conservation from
/// the service's own counters, latency from serve.latency_us.
obs::ServiceBlock make_service_block(const serve::AdmissionService& service,
                                     const obs::Snapshot& snapshot,
                                     const std::string& transport,
                                     const std::string& pacing, double duration_s) {
  const serve::ServiceStats& s = service.stats();
  obs::ServiceBlock block;
  block.present = true;
  block.transport = transport;
  block.pacing = pacing;
  block.duration_s = duration_s;
  block.offered = s.offered;
  block.processed = s.processed;
  block.shed = s.shed;
  block.errors = s.errors;
  block.admit_accepted = s.admit_accepted;
  block.admit_rejected = s.admit_rejected;
  block.teardowns = s.teardowns;
  block.handoffs = s.handoffs;
  block.handoff_drops = s.handoff_drops;
  block.probes = s.probes;
  block.unanswered = 0;
  block.peak_queue_depth = s.peak_queue_depth;
  if (duration_s > 0.0) {
    block.offered_rps = double(s.offered) / duration_s;
    block.sustained_rps = double(s.processed) / duration_s;
  }
  if (s.offered > 0) block.shed_fraction = double(s.shed) / double(s.offered);
  if (const obs::HistogramSample* h = snapshot.histogram("serve.latency_us")) {
    block.latency_p50_us = h->percentile(0.50);
    block.latency_p90_us = h->percentile(0.90);
    block.latency_p99_us = h->percentile(0.99);
  }
  block.slo_p99_us = service.config().slo.p99_target_us;
  block.slo_met = block.latency_p99_us <= block.slo_p99_us;
  return block;
}

void print_service_summary(const obs::ServiceBlock& b) {
  std::cout << "transport=" << b.transport << " pacing=" << b.pacing
            << " offered=" << b.offered << " processed=" << b.processed
            << " shed=" << b.shed << " errors=" << b.errors
            << " sustained=" << stats::fmt(b.sustained_rps, 0) << "req/s"
            << " p50=" << stats::fmt(b.latency_p50_us, 0) << "us"
            << " p99=" << stats::fmt(b.latency_p99_us, 0) << "us"
            << " slo=" << (b.slo_met ? "met" : "MISSED") << '\n';
}

/// `scenario_cli serve --socket PATH`: the always-on service. Runs until a
/// Shutdown request has been processed (or --deadline wall seconds elapse),
/// then reports what it served.
int run_serve_cmd(const Flags& flags, ObsSession& obs) {
  const std::string path = flags.text("socket", "");
  if (path.empty()) {
    std::cerr << "scenario_cli: serve requires --socket PATH (the AF_UNIX "
                 "listening address)\n";
    return 2;
  }
  double deadline = 0.0;
  if (!parse_number(flags, "deadline", 0.0, deadline)) return 2;
  serve::ServiceConfig config;
  if (!parse_service_config(flags, obs, config)) return 2;
  obs.config_echo("socket", path);

  sim::Simulator simulator;
  serve::AdmissionService service(config, simulator);
  std::unique_ptr<serve::SocketServerTransport> server;
  try {
    server = std::make_unique<serve::SocketServerTransport>(path);
  } catch (const serve::TransportError& e) {
    std::cerr << "scenario_cli: " << e.what() << '\n';
    return 1;
  }
  std::cout << "serving on " << path << " (cells=" << service.cells()
            << " slo-p99=" << stats::fmt(config.slo.p99_target_us, 0)
            << "us queue-cap=" << config.slo.queue_capacity << ")" << std::endl;
  const auto t0 = std::chrono::steady_clock::now();
  service.run_wall(*server, deadline);
  const double duration_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  const obs::Snapshot snapshot = obs.registry.snapshot();
  const obs::ServiceBlock block =
      make_service_block(service, snapshot, "socket", "wall", duration_s);
  print_service_summary(block);
  return obs.finish("serve", snapshot, nullptr, &block);
}

/// `scenario_cli drive`: the open-loop load driver. With --transport ring it
/// hosts the service in-process (deterministic with --pacing virtual); with
/// --transport socket it drives a separately started `serve`.
int run_drive_cmd(const Flags& flags, ObsSession& obs) {
  const std::string transport = flags.text("transport", "ring");
  if (transport != "ring" && transport != "socket") {
    std::cerr << "scenario_cli: invalid --transport '" << transport
              << "' (expected ring or socket)\n";
    return 2;
  }
  const std::string pacing =
      flags.text("pacing", transport == "ring" ? "virtual" : "wall");
  if (pacing != "virtual" && pacing != "wall") {
    std::cerr << "scenario_cli: invalid --pacing '" << pacing
              << "' (expected virtual or wall)\n";
    return 2;
  }
  if (transport == "socket" && pacing == "virtual") {
    std::cerr << "scenario_cli: --pacing virtual needs the in-process ring "
                 "(a socket peer has its own clock); use --transport ring\n";
    return 2;
  }
  const std::string arrivals = flags.text("arrivals", "poisson");
  if (arrivals != "poisson" && arrivals != "trace") {
    std::cerr << "scenario_cli: invalid --arrivals '" << arrivals
              << "' (expected poisson or trace)\n";
    return 2;
  }

  serve::ServiceConfig service_config;
  if (!parse_service_config(flags, obs, service_config)) return 2;

  serve::DriveConfig drive;
  std::size_t seed = 0, portables = 0, shutdown = 0;
  if (!parse_number(flags, "rate", 1000.0, drive.rate)) return 2;
  if (!parse_number(flags, "duration", 10.0, drive.duration_s)) return 2;
  if (!parse_count(flags, "seed", 1, seed)) return 2;
  if (!parse_count(flags, "portables", 64, portables)) return 2;
  if (!parse_count(flags, "shutdown", 0, shutdown)) return 2;
  if (arrivals == "poisson" && (drive.rate <= 0.0 || drive.duration_s <= 0.0)) {
    std::cerr << "scenario_cli: --rate and --duration must be positive\n";
    return 2;
  }
  if (portables == 0) {
    std::cerr << "scenario_cli: --portables must be at least 1\n";
    return 2;
  }
  drive.seed = std::uint64_t(seed);
  drive.portables = std::uint32_t(portables);
  drive.cells = std::uint32_t(service_config.cells);
  drive.shutdown_after = shutdown != 0;
  drive.metrics = &obs.registry;
  if (arrivals == "trace") {
    const std::string trace_path = flags.text("trace-in", "");
    if (trace_path.empty()) {
      std::cerr << "scenario_cli: --arrivals trace requires --trace-in PATH\n";
      return 2;
    }
    try {
      drive.trace = serve::parse_trace(trace_path);
    } catch (const std::runtime_error& e) {
      std::cerr << "scenario_cli: " << e.what() << '\n';
      return 2;
    }
    if (drive.trace.empty()) {
      std::cerr << "scenario_cli: trace '" << trace_path << "' has no events\n";
      return 2;
    }
    obs.config_echo("trace-in", trace_path);
  }
  obs.config_echo("transport", transport);
  obs.config_echo("pacing", pacing);
  obs.config_echo("arrivals", arrivals);
  obs.config_echo("rate", stats::fmt(drive.rate, 1));
  obs.config_echo("duration", stats::fmt(drive.duration_s, 2));
  obs.config_echo("seed", fmt_count(double(drive.seed)));
  obs.config_echo("portables", fmt_count(double(drive.portables)));

  if (transport == "socket") {
    const std::string path = flags.text("socket", "");
    if (path.empty()) {
      std::cerr << "scenario_cli: --transport socket requires --socket PATH\n";
      return 2;
    }
    obs.config_echo("socket", path);
    std::unique_ptr<serve::SocketClientTransport> client;
    try {
      client = std::make_unique<serve::SocketClientTransport>(path);
    } catch (const serve::TransportError& e) {
      std::cerr << "scenario_cli: " << e.what() << '\n';
      return 1;
    }
    serve::LoadDriver driver(drive);
    const serve::DriveStats ds = driver.run_wall(*client);
    // Driver-side view: the service's own conservation lives in its report;
    // here offered = sent, processed = substantively answered.
    obs::ServiceBlock block;
    block.present = true;
    block.transport = "socket";
    block.pacing = "wall";
    block.duration_s = ds.duration_s;
    block.offered = ds.sent;
    block.processed = ds.accepted + ds.rejected + ds.errors;
    block.shed = ds.shed;
    block.errors = ds.errors;
    block.unanswered = ds.unanswered;
    if (ds.duration_s > 0.0) {
      block.offered_rps = double(ds.sent) / ds.duration_s;
      block.sustained_rps = double(block.processed) / ds.duration_s;
    }
    if (ds.sent > 0) block.shed_fraction = double(ds.shed) / double(ds.sent);
    const obs::Snapshot snapshot = obs.registry.snapshot();
    if (const obs::HistogramSample* h = snapshot.histogram("drive.latency_us")) {
      block.latency_p50_us = h->percentile(0.50);
      block.latency_p90_us = h->percentile(0.90);
      block.latency_p99_us = h->percentile(0.99);
    }
    block.slo_p99_us = service_config.slo.p99_target_us;
    block.slo_met = block.latency_p99_us <= block.slo_p99_us;
    print_service_summary(block);
    return obs.finish("drive", snapshot, nullptr, &block);
  }

  // In-process ring: the service lives here too.
  sim::Simulator simulator;
  serve::AdmissionService service(service_config, simulator);
  serve::RingTransport ring;
  serve::LoadDriver driver(drive);
  serve::DriveStats ds;
  if (pacing == "virtual") {
    ds = driver.run_virtual(simulator, ring, service);
  } else {
    // Wall pacing over the ring: service on its own thread, open-loop driver
    // here. The service exits once the driver closes its end and the queue
    // drains; the deadline is a hang backstop only.
    const double backstop_s = drive.duration_s + 30.0;
    std::thread server_thread(
        [&] { service.run_wall(ring.server(), backstop_s); });
    ds = driver.run_wall(ring.client());
    server_thread.join();
  }
  const obs::Snapshot snapshot = obs.registry.snapshot();
  obs::ServiceBlock block =
      make_service_block(service, snapshot, "ring", pacing, ds.duration_s);
  print_service_summary(block);
  return obs.finish("drive", snapshot, nullptr, &block);
}

void usage() {
  std::cout <<
      "usage: scenario_cli [<command>] [--flag value ...]\n"
      "  classroom  --size N --policy meeting-room|brute-force|aggregate|static|none\n"
      "             --passby R --seed S\n"
      "  twocell    --window T --pqos P --rule probabilistic|static|none\n"
      "             --guard G --duration D --seed S\n"
      "  fig4       --hours H --users N --seed S\n"
      "  maxmin     --links L --conns C --seed S\n"
      "  campus     --policy dispatcher|aggregate|brute-force|static|none\n"
      "             --attendees N --squatters M --replications R --seed S\n"
      "             (default command when only flags are given)\n"
      "  campus --shards K   sharded multi-cell corridor (K worker threads;\n"
      "             --cells N --portables P --hours H --hop-ms T --seed S\n"
      "             --batch B windows per barrier dispatch, 0=adaptive;\n"
      "             metrics are byte-identical for any K and B)\n"
      "  campus-scale --cells N --portables M --duration S --tick T --seed S\n"
      "             --engine soa|naive   (grid campus scaling harness; reports\n"
      "             events/s and bytes-per-portable at up to 1000x100k)\n"
      "  campus-scale --shards K   the same grid campus as one sharded-runner\n"
      "             domain per cell (K worker threads, --batch B as above;\n"
      "             soa engine only; byte-identical for any K and B)\n"
      "  faults     --topology twocell|campus --drop P --flaps F --crashes C\n"
      "             --stop T --horizon H --replications R --threads W --seed S\n"
      "             (convergence-under-faults harness: lossy control plane +\n"
      "              random outage/crash timeline, safety + reconvergence check)\n"
      "  serve      --socket PATH [--cells N --slo-p99-us T --queue-cap Q\n"
      "             --retry-after-us T --adapt-every N --deadline S]\n"
      "             (always-on admission service on an AF_UNIX socket; runs\n"
      "              until a Shutdown request or the --deadline backstop)\n"
      "  drive      --transport ring|socket --pacing virtual|wall\n"
      "             --arrivals poisson|trace --rate R --duration S --seed S\n"
      "             --portables N [--socket PATH --trace-in PATH --shutdown 1]\n"
      "             (open-loop load driver; ring+virtual is deterministic,\n"
      "              socket drives a separately started `serve`; the report\n"
      "              gains a schema-v3 `service` block)\n"
      "fault injection (twocell, campus):\n"
      "  --faults P            drop each admission probe with probability P\n"
      "  --fault-retries N     probe attempts before degrading to rejection\n"
      "adaptation loop (campus, not with --shards or checkpoints):\n"
      "  --adapt-loop 1        run N adaptive packet streams in the meeting room\n"
      "                        (source -> dual token-bucket shaper -> VC link ->\n"
      "                        lossy hop); measured loss/delay windows drive\n"
      "                        renegotiation and max-min re-division; the report\n"
      "                        gains a schema-v4 `adaptation` block\n"
      "  --adapt-flows N       adaptive streams (default 4)\n"
      "  --adapt-fault P       Gilbert-Elliott burst loss probability during the\n"
      "                        fault window (default 0.8; 0 disables the fault)\n"
      "  --adapt-fault-start M fault window start, minutes (default 60)\n"
      "  --adapt-fault-stop M  fault window end, minutes (default 100)\n"
      "checkpoint/restore (campus):\n"
      "  --checkpoint-out PATH freeze the day at --checkpoint-at MIN (default 60)\n"
      "  --checkpoint-in PATH  resume a frozen day; same flags -> identical output\n"
      "checkpoint/restore (faults, needs --faults-start T > 0):\n"
      "  --faults-start T      fault-free warm phase until T seconds (--stop and\n"
      "                        --horizon then count from the barrier)\n"
      "  --checkpoint-out PATH write the warm, seed-independent image\n"
      "  --checkpoint-in PATH  run one fault variant from a warm image\n"
      "  --fork 1              sweep replications fork from one shared warm image\n"
      "observability (any command):\n"
      "  --metrics-json PATH   versioned run report with the metrics snapshot\n"
      "  --trace-out PATH      Chrome trace_event JSON (chrome://tracing, Perfetto)\n"
      "  --profile 1           wall-clock profile: phase table on stdout, a\n"
      "                        `profile` block in the v2 report, and (sharded\n"
      "                        runs) per-shard wall lanes in the trace\n"
      "  --progress SECS       stderr heartbeat every SECS wall seconds\n"
      "                        (campus --shards K and campus-scale)\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  // Leading flags with no subcommand: default to the campus scenario.
  const bool bare_flags = std::strncmp(argv[1], "--", 2) == 0;
  const std::string command = bare_flags ? "campus" : argv[1];
  const Flags flags(argc, argv, bare_flags ? 1 : 2);
  ObsSession obs(flags);
  if (obs.flag_error) return 2;
  if (command == "classroom") return run_classroom_cmd(flags, obs);
  if (command == "twocell") return run_twocell_cmd(flags, obs);
  if (command == "fig4") return run_fig4_cmd(flags, obs);
  if (command == "maxmin") return run_maxmin_cmd(flags, obs);
  if (command == "campus") return run_campus_cmd(flags, obs);
  if (command == "campus-scale") return run_campus_scale_cmd(flags, obs);
  if (command == "faults") return run_faults_cmd(flags, obs);
  if (command == "serve") return run_serve_cmd(flags, obs);
  if (command == "drive") return run_drive_cmd(flags, obs);
  usage();
  return 2;
}
