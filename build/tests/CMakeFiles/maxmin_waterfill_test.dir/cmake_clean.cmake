file(REMOVE_RECURSE
  "CMakeFiles/maxmin_waterfill_test.dir/maxmin_waterfill_test.cc.o"
  "CMakeFiles/maxmin_waterfill_test.dir/maxmin_waterfill_test.cc.o.d"
  "maxmin_waterfill_test"
  "maxmin_waterfill_test.pdb"
  "maxmin_waterfill_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxmin_waterfill_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
