#include "profiles/universe.h"

#include <cassert>

namespace imrm::profiles {

Universe::Universe(const mobility::CellMap& map, std::size_t zone_count) : map_(&map) {
  assert(zone_count > 0);
  servers_.reserve(zone_count);
  for (std::size_t z = 0; z < zone_count; ++z) {
    servers_.emplace_back(net::ZoneId{static_cast<net::ZoneId::underlying>(z)});
  }
  for (const mobility::Cell& cell : map.cells()) {
    assert(cell.zone.value() < zone_count && "cell assigned to a missing zone");
    (void)cell;
  }
}

void Universe::record_handoff(const mobility::HandoffEvent& event) {
  const net::ZoneId from_zone = map_->cell(event.from).zone;
  const net::ZoneId to_zone = map_->cell(event.to).zone;

  // The portable's profile must reside with the zone it is leaving; migrate
  // it there first if it was born elsewhere (first sighting) or left behind.
  const auto res_it = residence_.find(event.portable);
  if (res_it == residence_.end()) {
    residence_[event.portable] = from_zone;
  } else if (res_it->second != from_zone) {
    if (auto profile = servers_[res_it->second.value()].extract_portable(event.portable)) {
      servers_[from_zone.value()].adopt_portable(std::move(*profile));
    }
    res_it->second = from_zone;
    ++migrations_;
  }

  // Record with the departing zone's server (it owns the cell profile of
  // `from` and, at this instant, the portable profile).
  servers_[from_zone.value()].record_handoff(event);

  // Crossing a zone boundary migrates the portable profile onward.
  if (to_zone != from_zone) {
    if (auto profile = servers_[from_zone.value()].extract_portable(event.portable)) {
      servers_[to_zone.value()].adopt_portable(std::move(*profile));
    }
    residence_[event.portable] = to_zone;
    ++migrations_;
  }
}

net::ZoneId Universe::residence(net::PortableId portable) const {
  const auto it = residence_.find(portable);
  return it == residence_.end() ? net::ZoneId::invalid() : it->second;
}

const CellProfile* Universe::cell_profile(net::CellId cell) const {
  return servers_[map_->cell(cell).zone.value()].cell_profile(cell);
}

const PortableProfile* Universe::portable_profile(net::PortableId portable) const {
  const net::ZoneId zone = residence(portable);
  if (!zone.is_valid()) return nullptr;
  return servers_[zone.value()].portable_profile(portable);
}

void assign_zones_round_robin(mobility::CellMap& map, std::size_t zones) {
  assert(zones > 0);
  const std::size_t per_zone = (map.size() + zones - 1) / zones;
  for (const mobility::Cell& cell : map.cells()) {
    map.cell(cell.id).zone =
        net::ZoneId{static_cast<net::ZoneId::underlying>(cell.id.value() / per_zone)};
  }
}

}  // namespace imrm::profiles
