// Three-level next-cell prediction (Section 6).
//
//  Level 1: the portable profile's next-predicted-cell for the portable's
//           (previous, current) state.
//  Level 2: the cell profile — if a neighboring office lists the portable as
//           a regular occupant, nominate that office; otherwise the
//           aggregate handoff history of the current cell.
//  Level 3: no information — the caller falls back to the default advance
//           reservation algorithm (Section 6.3).
#pragma once

#include <optional>
#include <string>

#include "mobility/floorplan.h"
#include "mobility/portable.h"
#include "profiles/cell_profile.h"
#include "profiles/portable_profile.h"
#include "profiles/profile_source.h"

namespace imrm::prediction {

using mobility::CellId;
using net::PortableId;

enum class PredictionLevel {
  kPortableProfile,  // level 1
  kOfficeOccupancy,  // level 2a
  kCellAggregate,    // level 2b
  kNone,             // level 3: use the default algorithm
};

[[nodiscard]] std::string to_string(PredictionLevel level);

struct Prediction {
  std::optional<CellId> next_cell;
  PredictionLevel level = PredictionLevel::kNone;
};

class ThreeLevelPredictor {
 public:
  ThreeLevelPredictor(const mobility::CellMap& map, const profiles::ProfileSource& source)
      : map_(&map), server_(&source) {}

  /// Predicts the next cell for `portable` currently in `current`, having
  /// previously been in `previous` (may be invalid for a fresh portable).
  [[nodiscard]] Prediction predict(PortableId portable, CellId previous,
                                   CellId current) const;

  /// Convenience overload reading the state from a Portable record.
  [[nodiscard]] Prediction predict(const mobility::Portable& p) const {
    return predict(p.id, p.previous_cell, p.current_cell);
  }

 private:
  const mobility::CellMap* map_;
  const profiles::ProfileSource* server_;
};

}  // namespace imrm::prediction
