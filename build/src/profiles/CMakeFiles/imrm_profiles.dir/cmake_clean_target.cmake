file(REMOVE_RECURSE
  "libimrm_profiles.a"
)
