// QoS model: loose bounds and the (sigma, rho) traffic envelope.
//
// Section 5.1: a new connection specifies lower and upper bounds on
// bandwidth [b_min, b_max], an end-to-end delay bound d, a delay-jitter
// bound sigma-bar, and a maximum packet-loss probability p_e. Traffic is
// leaky-bucket constrained with burst parameter sigma and largest packet
// size L_max.
//
// Units: bandwidth in bits/second, burst and packet sizes in bits, delay in
// seconds, probabilities dimensionless.
#pragma once

#include <cassert>

namespace imrm::qos {

using BitsPerSecond = double;
using Bits = double;
using Seconds = double;

[[nodiscard]] constexpr BitsPerSecond kbps(double v) { return v * 1e3; }
[[nodiscard]] constexpr BitsPerSecond mbps(double v) { return v * 1e6; }
[[nodiscard]] constexpr Bits bytes(double v) { return v * 8.0; }

/// The negotiated bandwidth range. The service is "guaranteed" at b_min and
/// best-effort beyond it (Section 2.1).
struct BandwidthRange {
  BitsPerSecond b_min = 0.0;
  BitsPerSecond b_max = 0.0;

  [[nodiscard]] constexpr bool valid() const {
    return b_min > 0.0 && b_max >= b_min;
  }
  /// The adaptable headroom b_max - b_min that conflict resolution divides.
  [[nodiscard]] constexpr BitsPerSecond headroom() const { return b_max - b_min; }
  [[nodiscard]] constexpr bool contains(BitsPerSecond b) const {
    return b >= b_min && b <= b_max;
  }
};

/// Leaky-bucket traffic envelope (sigma_j, rho) with largest packet L_max.
struct TrafficEnvelope {
  Bits sigma = 0.0;    // maximum burst
  Bits l_max = 0.0;    // largest packet size

  [[nodiscard]] constexpr bool valid() const { return sigma >= 0.0 && l_max > 0.0; }
};

/// Full QoS request carried in the forward pass of admission control.
struct QosRequest {
  BandwidthRange bandwidth;
  Seconds delay_bound = 0.0;       // d: upper bound on end-to-end delay
  Seconds jitter_bound = 0.0;      // sigma-bar: end-to-end delay jitter bound
  double loss_bound = 0.0;         // p_e: max packet-loss probability
  TrafficEnvelope traffic;

  [[nodiscard]] constexpr bool valid() const {
    return bandwidth.valid() && delay_bound > 0.0 && jitter_bound > 0.0 &&
           loss_bound >= 0.0 && loss_bound <= 1.0 && traffic.valid();
  }
};

/// Whether the requesting portable is static or mobile; Section 3.4.2 drives
/// both the reverse-pass allocation (static gets b_min + stamped excess,
/// mobile stays at b_min) and advance-reservation behaviour.
enum class MobilityClass { kStatic, kMobile };

/// Scheduling discipline at intermediate nodes (Table 2 footnotes 6 and 7):
/// work-conserving WFQ or non-work-conserving RCSP with b*-RJ regulators.
enum class Scheduler { kWfq, kRcsp };

}  // namespace imrm::qos
