#include "maxmin/waterfill.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace imrm::maxmin {

WaterfillResult waterfill(const Problem& problem) {
  assert(problem.valid());
  const std::size_t n_conn = problem.connections.size();
  const std::size_t n_link = problem.links.size();

  WaterfillResult result;
  result.rates.assign(n_conn, 0.0);
  result.bottleneck_of.assign(n_conn, kDemandLimited);

  const auto by_link = problem.connections_by_link();
  std::vector<bool> active(n_conn, true);
  std::size_t active_count = n_conn;

  // Progressive filling: every active connection grows at the same rate, so
  // all active connections share a common level. Each round computes the
  // largest uniform increment before a link saturates or a demand is met,
  // applies it, and freezes the affected connections.
  constexpr double kEps = 1e-12;
  while (active_count > 0) {
    // Residual capacity and active-connection count per link.
    double best_inc = std::numeric_limits<double>::infinity();
    LinkIndex best_link = kDemandLimited;
    for (LinkIndex li = 0; li < n_link; ++li) {
      double load = 0.0;
      std::size_t n_active = 0;
      for (ConnIndex ci : by_link[li]) {
        load += result.rates[ci];
        if (active[ci]) ++n_active;
      }
      if (n_active == 0) continue;
      const double resid = problem.links[li].excess_capacity - load;
      const double inc = std::max(resid, 0.0) / double(n_active);
      if (inc < best_inc) {
        best_inc = inc;
        best_link = li;
      }
    }

    double best_demand_inc = std::numeric_limits<double>::infinity();
    for (ConnIndex ci = 0; ci < n_conn; ++ci) {
      if (!active[ci]) continue;
      const double room = problem.connections[ci].demand - result.rates[ci];
      best_demand_inc = std::min(best_demand_inc, room);
    }

    const double inc = std::min(best_inc, best_demand_inc);
    assert(std::isfinite(inc) && inc >= 0.0);

    for (ConnIndex ci = 0; ci < n_conn; ++ci) {
      if (active[ci]) result.rates[ci] += inc;
    }

    // Freeze demand-satisfied connections first (they are not bottlenecked).
    bool froze_any = false;
    for (ConnIndex ci = 0; ci < n_conn; ++ci) {
      if (!active[ci]) continue;
      if (result.rates[ci] >= problem.connections[ci].demand - kEps) {
        active[ci] = false;
        --active_count;
        result.bottleneck_of[ci] = kDemandLimited;
        froze_any = true;
      }
    }

    // Freeze connections on every link that is now saturated.
    for (LinkIndex li = 0; li < n_link; ++li) {
      double load = 0.0;
      bool has_active = false;
      for (ConnIndex ci : by_link[li]) {
        load += result.rates[ci];
        if (active[ci]) has_active = true;
      }
      if (!has_active) continue;
      if (load >= problem.links[li].excess_capacity - kEps) {
        result.fill_order.push_back(li);
        for (ConnIndex ci : by_link[li]) {
          if (!active[ci]) continue;
          active[ci] = false;
          --active_count;
          result.bottleneck_of[ci] = li;
          froze_any = true;
        }
      }
    }

    // Guard against numeric stalls: if nothing froze, freeze the tightest
    // link's connections explicitly (can only happen through float drift).
    if (!froze_any) {
      assert(best_link != kDemandLimited);
      for (ConnIndex ci : by_link[best_link]) {
        if (!active[ci]) continue;
        active[ci] = false;
        --active_count;
        result.bottleneck_of[ci] = best_link;
      }
      result.fill_order.push_back(best_link);
    }
  }
  return result;
}

std::vector<double> divide_excess(double excess,
                                  const std::vector<double>& headrooms) {
  if (headrooms.empty()) return {};
  Problem problem;
  problem.links.push_back(ProblemLink{std::max(excess, 0.0)});
  for (double headroom : headrooms) {
    ProblemConnection connection;
    connection.path = {0};
    connection.demand = std::max(headroom, 0.0);
    problem.connections.push_back(std::move(connection));
  }
  return waterfill(problem).rates;
}

}  // namespace imrm::maxmin
