// Booking calendar for meeting rooms (Section 6.2.1 / Table 1).
//
// Each meeting specifies a start time T_s, a stop time T_a, and the required
// resources N_m (expressed, as in the paper, as a number of users).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "sim/time.h"

namespace imrm::profiles {

struct Meeting {
  sim::SimTime start;        // T_s
  sim::SimTime stop;         // T_a
  std::size_t attendees = 0; // N_m

  [[nodiscard]] bool valid() const { return stop > start && attendees > 0; }
};

class BookingCalendar {
 public:
  /// Adds a meeting; overlapping meetings are allowed (back-to-back classes).
  void book(Meeting meeting);

  /// The meeting in progress at `t`, if any (earliest-starting on overlap).
  [[nodiscard]] std::optional<Meeting> active_at(sim::SimTime t) const;

  /// The next meeting starting at or after `t`, if any.
  [[nodiscard]] std::optional<Meeting> next_after(sim::SimTime t) const;

  [[nodiscard]] const std::vector<Meeting>& meetings() const { return meetings_; }
  [[nodiscard]] std::size_t size() const { return meetings_.size(); }

 private:
  std::vector<Meeting> meetings_;  // kept sorted by start time
};

}  // namespace imrm::profiles
