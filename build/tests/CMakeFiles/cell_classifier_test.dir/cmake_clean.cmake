file(REMOVE_RECURSE
  "CMakeFiles/cell_classifier_test.dir/cell_classifier_test.cc.o"
  "CMakeFiles/cell_classifier_test.dir/cell_classifier_test.cc.o.d"
  "cell_classifier_test"
  "cell_classifier_test.pdb"
  "cell_classifier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cell_classifier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
