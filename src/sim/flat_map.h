// Open-addressing hash map for unsigned-integer keys.
//
// The protocol and scheduler hot paths key small per-entity state by dense
// integer ids (connection indices, link/conn pairs). std::map costs a
// pointer-chasing tree walk per lookup and std::unordered_map a heap node
// per insert; this table is a single flat array with linear probing and
// backward-shift deletion (no tombstones), so lookups touch one cache line
// in the common case and erase never degrades the table.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

namespace imrm::sim {

template <typename Key, typename Value>
class FlatMap {
  static_assert(std::is_unsigned_v<Key>, "FlatMap keys must be unsigned integers");

 public:
  FlatMap() = default;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Heap footprint of the backing array in bytes (capacity, not just the
  /// occupied cells — this is what the allocator actually holds). Used by
  /// the scale benchmarks' bytes-per-portable accounting.
  [[nodiscard]] std::size_t memory_bytes() const {
    return cells_.capacity() * sizeof(Cell);
  }

  void clear() {
    cells_.assign(cells_.size(), Cell{});
    size_ = 0;
  }

  [[nodiscard]] const Value* find(Key key) const {
    if (cells_.empty()) return nullptr;
    for (std::size_t i = probe_start(key);; i = next(i)) {
      const Cell& cell = cells_[i];
      if (!cell.occupied) return nullptr;
      if (cell.key == key) return &cell.value;
    }
  }

  [[nodiscard]] Value* find(Key key) {
    return const_cast<Value*>(std::as_const(*this).find(key));
  }

  [[nodiscard]] bool contains(Key key) const { return find(key) != nullptr; }

  /// Returns the value for `key`, default-constructing it if absent.
  Value& operator[](Key key) {
    reserve_for_insert();
    for (std::size_t i = probe_start(key);; i = next(i)) {
      Cell& cell = cells_[i];
      if (!cell.occupied) {
        cell.occupied = true;
        cell.key = key;
        cell.value = Value{};
        ++size_;
        return cell.value;
      }
      if (cell.key == key) return cell.value;
    }
  }

  /// Inserts (key, value); returns false (leaving the map unchanged) if the
  /// key is already present.
  bool insert(Key key, Value value) {
    reserve_for_insert();
    for (std::size_t i = probe_start(key);; i = next(i)) {
      Cell& cell = cells_[i];
      if (!cell.occupied) {
        cell.occupied = true;
        cell.key = key;
        cell.value = std::move(value);
        ++size_;
        return true;
      }
      if (cell.key == key) return false;
    }
  }

  /// Removes `key` if present (backward-shift deletion keeps probe chains
  /// intact without tombstones). Returns whether a value was removed.
  bool erase(Key key) {
    if (cells_.empty()) return false;
    std::size_t i = probe_start(key);
    for (;; i = next(i)) {
      if (!cells_[i].occupied) return false;
      if (cells_[i].key == key) break;
    }
    std::size_t hole = i;
    for (std::size_t j = next(hole);; j = next(j)) {
      if (!cells_[j].occupied) break;
      // An entry may backfill the hole only if its home position does not lie
      // strictly between the hole and its current position (circularly).
      const std::size_t home = probe_start(cells_[j].key);
      const bool movable = hole <= j ? (home <= hole || home > j) : (home <= hole && home > j);
      if (movable) {
        cells_[hole] = std::move(cells_[j]);
        hole = j;
      }
    }
    cells_[hole] = Cell{};
    --size_;
    return true;
  }

  /// Visits every (key, value) pair in unspecified order. The callback must
  /// not insert into or erase from the map: backward-shift deletion moves
  /// entries across the scan cursor, so a mid-iteration erase() can skip an
  /// entry that was shifted behind the cursor (or visit one twice). Use
  /// erase_if for conditional removal during a sweep.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Cell& cell : cells_) {
      if (cell.occupied) fn(cell.key, cell.value);
    }
  }

  /// Erases every entry for which pred(key, value) returns true and returns
  /// how many were erased. Safe against the backward-shift relocations that
  /// make erase()-inside-for_each skip entries: after an erase the cursor is
  /// NOT advanced, so an entry shifted into the vacated cell is examined
  /// next. Relocation across the table's wrap-around can move an
  /// already-kept entry behind the cursor and re-present it later, so the
  /// predicate must be pure — it may be invoked more than once per surviving
  /// entry, and must answer consistently.
  template <typename Pred>
  std::size_t erase_if(Pred&& pred) {
    std::size_t erased = 0;
    for (std::size_t i = 0; i < cells_.size();) {
      Cell& cell = cells_[i];
      if (cell.occupied && pred(std::as_const(cell.key), std::as_const(cell.value))) {
        erase(cell.key);  // may backfill cells_[i]; re-examine it
        ++erased;
      } else {
        ++i;
      }
    }
    return erased;
  }

 private:
  struct Cell {
    Key key{};
    Value value{};
    bool occupied = false;
  };

  [[nodiscard]] std::size_t probe_start(Key key) const {
    // splitmix64 finalizer: integer ids are often sequential, so spread them.
    std::uint64_t z = std::uint64_t(key);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return std::size_t(z ^ (z >> 31)) & (cells_.size() - 1);
  }

  [[nodiscard]] std::size_t next(std::size_t i) const { return (i + 1) & (cells_.size() - 1); }

  void reserve_for_insert() {
    if (cells_.empty()) {
      cells_.resize(16);
      return;
    }
    // Max load factor 0.7.
    if ((size_ + 1) * 10 <= cells_.size() * 7) return;
    std::vector<Cell> old = std::move(cells_);
    cells_.assign(old.size() * 2, Cell{});
    std::size_t rehashed = 0;
    for (Cell& cell : old) {
      if (!cell.occupied) continue;
      for (std::size_t i = probe_start(cell.key);; i = next(i)) {
        if (!cells_[i].occupied) {
          cells_[i] = std::move(cell);
          ++rehashed;
          break;
        }
      }
    }
    assert(rehashed == size_);
    (void)rehashed;
  }

  std::vector<Cell> cells_;  // power-of-two length
  std::size_t size_ = 0;
};

}  // namespace imrm::sim
