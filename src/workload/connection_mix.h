// Connection mixes (Section 7.1's workload: each user opens one connection
// of 16 kbps with probability 0.75 or 64 kbps with probability 0.25).
#pragma once

#include <cassert>
#include <vector>

#include "qos/flow_spec.h"
#include "sim/random.h"

namespace imrm::workload {

struct MixEntry {
  qos::BitsPerSecond bandwidth;
  double probability;
};

class ConnectionMix {
 public:
  explicit ConnectionMix(std::vector<MixEntry> entries) : entries_(std::move(entries)) {
    double total = 0.0;
    for (const MixEntry& e : entries_) {
      assert(e.bandwidth > 0.0 && e.probability >= 0.0);
      total += e.probability;
    }
    assert(total > 0.0);
    (void)total;
  }

  [[nodiscard]] qos::BitsPerSecond sample(sim::Rng& rng) const {
    std::vector<double> weights;
    weights.reserve(entries_.size());
    for (const MixEntry& e : entries_) weights.push_back(e.probability);
    return entries_[rng.discrete(weights)].bandwidth;
  }

  /// Expected bandwidth per connection.
  [[nodiscard]] qos::BitsPerSecond mean() const {
    double total_p = 0.0, total_b = 0.0;
    for (const MixEntry& e : entries_) {
      total_p += e.probability;
      total_b += e.probability * e.bandwidth;
    }
    return total_b / total_p;
  }

  [[nodiscard]] const std::vector<MixEntry>& entries() const { return entries_; }

 private:
  std::vector<MixEntry> entries_;
};

/// The paper's Section 7.1 mix: 16 kbps (75%) / 64 kbps (25%); mean 28 kbps.
[[nodiscard]] inline ConnectionMix paper_fig5_mix() {
  return ConnectionMix({{qos::kbps(16), 0.75}, {qos::kbps(64), 0.25}});
}

}  // namespace imrm::workload
