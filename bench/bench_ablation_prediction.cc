// Ablation: how much does each level of the three-level predictor buy?
//
// Replays the Figure 4 mobility workload three times with handicapped
// predictors (full three-level vs cell-profile-only vs none) by comparing
// the per-level accuracies and the implied advance-reservation hit rates.
#include <iostream>

#include "experiments/fig4_mobility.h"
#include "stats/table.h"

using namespace imrm;
using namespace imrm::experiments;

int main() {
  std::cout << "== Ablation: prediction levels on the Figure 4 workload ==\n\n";

  Fig4Config config;
  config.hours = 300.0;
  const Fig4Result r = run_fig4(config);

  Fig4Config aggregate_config = config;
  aggregate_config.prediction = PredictionMode::kAggregateOnly;
  const Fig4Result agg = run_fig4(aggregate_config);

  const double l1_acc = r.portable_profile.accuracy();
  const double l2a_acc = r.office_occupancy.accuracy();
  const double l2b_acc = r.cell_aggregate.accuracy();

  const std::size_t total_pred = r.portable_profile.predictions +
                                 r.office_occupancy.predictions +
                                 r.cell_aggregate.predictions;

  stats::Table table({"predictor", "coverage", "reservation hit rate"});
  auto pct = [](double x) { return stats::fmt(100.0 * x, 1) + "%"; };
  table.add_row({"three-level (paper)",
                 pct(double(r.predictive_reservations) / double(r.total_handoffs)),
                 pct(double(r.predictive_hits) /
                     double(std::max<std::size_t>(r.predictive_reservations, 1)))});
  table.add_row({"cell-aggregate only",
                 pct(double(agg.predictive_reservations) / double(agg.total_handoffs)),
                 pct(double(agg.predictive_hits) /
                     double(std::max<std::size_t>(agg.predictive_reservations, 1)))});
  table.add_row({"no prediction (pool only)", "0.0%", "-"});
  table.print(std::cout);

  std::cout << "\nper-level detail:\n";
  stats::Table detail({"level", "share of predictions", "accuracy"});
  auto share = [&](std::size_t n) {
    return stats::fmt(100.0 * double(n) / double(std::max<std::size_t>(total_pred, 1)), 1) +
           "%";
  };
  detail.add_row({"1: portable profile", share(r.portable_profile.predictions), pct(l1_acc)});
  detail.add_row({"2a: office occupancy", share(r.office_occupancy.predictions), pct(l2a_acc)});
  detail.add_row({"2b: cell aggregate", share(r.cell_aggregate.predictions), pct(l2b_acc)});
  detail.print(std::cout);

  std::cout << "\nThe personal profile dominates both coverage and accuracy once\n"
               "warm; the aggregate level exists to cover cold starts and\n"
               "anonymous users, and the default algorithm (level 3) covers the\n"
               "remaining " << r.unpredicted << " handoffs.\n";
  return 0;
}
