# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("stats")
subdirs("qos")
subdirs("net")
subdirs("maxmin")
subdirs("mobility")
subdirs("profiles")
subdirs("prediction")
subdirs("reservation")
subdirs("workload")
subdirs("experiments")
subdirs("trace")
subdirs("core")
