#include "stats/table.h"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <sstream>

namespace imrm::stats {

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_row_numeric(std::initializer_list<double> values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(fmt(v, precision));
  add_row(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& cells) {
    os << "| ";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(int(widths[c])) << cells[c];
      os << (c + 1 < cells.size() ? " | " : " |");
    }
    os << '\n';
  };

  print_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      if (c + 1 < cells.size()) os << ',';
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

void print_ascii_bars(std::ostream& os, const std::vector<double>& values,
                      const std::vector<std::string>& labels, int max_width) {
  assert(values.size() == labels.size());
  const double peak = values.empty() ? 0.0 : *std::max_element(values.begin(), values.end());
  std::size_t label_width = 0;
  for (const auto& l : labels) label_width = std::max(label_width, l.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    const int bar =
        peak > 0.0 ? int(values[i] / peak * max_width + 0.5) : 0;
    os << std::left << std::setw(int(label_width)) << labels[i] << " | "
       << std::string(std::size_t(bar), '#') << ' ' << fmt(values[i], 1) << '\n';
  }
}

}  // namespace imrm::stats
