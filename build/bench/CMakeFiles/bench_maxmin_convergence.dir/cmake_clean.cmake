file(REMOVE_RECURSE
  "CMakeFiles/bench_maxmin_convergence.dir/bench_maxmin_convergence.cc.o"
  "CMakeFiles/bench_maxmin_convergence.dir/bench_maxmin_convergence.cc.o.d"
  "bench_maxmin_convergence"
  "bench_maxmin_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_maxmin_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
