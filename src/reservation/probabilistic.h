// Probabilistic default reservation algorithm (Section 6.3, eqs. 3-7).
//
// Model: two neighboring cells C_q and C_s, k connection types with integer
// bandwidth demands b_i (in units), each cell of capacity B_c units. Over a
// look-ahead window T:
//   p_s,i = e^{-mu_i T}                  (a type-i connection stays put)
//   p_m,i = (1 - e^{-mu_i T}) h          (it hands off to the neighbor)
// With N_i type-i connections in C_q and s_i in C_s, the number of stayers
// j_i ~ Binomial(N_i, p_s,i) and incoming handoffs l_i ~ Binomial(s_i,
// p_m,i). The non-blocking probability is
//   P_nb = P( sum_i b_i (j_i + l_i) <= B_c )            (eq. 5)
// and admission keeps P_nb >= 1 - P_QOS (eq. 6); the implied reservation is
//   b_resv = B_c - sum_i b_i N_i  (eq. 7, when positive).
//
// The distribution of the weighted binomial sum is computed by exact
// discrete convolution over bandwidth units (no Monte Carlo, no normal
// approximation), truncated at B_c + 1 where the tail mass is lumped.
#pragma once

#include <cstddef>
#include <vector>

namespace imrm::reservation {

/// Exact Binomial(n, p) pmf, indices 0..n.
[[nodiscard]] std::vector<double> binomial_pmf(std::size_t n, double p);

struct TypeParams {
  int bandwidth_units = 1;     // b_min,i in integer units
  double mean_holding = 1.0;   // 1/mu_i
};

class ProbabilisticReservation {
 public:
  struct Config {
    int capacity_units = 40;   // B_c
    double window = 0.05;      // T
    double p_qos = 0.01;       // target handoff-dropping bound P_QOS
    double handoff_prob = 0.7; // h_q
  };

  ProbabilisticReservation(Config config, std::vector<TypeParams> types);

  /// p_s,i and p_m,i for a type.
  [[nodiscard]] double p_stay(std::size_t type) const;
  [[nodiscard]] double p_move(std::size_t type) const;

  /// P_nb (eq. 5) given per-type counts in this cell (N) and the neighbor
  /// (s). Vectors are indexed by type.
  [[nodiscard]] double nonblocking_probability(const std::vector<int>& counts_here,
                                               const std::vector<int>& counts_neighbor) const;

  /// Admission test for a NEW type-`type` connection: would admitting it
  /// (i.e. counts_here[type] + 1) still satisfy P_nb >= 1 - P_QOS, and does
  /// it physically fit?
  [[nodiscard]] bool admit_new(std::size_t type, const std::vector<int>& counts_here,
                               const std::vector<int>& counts_neighbor) const;

  /// Bandwidth currently in use by the given counts, in units.
  [[nodiscard]] int used_units(const std::vector<int>& counts) const;

  /// Eq. 7: reservation implied by the maximum admissible single-type
  /// expansion of `counts_here` (how much of B_c must be left free).
  [[nodiscard]] int reserved_units(const std::vector<int>& counts_here,
                                   const std::vector<int>& counts_neighbor) const;

  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] std::size_t type_count() const { return types_.size(); }
  [[nodiscard]] const TypeParams& type(std::size_t i) const { return types_.at(i); }

 private:
  Config config_;
  std::vector<TypeParams> types_;
};

}  // namespace imrm::reservation
