// Wire-codec tests: round-trips for every message type, the adversarial
// malformed-frame suite (ISSUE 8 satellite), and stream reassembly.
#include "serve/codec.h"

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <vector>

namespace imrm::serve {
namespace {

qos::QosRequest sample_qos() {
  qos::QosRequest q;
  q.bandwidth = {qos::kbps(32.0), qos::kbps(128.0)};
  q.delay_bound = 10.0;
  q.jitter_bound = 10.0;
  q.loss_bound = 0.05;
  q.traffic = {8000.0, 8000.0};
  return q;
}

// ---- round trips ---------------------------------------------------------

TEST(ServeCodec, AdmitRoundTrip) {
  AdmitRequest req;
  req.portable = 42;
  req.cell = 7;
  req.uplink = true;
  req.qos = sample_qos();
  const auto bytes = encode_request(99, req);
  const RequestFrame frame = decode_request(bytes);
  EXPECT_EQ(frame.request_id, 99u);
  const auto& out = std::get<AdmitRequest>(frame.body);
  EXPECT_EQ(out.portable, 42u);
  EXPECT_EQ(out.cell, 7u);
  EXPECT_TRUE(out.uplink);
  EXPECT_DOUBLE_EQ(out.qos.bandwidth.b_min, qos::kbps(32.0));
  EXPECT_DOUBLE_EQ(out.qos.bandwidth.b_max, qos::kbps(128.0));
  EXPECT_DOUBLE_EQ(out.qos.delay_bound, 10.0);
  EXPECT_DOUBLE_EQ(out.qos.jitter_bound, 10.0);
  EXPECT_DOUBLE_EQ(out.qos.loss_bound, 0.05);
  EXPECT_DOUBLE_EQ(out.qos.traffic.sigma, 8000.0);
  EXPECT_DOUBLE_EQ(out.qos.traffic.l_max, 8000.0);
}

TEST(ServeCodec, AllRequestTypesRoundTrip) {
  const Request requests[] = {
      AdmitRequest{1, 2, false, sample_qos()},
      TeardownRequest{3},
      HandoffRequest{4, 5},
      ProbeRequest{},
      ShutdownRequest{},
  };
  std::uint64_t id = 1000;
  for (const Request& request : requests) {
    const auto bytes = encode_request(id, request);
    const RequestFrame frame = decode_request(bytes);
    EXPECT_EQ(frame.request_id, id);
    EXPECT_EQ(frame.body.index(), request.index());
    ++id;
  }
}

TEST(ServeCodec, AllReplyTypesRoundTrip) {
  const Reply replies[] = {
      AdmitReply{true, 0, 64000.0},
      TeardownReply{true},
      HandoffReply{false},
      ProbeReply{10, 8, 2, 1, 3, 16},
      ShutdownReply{},
      ShedReply{2500.0},
      ErrorReply{ServiceError::kUnknownCell, "cell 99 out of range"},
  };
  std::uint64_t id = 5;
  for (const Reply& reply : replies) {
    const auto bytes = encode_reply(id, reply);
    const ReplyFrame frame = decode_reply(bytes);
    EXPECT_EQ(frame.request_id, id);
    EXPECT_EQ(frame.body.index(), reply.index());
    ++id;
  }
  const auto bytes = encode_reply(1, replies[6]);
  const auto err = std::get<ErrorReply>(decode_reply(bytes).body);
  EXPECT_EQ(err.error, ServiceError::kUnknownCell);
  EXPECT_EQ(err.message, "cell 99 out of range");
}

TEST(ServeCodec, ProbeReplyCarriesCounters) {
  const auto bytes = encode_reply(7, ProbeReply{100, 90, 10, 3, 12, 24});
  const auto probe = std::get<ProbeReply>(decode_reply(bytes).body);
  EXPECT_EQ(probe.offered, 100u);
  EXPECT_EQ(probe.processed, 90u);
  EXPECT_EQ(probe.shed, 10u);
  EXPECT_EQ(probe.errors, 3u);
  EXPECT_EQ(probe.queue_depth, 12u);
  EXPECT_EQ(probe.cells, 24u);
}

// ---- adversarial malformed frames ----------------------------------------

std::vector<std::uint8_t> valid_probe_frame(std::uint64_t id = 1) {
  return encode_request(id, ProbeRequest{});
}

CodecErrorCode decode_error(const std::vector<std::uint8_t>& bytes) {
  try {
    (void)decode_request(bytes);
  } catch (const CodecError& e) {
    return e.code();
  }
  ADD_FAILURE() << "frame unexpectedly decoded";
  return CodecErrorCode::kTruncated;
}

TEST(ServeCodecAdversarial, TruncatedHeader) {
  const auto frame = valid_probe_frame();
  for (std::size_t n = 0; n < kHeaderBytes; ++n) {
    std::vector<std::uint8_t> cut(frame.begin(), frame.begin() + std::ptrdiff_t(n));
    EXPECT_EQ(decode_error(cut), CodecErrorCode::kTruncated) << "prefix " << n;
  }
}

TEST(ServeCodecAdversarial, TruncatedPayload) {
  auto frame = encode_request(1, TeardownRequest{9});
  ASSERT_GT(frame.size(), kHeaderBytes);
  frame.pop_back();
  EXPECT_EQ(decode_error(frame), CodecErrorCode::kTruncated);
}

TEST(ServeCodecAdversarial, BadMagic) {
  auto frame = valid_probe_frame();
  frame[0] ^= 0xFF;
  EXPECT_EQ(decode_error(frame), CodecErrorCode::kBadMagic);
}

TEST(ServeCodecAdversarial, BadVersion) {
  auto frame = valid_probe_frame();
  frame[4] = kWireVersion + 1;
  EXPECT_EQ(decode_error(frame), CodecErrorCode::kBadVersion);
}

TEST(ServeCodecAdversarial, OversizedLength) {
  auto frame = valid_probe_frame();
  const std::uint32_t huge = kMaxPayload + 1;
  std::memcpy(frame.data() + 14, &huge, sizeof huge);
  EXPECT_EQ(decode_error(frame), CodecErrorCode::kOversized);
}

TEST(ServeCodecAdversarial, GarbageType) {
  auto frame = valid_probe_frame();
  frame[5] = 0x7E;  // not a MsgType
  EXPECT_EQ(decode_error(frame), CodecErrorCode::kBadType);
}

TEST(ServeCodecAdversarial, ReplyTypeInRequestPosition) {
  const auto reply = encode_reply(1, ShutdownReply{});
  EXPECT_EQ(decode_error(reply), CodecErrorCode::kBadType);
}

TEST(ServeCodecAdversarial, GarbageFlagByte) {
  AdmitRequest req;
  req.qos = sample_qos();
  auto frame = encode_request(1, req);
  frame[kHeaderBytes + 8] = 2;  // uplink flag: only 0/1 admissible
  EXPECT_EQ(decode_error(frame), CodecErrorCode::kBadValue);
}

TEST(ServeCodecAdversarial, NonFiniteQos) {
  AdmitRequest req;
  req.qos = sample_qos();
  req.qos.delay_bound = std::numeric_limits<double>::infinity();
  const auto frame = encode_request(1, req);
  EXPECT_EQ(decode_error(frame), CodecErrorCode::kBadValue);
}

TEST(ServeCodecAdversarial, TrailingPayloadBytes) {
  auto frame = encode_request(1, TeardownRequest{5});
  // Declare one extra payload byte and supply it: layout says 4.
  const std::uint32_t padded = 5;
  std::memcpy(frame.data() + 14, &padded, sizeof padded);
  frame.push_back(0xAA);
  EXPECT_EQ(decode_error(frame), CodecErrorCode::kTrailing);
}

TEST(ServeCodecAdversarial, ExtraBytesAfterFrame) {
  auto frame = valid_probe_frame();
  frame.push_back(0x00);
  EXPECT_EQ(decode_error(frame), CodecErrorCode::kTrailing);
}

TEST(ServeCodecAdversarial, GarbageEnumInErrorReply) {
  auto frame = encode_reply(1, ErrorReply{ServiceError::kNoSession, "x"});
  frame[kHeaderBytes] = kServiceErrorCount;  // one past the last valid code
  try {
    (void)decode_reply(frame);
    FAIL() << "decoded a reply with an out-of-range ServiceError";
  } catch (const CodecError& e) {
    EXPECT_EQ(e.code(), CodecErrorCode::kBadValue);
  }
}

TEST(ServeCodecAdversarial, ErrorCodesHaveNames) {
  for (const auto code :
       {CodecErrorCode::kTruncated, CodecErrorCode::kBadMagic,
        CodecErrorCode::kBadVersion, CodecErrorCode::kOversized,
        CodecErrorCode::kBadType, CodecErrorCode::kBadValue,
        CodecErrorCode::kTrailing}) {
    EXPECT_STRNE(to_string(code), "");
  }
  for (std::uint8_t v = 0; v < kServiceErrorCount; ++v) {
    EXPECT_STRNE(to_string(ServiceError(v)), "");
  }
}

TEST(ServeCodecAdversarial, PeekRequestIdOnGarbage) {
  EXPECT_EQ(peek_request_id({0xDE, 0xAD, 0xBE, 0xEF}), 0u);
  std::vector<std::uint8_t> garbage(64, 0x5A);
  EXPECT_EQ(peek_request_id(garbage), 0u);
  EXPECT_EQ(peek_request_id(valid_probe_frame(77)), 77u);
}

// ---- stream reassembly ---------------------------------------------------

TEST(ServeAssembler, ReassemblesByteAtATime) {
  const auto a = encode_request(1, TeardownRequest{4});
  const auto b = encode_request(2, ProbeRequest{});
  std::vector<std::uint8_t> stream = a;
  stream.insert(stream.end(), b.begin(), b.end());

  FrameAssembler assembler;
  std::vector<std::vector<std::uint8_t>> frames;
  std::vector<std::uint8_t> frame;
  for (const std::uint8_t byte : stream) {
    assembler.feed(&byte, 1);
    while (assembler.next(frame)) frames.push_back(frame);
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0], a);
  EXPECT_EQ(frames[1], b);
  EXPECT_EQ(assembler.buffered(), 0u);
}

TEST(ServeAssembler, FailsFastOnGarbageHeader) {
  FrameAssembler assembler;
  const std::vector<std::uint8_t> garbage(kHeaderBytes, 0x11);
  assembler.feed(garbage.data(), garbage.size());
  std::vector<std::uint8_t> frame;
  EXPECT_THROW((void)assembler.next(frame), CodecError);
}

TEST(ServeAssembler, ManyFramesOneFeed) {
  std::vector<std::uint8_t> stream;
  for (std::uint64_t i = 0; i < 100; ++i) {
    const auto f = encode_request(i, HandoffRequest{std::uint32_t(i), 1});
    stream.insert(stream.end(), f.begin(), f.end());
  }
  FrameAssembler assembler;
  assembler.feed(stream.data(), stream.size());
  std::vector<std::uint8_t> frame;
  std::uint64_t count = 0;
  while (assembler.next(frame)) {
    EXPECT_EQ(decode_request(frame).request_id, count);
    ++count;
  }
  EXPECT_EQ(count, 100u);
}

}  // namespace
}  // namespace imrm::serve
