// Directory of per-cell bandwidth accounts, shared by the advance
// reservation policies and the handoff admission path.
#pragma once

#include <unordered_map>

#include "reservation/cell_bandwidth.h"

namespace imrm::reservation {

class ReservationDirectory {
 public:
  void add_cell(CellId id, qos::BitsPerSecond capacity) {
    cells_.emplace(id, CellBandwidth(capacity));
  }

  [[nodiscard]] CellBandwidth& at(CellId id) { return cells_.at(id); }
  [[nodiscard]] const CellBandwidth& at(CellId id) const { return cells_.at(id); }
  [[nodiscard]] bool has(CellId id) const { return cells_.contains(id); }
  [[nodiscard]] std::size_t size() const { return cells_.size(); }

  /// Wipes every reservation (specific and anonymous) in every cell;
  /// policies that recompute their reservations from scratch call this at
  /// the top of each refresh.
  void clear_reservations() {
    for (auto& [id, cell] : cells_) {
      cell.set_anonymous_reservation(0.0);
      cell.clear_specific_reservations();
    }
  }

  [[nodiscard]] std::unordered_map<CellId, CellBandwidth>& cells() { return cells_; }

 private:
  std::unordered_map<CellId, CellBandwidth> cells_;
};

}  // namespace imrm::reservation
