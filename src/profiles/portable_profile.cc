#include "profiles/portable_profile.h"

#include <algorithm>

namespace imrm::profiles {

const PortableProfile::State* PortableProfile::find(std::uint64_t key) const {
  const auto it = std::lower_bound(
      history_.begin(), history_.end(), key,
      [](const State& s, std::uint64_t k) { return s.key < k; });
  return it != history_.end() && it->key == key ? &*it : nullptr;
}

PortableProfile::State& PortableProfile::find_or_insert(std::uint64_t key) {
  auto it = std::lower_bound(
      history_.begin(), history_.end(), key,
      [](const State& s, std::uint64_t k) { return s.key < k; });
  if (it == history_.end() || it->key != key) {
    it = history_.insert(it, State{key, HistoryWindow(window_)});
  }
  return *it;
}

void PortableProfile::record(CellId previous, CellId current, CellId next) {
  State& state = find_or_insert(pack(previous, current));
  (void)state.window.push(next);  // ring overwrites the oldest when full
}

std::optional<CellId> PortableProfile::predict(CellId previous, CellId current) const {
  const State* state = find(pack(previous, current));
  if (state == nullptr || state->window.empty()) return std::nullopt;
  // Majority vote over the window; ties break toward the most recent, and
  // among equally-counted others toward the smallest cell id (the order the
  // original std::map-based vote scanned candidates in).
  std::vector<CellId> sorted;
  sorted.reserve(state->window.size());
  for (std::size_t i = 0; i < state->window.size(); ++i) {
    sorted.push_back(state->window[i]);
  }
  std::sort(sorted.begin(), sorted.end());
  CellId best = state->window.newest();
  std::size_t best_count = 0;
  for (std::size_t i = 0; i < sorted.size();) {
    std::size_t j = i;
    while (j < sorted.size() && sorted[j] == sorted[i]) ++j;
    if (sorted[i] == best) best_count = j - i;
    i = j;
  }
  for (std::size_t i = 0; i < sorted.size();) {
    std::size_t j = i;
    while (j < sorted.size() && sorted[j] == sorted[i]) ++j;
    if (j - i > best_count) {
      best = sorted[i];
      best_count = j - i;
    }
    i = j;
  }
  return best;
}

std::size_t PortableProfile::observations(CellId previous, CellId current) const {
  const State* state = find(pack(previous, current));
  return state == nullptr ? 0 : state->window.size();
}

std::size_t PortableProfile::memory_bytes() const {
  std::size_t total = history_.capacity() * sizeof(State);
  for (const State& state : history_) {
    total += state.window.memory_bytes();
  }
  return total;
}

void PortableProfile::save_state(sim::CheckpointWriter& w) const {
  w.u32(id_.value());
  w.u64(window_);
  w.u64(history_.size());
  for (const State& state : history_) {
    w.u32(std::uint32_t(state.key >> 32));
    w.u32(std::uint32_t(state.key & 0xffffffffu));
    w.u64(state.window.size());
    for (std::size_t i = 0; i < state.window.size(); ++i) {
      w.u32(state.window[i].value());
    }
  }
}

PortableProfile PortableProfile::restore_state(sim::CheckpointReader& r) {
  const PortableId id{r.u32()};
  PortableProfile profile(id, std::size_t(r.u64()));
  for (std::uint64_t states = r.u64(); states-- > 0;) {
    const CellId previous{r.u32()};
    const CellId current{r.u32()};
    State& state = profile.find_or_insert(pack(previous, current));
    for (std::uint64_t n = r.u64(); n-- > 0;) {
      (void)state.window.push(CellId{r.u32()});
    }
  }
  return profile;
}

}  // namespace imrm::profiles
