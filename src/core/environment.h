// The integrated indoor mobile computing environment (Figure 1).
//
// Ties the substrates together: a cell map with per-cell wireless bandwidth
// accounts, a mobility manager with the static/mobile classifier, a zone
// profile server feeding the three-level next-cell predictor, per-portable
// advance reservations, the B_dyn pool for unforeseen events, and
// QoS-bounds adaptation (max-min redistribution of excess bandwidth among
// static portables' connections).
//
// Control flow on a handoff (Section 4):
//  1. the old base station releases the connection and updates profiles,
//  2. the new base station runs handoff admission — the portable's advance
//     reservation and the anonymous pool are usable; failure drops the
//     connection (counted),
//  3. the portable is re-classified mobile; its next cell is predicted and
//     the minimum bandwidth advance-reserved there,
//  4. adaptation redistributes the excess in both affected cells.
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>

#include "mobility/manager.h"
#include "prediction/predictor.h"
#include "profiles/profile_server.h"
#include "reservation/directory.h"
#include "sim/simulator.h"

namespace imrm::core {

using mobility::CellId;
using net::PortableId;

struct EnvironmentConfig {
  qos::BitsPerSecond cell_capacity = qos::mbps(1.6);
  /// Fraction of capacity set aside as the B_dyn pool (paper: 5% - 20%).
  double b_dyn_fraction = 0.10;
  /// T_th: dwell time after which a portable counts as static.
  sim::Duration static_threshold = sim::Duration::minutes(3);
};

struct EnvironmentStats {
  std::size_t connections_opened = 0;
  std::size_t connections_blocked = 0;   // new-connection admission failures
  std::size_t handoffs = 0;
  std::size_t handoff_drops = 0;         // connections dropped on handoff
  std::size_t adaptations = 0;           // excess redistributions executed
  std::size_t reservations_placed = 0;   // advance reservations made
  std::size_t predictions_correct = 0;   // advance reservation was consumed
};

class Environment {
 public:
  Environment(mobility::CellMap map, sim::Simulator& simulator, EnvironmentConfig config);

  /// Adds a portable in `start`, optionally marking it a regular occupant of
  /// an office (its "home office").
  PortableId add_portable(CellId start, std::optional<CellId> home_office = std::nullopt);

  /// Opens a QoS-bounded connection for the portable in its current cell.
  /// Admission reserves b_min; adaptation may later raise the allocation
  /// toward b_max while the portable is static. Returns success.
  bool open_connection(PortableId portable, qos::BandwidthRange bounds);
  void close_connection(PortableId portable);

  /// Moves the portable to a neighboring cell, running the full handoff
  /// pipeline. Returns false when the portable's connection was dropped.
  bool handoff(PortableId portable, CellId to);

  /// Application-initiated renegotiation (Section 5.3): the network treats
  /// it as a new connection request for the new bounds; on failure the old
  /// connection is kept untouched. Returns success.
  bool renegotiate(PortableId portable, qos::BandwidthRange bounds);

  /// Re-runs classification, advance reservation and adaptation everywhere
  /// (normally invoked by the periodic refresh, exposed for tests).
  void refresh();

  /// Observer fired after every excess re-division in a cell (handoff,
  /// renegotiation, refresh). The adaptation loop's data plane hangs off
  /// this: new grants exist the moment the hook fires, so shapers can be
  /// re-shaped to the enforced rates before another packet moves.
  void set_on_adapt(std::function<void(CellId)> on_adapt) {
    on_adapt_ = std::move(on_adapt);
  }

  // ---- introspection ----------------------------------------------------
  [[nodiscard]] const EnvironmentStats& stats() const { return stats_; }
  [[nodiscard]] qos::BitsPerSecond allocated(PortableId portable) const;
  [[nodiscard]] bool has_connection(PortableId portable) const {
    return connections_.contains(portable);
  }
  [[nodiscard]] qos::MobilityClass classify(PortableId portable) const {
    return mobility_.classify(portable);
  }
  [[nodiscard]] const mobility::CellMap& map() const { return map_; }
  [[nodiscard]] mobility::MobilityManager& mobility() { return mobility_; }
  [[nodiscard]] profiles::ProfileServer& profiles() { return profiles_; }
  [[nodiscard]] const reservation::CellBandwidth& cell(CellId id) const {
    return directory_.at(id);
  }
  [[nodiscard]] sim::Simulator& simulator() { return *simulator_; }
  [[nodiscard]] const prediction::ThreeLevelPredictor& predictor() const {
    return predictor_;
  }

 private:
  struct ConnectionState {
    qos::BandwidthRange bounds;
    qos::BitsPerSecond allocated = 0.0;
    CellId reserved_in = CellId::invalid();  // current advance reservation
  };

  void place_advance_reservation(PortableId portable);
  void cancel_advance_reservation(PortableId portable);
  /// Conflict resolution: squeezes all connections in the cell to b_min and
  /// returns the connection holders present there.
  std::vector<PortableId> squeeze_cell(CellId cell);
  void adapt_cell(CellId cell);
  void adapt_cell_impl(CellId cell);
  void update_b_dyn(CellId cell);

  mobility::CellMap map_;
  sim::Simulator* simulator_;
  EnvironmentConfig config_;
  mobility::MobilityManager mobility_;
  profiles::ProfileServer profiles_;
  prediction::ThreeLevelPredictor predictor_;
  reservation::ReservationDirectory directory_;
  std::unordered_map<PortableId, ConnectionState> connections_;
  std::function<void(CellId)> on_adapt_;
  EnvironmentStats stats_;
};

}  // namespace imrm::core
