// Ablation: ADVERTISE flooding (the "preliminary approach") versus the
// refined initiation policy — the paper claims the refinement
// "significantly reduces the number of overhead messages".
//
// Scenario: a chain of transit links carrying local demand-limited
// connections plus one long connection; the entry bottleneck link's
// capacity changes. Flooding re-advertises every connection at every
// switch an ADVERTISE packet visits; the refined policy only initiates for
// connections whose allocation could actually change.
#include <iostream>

#include "maxmin/problem.h"
#include "maxmin/protocol.h"
#include "maxmin/waterfill.h"
#include "sim/simulator.h"
#include "stats/table.h"

using namespace imrm;
using namespace imrm::maxmin;

namespace {

Problem chain_problem(std::size_t transit_links, int locals_per_link) {
  Problem p;
  p.links.push_back({8.0});  // bottleneck that will be upgraded
  ProblemConnection longest;
  longest.path.push_back(0);
  for (std::size_t i = 1; i <= transit_links; ++i) {
    p.links.push_back({100.0});
    longest.path.push_back(i);
    for (int c = 0; c < locals_per_link; ++c) {
      p.connections.push_back({{i}, 2.0});
    }
  }
  p.connections.push_back(longest);
  p.connections.push_back({{0}, kInfiniteDemand});
  return p;
}

struct Cost {
  std::uint64_t messages;
  std::uint64_t rounds;
  double deviation;
};

Cost run(InitiationPolicy policy, std::size_t transit, int locals) {
  const Problem problem = chain_problem(transit, locals);
  sim::Simulator simulator;
  DistributedProtocol::Config config;
  config.policy = policy;
  DistributedProtocol protocol(simulator, problem, config);
  protocol.start_all();
  protocol.run_to_quiescence();

  const auto before_msgs = protocol.messages_sent();
  const auto before_rounds = protocol.rounds_run();
  protocol.set_link_excess_capacity(0, 14.0);
  protocol.run_to_quiescence();

  Problem upgraded = problem;
  upgraded.links[0].excess_capacity = 14.0;
  const auto optimum = waterfill(upgraded);
  double dev = 0.0;
  for (std::size_t i = 0; i < optimum.rates.size(); ++i) {
    dev = std::max(dev, std::abs(protocol.rates()[i] - optimum.rates[i]));
  }
  return {protocol.messages_sent() - before_msgs,
          protocol.rounds_run() - before_rounds, dev};
}

}  // namespace

int main() {
  std::cout << "== Ablation: flooding vs bottleneck-set initiation (Section 5.3.1) ==\n";
  std::cout << "event: the shared bottleneck link is upgraded 8 -> 14 after "
               "convergence\n\n";

  stats::Table table({"transit links", "locals/link", "flood msgs", "refined msgs",
                      "reduction", "flood rounds", "refined rounds", "max dev (both)"});
  for (std::size_t transit : {4u, 8u, 16u}) {
    for (int locals : {2, 4, 8}) {
      const Cost flood = run(InitiationPolicy::kFlooding, transit, locals);
      const Cost refined = run(InitiationPolicy::kBottleneckSets, transit, locals);
      table.add_row(
          {std::to_string(transit), std::to_string(locals),
           std::to_string(flood.messages), std::to_string(refined.messages),
           stats::fmt(100.0 * (1.0 - double(refined.messages) /
                                         double(std::max<std::uint64_t>(flood.messages, 1))),
                      1) + "%",
           std::to_string(flood.rounds), std::to_string(refined.rounds),
           stats::fmt(std::max(flood.deviation, refined.deviation), 6)});
    }
  }
  table.print(std::cout);
  std::cout << "\nBoth policies land on the same max-min allocation; the refined\n"
               "policy skips the futile re-advertisements of connections that are\n"
               "already at their bottleneck rates.\n";
  return 0;
}
