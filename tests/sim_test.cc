// Unit tests for the discrete-event engine: ordering, cancellation,
// periodic events, deterministic randomness.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "sim/event_queue.h"
#include "sim/flat_map.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace imrm::sim {
namespace {

TEST(SimTime, UnitConversionsRoundTrip) {
  EXPECT_DOUBLE_EQ(SimTime::minutes(10).to_seconds(), 600.0);
  EXPECT_DOUBLE_EQ(SimTime::hours(2).to_minutes(), 120.0);
  EXPECT_DOUBLE_EQ(SimTime::millis(1500).to_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(SimTime::seconds(90).to_minutes(), 1.5);
}

TEST(SimTime, ComparisonAndArithmetic) {
  const SimTime a = SimTime::seconds(1);
  const SimTime b = SimTime::seconds(2);
  EXPECT_LT(a, b);
  EXPECT_EQ(a + a, b);
  EXPECT_EQ(b - a, a);
  EXPECT_LT(a, SimTime::infinity());
}

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(SimTime::seconds(3), [&] { order.push_back(3); });
  q.schedule(SimTime::seconds(1), [&] { order.push_back(1); });
  q.schedule(SimTime::seconds(2), [&] { order.push_back(2); });
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(SimTime::seconds(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().callback();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[std::size_t(i)], i);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(SimTime::seconds(1), [&] { fired = true; });
  q.cancel(id);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), SimTime::infinity());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelAfterFireIsNoOp) {
  EventQueue q;
  const EventId id = q.schedule(SimTime::seconds(1), [] {});
  q.pop().callback();
  q.cancel(id);  // must not crash or corrupt
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.schedule(SimTime::seconds(1), [] {});
  q.schedule(SimTime::seconds(2), [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_DOUBLE_EQ(q.next_time().to_seconds(), 2.0);
}

TEST(EventQueue, CancelTwiceIsNoOp) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(SimTime::seconds(1), [&] { fired = true; });
  q.schedule(SimTime::seconds(2), [] {});
  q.cancel(id);
  q.cancel(id);  // second cancel must not touch any other event
  EXPECT_EQ(q.size(), 1u);
  EXPECT_DOUBLE_EQ(q.next_time().to_seconds(), 2.0);
  EXPECT_FALSE(fired);
}

TEST(EventQueue, StaleHandleCannotCancelRecycledSlot) {
  EventQueue q;
  const EventId stale = q.schedule(SimTime::seconds(1), [] {});
  q.pop().callback();  // fires; the slot returns to the free-list
  bool fired = false;
  // The next schedule recycles the slot; the stale handle must not reach it.
  q.schedule(SimTime::seconds(2), [&] { fired = true; });
  q.cancel(stale);
  ASSERT_EQ(q.size(), 1u);
  q.pop().callback();
  EXPECT_TRUE(fired);
}

TEST(EventQueue, EqualTimesFifoSurvivesInterleavedCancellations) {
  EventQueue q;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 64; ++i) {
    ids.push_back(q.schedule(SimTime::seconds(1), [&order, i] { order.push_back(i); }));
  }
  // Cancel every third event; the survivors must still fire in FIFO order.
  for (int i = 0; i < 64; i += 3) q.cancel(ids[std::size_t(i)]);
  while (!q.empty()) q.pop().callback();
  std::vector<int> expected;
  for (int i = 0; i < 64; ++i) {
    if (i % 3 != 0) expected.push_back(i);
  }
  EXPECT_EQ(order, expected);
}

TEST(EventQueue, MatchesReferenceModelUnderRandomChurn) {
  // Differential test of the indexed 4-ary heap against a sorted reference.
  EventQueue q;
  std::map<std::tuple<double, std::uint64_t>, int> reference;
  std::vector<std::pair<EventId, std::tuple<double, std::uint64_t>>> live;
  std::vector<int> fired;
  std::uint64_t seq = 0;
  Rng rng(2024);
  int tag = 0;
  for (int step = 0; step < 5000; ++step) {
    const double action = rng.uniform();
    if (action < 0.5 || q.empty()) {
      const double at = double(rng.uniform_int(0, 50));
      const int t = tag++;
      const EventId id = q.schedule(SimTime::seconds(at), [&fired, t] { fired.push_back(t); });
      reference[{at, seq}] = t;
      live.emplace_back(id, std::tuple<double, std::uint64_t>{at, seq});
      ++seq;
    } else if (action < 0.75 && !live.empty()) {
      const std::size_t victim = std::size_t(rng.uniform_int(0, int(live.size()) - 1));
      q.cancel(live[victim].first);
      reference.erase(live[victim].second);
      live.erase(live.begin() + long(victim));
    } else {
      ASSERT_FALSE(reference.empty());
      const auto expected = reference.begin();
      auto [time, callback] = q.pop();
      EXPECT_DOUBLE_EQ(time.to_seconds(), std::get<0>(expected->first));
      callback();
      ASSERT_FALSE(fired.empty());
      EXPECT_EQ(fired.back(), expected->second);
      std::erase_if(live, [&](const auto& e) { return e.second == expected->first; });
      reference.erase(expected);
    }
    ASSERT_EQ(q.size(), reference.size());
  }
}

TEST(EventQueue, SlotStorageBoundedOverLongRuns) {
  // Regression for the lazy-deletion design whose callbacks_/cancelled_
  // vectors grew by one entry per scheduled event forever: a million events
  // through a queue with bounded pendings must not grow slot storage beyond
  // the peak pending count.
  EventQueue q;
  constexpr int kTotal = 1'000'000;
  constexpr std::size_t kMaxPending = 64;
  int fired = 0;
  double now = 0.0;
  for (int i = 0; i < kTotal; ++i) {
    q.schedule(SimTime::seconds(now + 1.0 + double(i % 7)), [&fired] { ++fired; });
    if (q.size() >= kMaxPending) {
      auto event = q.pop();
      now = event.time.to_seconds();
      event.callback();
    }
  }
  while (!q.empty()) {
    auto event = q.pop();
    event.callback();
  }
  EXPECT_EQ(fired, kTotal);
  EXPECT_LE(q.slot_capacity(), kMaxPending);
}

TEST(EventQueue, CancelReleasesCapturedState) {
  EventQueue q;
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> watch = token;
  const EventId id = q.schedule(SimTime::seconds(1), [held = std::move(token)] { (void)held; });
  EXPECT_FALSE(watch.expired());
  q.cancel(id);
  EXPECT_TRUE(watch.expired());  // capture destroyed eagerly on cancel
}

TEST(EventQueue, HoldsMoveOnlyCaptures) {
  // std::function rejects move-only captures; the SBO callback must not.
  EventQueue q;
  auto payload = std::make_unique<int>(41);
  int seen = 0;
  q.schedule(SimTime::seconds(1),
             [p = std::move(payload), &seen]() mutable { seen = *p + 1; });
  q.pop().callback();
  EXPECT_EQ(seen, 42);
}

TEST(FlatMap, InsertFindEraseChurn) {
  sim::FlatMap<std::uint64_t, int> map;
  std::map<std::uint64_t, int> reference;
  Rng rng(11);
  for (int step = 0; step < 20000; ++step) {
    const std::uint64_t key = std::uint64_t(rng.uniform_int(0, 300));
    const double action = rng.uniform();
    if (action < 0.5) {
      map[key] = step;
      reference[key] = step;
    } else if (action < 0.8) {
      EXPECT_EQ(map.erase(key), reference.erase(key) == 1);
    } else {
      const int* found = map.find(key);
      const auto it = reference.find(key);
      ASSERT_EQ(found != nullptr, it != reference.end());
      if (found) EXPECT_EQ(*found, it->second);
    }
    ASSERT_EQ(map.size(), reference.size());
  }
  std::size_t visited = 0;
  map.for_each([&](std::uint64_t key, int value) {
    ++visited;
    const auto it = reference.find(key);
    ASSERT_NE(it, reference.end());
    EXPECT_EQ(it->second, value);
  });
  EXPECT_EQ(visited, reference.size());
}

TEST(Simulator, NowAdvancesWithEvents) {
  Simulator sim;
  SimTime seen = SimTime::zero();
  sim.at(SimTime::seconds(5), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen.to_seconds(), 5.0);
  EXPECT_DOUBLE_EQ(sim.now().to_seconds(), 5.0);
}

TEST(Simulator, RunUntilHonorsHorizon) {
  Simulator sim;
  int fired = 0;
  sim.at(SimTime::seconds(1), [&] { ++fired; });
  sim.at(SimTime::seconds(10), [&] { ++fired; });
  EXPECT_EQ(sim.run_until(SimTime::seconds(5)), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now().to_seconds(), 5.0);  // clock advances to horizon
  EXPECT_EQ(sim.run_until(SimTime::seconds(20)), 1u);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  std::vector<double> times;
  sim.at(SimTime::seconds(1), [&] {
    times.push_back(sim.now().to_seconds());
    sim.after(Duration::seconds(2), [&] { times.push_back(sim.now().to_seconds()); });
  });
  sim.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 3.0);
}

TEST(Simulator, EveryRepeatsUntilHorizon) {
  Simulator sim;
  int ticks = 0;
  sim.every(Duration::seconds(1), SimTime::seconds(5.5), [&] { ++ticks; });
  sim.run();
  EXPECT_EQ(ticks, 5);  // t = 1..5
}

TEST(Simulator, StepFiresExactlyOne) {
  Simulator sim;
  int fired = 0;
  sim.at(SimTime::seconds(1), [&] { ++fired; });
  sim.at(SimTime::seconds(2), [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(fired, 2);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(42);
  Rng child = a.fork();
  // The fork must not replay the parent's sequence.
  Rng reference(42);
  (void)reference.engine()();  // fork consumed one draw
  bool all_equal = true;
  for (int i = 0; i < 50; ++i) {
    if (child.uniform() != reference.uniform()) all_equal = false;
  }
  // Not asserting exact relationship — only that child is a valid stream
  // distinct from a fresh seed-42 stream's first draws.
  Rng fresh(42);
  bool same_as_fresh = true;
  Rng child2 = Rng(42).fork();
  for (int i = 0; i < 50; ++i) {
    if (child2.uniform() != fresh.uniform()) same_as_fresh = false;
  }
  EXPECT_FALSE(same_as_fresh);
  (void)all_equal;
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(7);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential_mean(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(Rng, ExponentialRateMatches) {
  Rng rng(7);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential_rate(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, DiscreteRespectsWeights) {
  Rng rng(99);
  const std::vector<double> weights{1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.discrete(weights)];
  EXPECT_NEAR(counts[0] / double(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / double(n), 0.3, 0.015);
  EXPECT_NEAR(counts[2] / double(n), 0.6, 0.015);
}

TEST(Rng, DiscreteAllZeroWeightsFallsBackToFirst) {
  Rng rng(1);
  const std::vector<double> weights{0.0, 0.0};
  EXPECT_EQ(rng.discrete(weights), 0u);
}

TEST(Rng, TruncatedNormalStaysInBounds) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.truncated_normal(0.0, 10.0, -1.0, 1.0);
    EXPECT_GE(x, -1.0);
    EXPECT_LE(x, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.uniform_int(2, 4);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 4);
    saw_lo |= v == 2;
    saw_hi |= v == 4;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

}  // namespace
}  // namespace imrm::sim
