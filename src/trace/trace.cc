#include "trace/trace.h"

namespace imrm::trace {

std::string to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kHandoff: return "handoff";
    case EventKind::kAdmission: return "admission";
    case EventKind::kBlock: return "block";
    case EventKind::kDrop: return "drop";
    case EventKind::kAdaptation: return "adaptation";
    case EventKind::kReservation: return "reservation";
    case EventKind::kCustom: return "custom";
  }
  return "unknown";
}

std::size_t TraceRecorder::count(EventKind kind) const {
  std::size_t n = 0;
  events_.for_each([kind, &n](const TraceEvent& e) { n += e.kind == kind ? 1 : 0; });
  return n;
}

std::vector<TraceEvent> TraceRecorder::between(sim::SimTime from, sim::SimTime to) const {
  std::vector<TraceEvent> out;
  events_.for_each([&](const TraceEvent& e) {
    if (e.time >= from && e.time < to) out.push_back(e);
  });
  return out;
}

namespace {

std::string id_or_dash(net::CellId id) {
  return id.is_valid() ? std::to_string(id.value()) : "-";
}

std::string escape_csv(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string quoted = "\"";
  for (char c : s) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace

void TraceRecorder::write_csv(std::ostream& os) const {
  os << "time_s,kind,portable,from,to,value,note\n";
  events_.for_each([&os](const TraceEvent& e) {
    os << e.time.to_seconds() << ',' << to_string(e.kind) << ','
       << (e.portable.is_valid() ? std::to_string(e.portable.value()) : "-") << ','
       << id_or_dash(e.from) << ',' << id_or_dash(e.to) << ',' << e.value << ','
       << escape_csv(e.note) << '\n';
  });
}

void attach(TraceRecorder& recorder, mobility::MobilityManager& manager) {
  manager.on_handoff([&recorder](const mobility::HandoffEvent& event) {
    recorder.handoff(event.time, event.portable, event.from, event.to);
  });
}

}  // namespace imrm::trace
