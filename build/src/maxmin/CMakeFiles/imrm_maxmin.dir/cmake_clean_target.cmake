file(REMOVE_RECURSE
  "libimrm_maxmin.a"
)
