// Cell profile (Table 1): aggregated handoff history of ALL portables
// through a cell — for each previous cell, the probability of handing off
// to each neighbor, over the last N_pC handoffs.
//
// Unlike the portable profile this is not user-specific: it aggregates the
// cell's population behaviour and serves as the second prediction level.
#pragma once

#include <cstddef>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "net/ids.h"
#include "sim/checkpoint.h"

namespace imrm::profiles {

using net::CellId;

class CellProfile {
 public:
  explicit CellProfile(CellId id, std::size_t window = 128) : id_(id), window_(window) {}

  /// Records that a portable which had arrived from `previous` handed off
  /// to `next`.
  void record(CellId previous, CellId next);

  struct NeighborShare {
    CellId neighbor;
    double probability;
  };

  /// Handoff distribution over next cells given the previous cell; empty
  /// when the (previous) state was never observed.
  [[nodiscard]] std::vector<NeighborShare> distribution(CellId previous) const;

  /// Distribution aggregated over all previous cells (used when the previous
  /// cell is unknown, and by lounges which ignore individual behaviour).
  [[nodiscard]] std::vector<NeighborShare> aggregate_distribution() const;

  /// Most likely next cell given the previous cell, or nullopt.
  [[nodiscard]] std::optional<CellId> predict(CellId previous) const;

  [[nodiscard]] std::size_t observations(CellId previous) const;
  [[nodiscard]] std::size_t total_observations() const;
  [[nodiscard]] CellId id() const { return id_; }

  // --- checkpoint/restore (ISSUE 4) ---------------------------------------
  void save_state(sim::CheckpointWriter& w) const;
  [[nodiscard]] static CellProfile restore_state(sim::CheckpointReader& r);

 private:
  CellId id_;
  std::size_t window_;
  std::map<CellId, std::deque<CellId>> by_previous_;
};

}  // namespace imrm::profiles
