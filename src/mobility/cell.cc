#include "mobility/cell.h"

#include <algorithm>

namespace imrm::mobility {

std::string to_string(CellClass c) {
  switch (c) {
    case CellClass::kOffice: return "office";
    case CellClass::kCorridor: return "corridor";
    case CellClass::kMeetingRoom: return "meeting-room";
    case CellClass::kCafeteria: return "cafeteria";
    case CellClass::kLounge: return "lounge";
  }
  return "unknown";
}

bool Cell::is_neighbor(CellId other) const {
  return std::find(neighbors.begin(), neighbors.end(), other) != neighbors.end();
}

bool Cell::is_occupant(PortableId p) const {
  return std::find(occupants.begin(), occupants.end(), p) != occupants.end();
}

}  // namespace imrm::mobility
