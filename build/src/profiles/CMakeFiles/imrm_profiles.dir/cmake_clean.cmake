file(REMOVE_RECURSE
  "CMakeFiles/imrm_profiles.dir/booking.cc.o"
  "CMakeFiles/imrm_profiles.dir/booking.cc.o.d"
  "CMakeFiles/imrm_profiles.dir/cell_profile.cc.o"
  "CMakeFiles/imrm_profiles.dir/cell_profile.cc.o.d"
  "CMakeFiles/imrm_profiles.dir/portable_profile.cc.o"
  "CMakeFiles/imrm_profiles.dir/portable_profile.cc.o.d"
  "CMakeFiles/imrm_profiles.dir/profile_server.cc.o"
  "CMakeFiles/imrm_profiles.dir/profile_server.cc.o.d"
  "CMakeFiles/imrm_profiles.dir/universe.cc.o"
  "CMakeFiles/imrm_profiles.dir/universe.cc.o.d"
  "libimrm_profiles.a"
  "libimrm_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imrm_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
