// Shared deterministic workload for the campus-at-scale engines.
//
// The monolithic tick engines (campus_scale.cc, ISSUE 6) and the sharded
// per-cell engine (campus_scale_sharded.cc, ISSUE 10) run the SAME
// class-schedule day: every portable gets a home office, a meeting room, one
// class period, a connection-bandwidth demand, and four milestones (appear,
// enter room, leave room, depart) laid out stride-4 in one arena.
// Generation is a pure function of (config, floorplan): one sim::Rng(seed)
// stream consumed in a fixed order, whether or not the optional
// ProfileServer calendar is booked — so engines sharing this workload differ
// only in how they execute it, never in what day they simulate.
//
// The grid-routing helpers live here too: both engines walk portables along
// identical scale_grid_floorplan paths (columns vertically, row 0 as the
// horizontal backbone), and the sharded engine routes its advance
// reservations with the same function.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mobility/floorplan.h"

namespace imrm::profiles {
class ProfileServer;
}  // namespace imrm::profiles

namespace imrm::experiments {
struct CampusScaleConfig;
}  // namespace imrm::experiments

namespace imrm::experiments::detail {

/// One attendee's day, laid out as a fixed stride-4 slice of the shared
/// milestone arena: appear, enter room, leave room, depart.
struct ScaleMilestone {
  double time = 0.0;
  enum Kind : std::uint8_t { kAppear, kEnter, kLeave, kDepart } kind = kAppear;
};
inline constexpr std::size_t kScaleMilestonesPerPortable = 4;

/// The full generated day, indexed by portable id. All vectors have exactly
/// `config.portables` entries (the arena has stride-4 that many).
struct ScaleWorkload {
  std::vector<std::uint32_t> home;       ///< home office cell
  std::vector<std::uint32_t> room;       ///< assigned meeting room
  std::vector<double> demand;            ///< connection bandwidth (bps)
  std::vector<ScaleMilestone> arena;     ///< stride kScaleMilestonesPerPortable

  [[nodiscard]] std::size_t memory_bytes() const {
    return home.capacity() * sizeof(std::uint32_t) +
           room.capacity() * sizeof(std::uint32_t) +
           demand.capacity() * sizeof(double) +
           arena.capacity() * sizeof(ScaleMilestone);
  }
};

/// Generates the day. When `calendar` is non-null every (room, period)
/// meeting is also booked there — the monolith's predictor reads it; the
/// sharded engine passes nullptr. The RNG draw sequence is identical either
/// way (booking draws nothing).
[[nodiscard]] ScaleWorkload generate_scale_workload(
    const CampusScaleConfig& config, const mobility::CellMap& map,
    profiles::ProfileServer* calendar);

/// Grid side length used by scale_grid_floorplan: ceil(sqrt(cells)).
[[nodiscard]] std::size_t scale_grid_side(std::size_t cells);

/// One routing step on the grid: climb to the row-0 backbone, traverse it
/// horizontally, then descend the target column. Every step is a valid edge
/// of scale_grid_floorplan by construction.
[[nodiscard]] inline std::uint32_t route_next(std::size_t side,
                                              std::uint32_t from,
                                              std::uint32_t to) {
  const std::uint32_t r = from / std::uint32_t(side), c = from % std::uint32_t(side);
  const std::uint32_t tc = to % std::uint32_t(side);
  if (c != tc) {
    if (r != 0) return from - std::uint32_t(side);  // climb to the backbone
    return c < tc ? from + 1 : from - 1;
  }
  const std::uint32_t tr = to / std::uint32_t(side);
  return r < tr ? from + std::uint32_t(side) : from - std::uint32_t(side);
}

/// The cell just outside a room on the walk in — where an attendee waits
/// between arrive_corridor and enter_room.
[[nodiscard]] inline std::uint32_t gateway_of(std::size_t side, std::uint32_t room) {
  return room >= side ? room - std::uint32_t(side) : room;
}

}  // namespace imrm::experiments::detail
