file(REMOVE_RECURSE
  "CMakeFiles/bench_cell_learning.dir/bench_cell_learning.cc.o"
  "CMakeFiles/bench_cell_learning.dir/bench_cell_learning.cc.o.d"
  "bench_cell_learning"
  "bench_cell_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cell_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
