#include "experiments/fig4_mobility.h"

#include <memory>
#include <vector>

#include "mobility/movement.h"
#include "obs/metrics.h"
#include "profiles/profile_server.h"
#include "sim/simulator.h"

namespace imrm::experiments {

using mobility::CellId;
using net::PortableId;

Fig4Result run_fig4(const Fig4Config& config) {
  mobility::CellMap map = mobility::fig4_environment();
  const mobility::Fig4Cells cells = mobility::fig4_cells(map);

  sim::Simulator simulator;
  mobility::MobilityManager manager(map, simulator, sim::Duration::minutes(3));
  profiles::ProfileServer server{net::ZoneId{0}};

  if (config.tracer) simulator.set_tracer(config.tracer);
  if (config.metrics) manager.bind_metrics(*config.metrics);

  sim::Rng rng(config.seed);

  // Users: one faculty member (occupant of A), three students (occupants of
  // B), plus anonymous background walkers.
  const PortableId faculty = manager.add_portable(cells.c);
  map.add_occupant(cells.a, faculty);
  std::vector<PortableId> students;
  for (int i = 0; i < 3; ++i) {
    const PortableId s = manager.add_portable(cells.c);
    map.add_occupant(cells.b, s);
    students.push_back(s);
  }
  std::vector<PortableId> others;
  for (int i = 0; i < config.background_users; ++i) {
    others.push_back(manager.add_portable(cells.c));
  }

  const prediction::ThreeLevelPredictor predictor(map, server);
  Fig4Result result;

  // Prediction listener runs BEFORE the profile update so each handoff is
  // predicted from the history available at that moment (online evaluation).
  manager.on_handoff([&](const mobility::HandoffEvent& event) {
    ++result.total_handoffs;
    result.brute_force_reservations += map.cell(event.from).neighbors.size();
    prediction::Prediction p;
    if (config.prediction == PredictionMode::kThreeLevel) {
      p = predictor.predict(event.portable, event.prev_of_from, event.from);
    } else {
      // Ablation: only the cell's aggregate history (no personal profile,
      // no office-occupancy shortcut).
      if (const profiles::CellProfile* profile = server.cell_profile(event.from)) {
        if (const auto next = profile->predict(event.prev_of_from)) {
          p = {next, prediction::PredictionLevel::kCellAggregate};
        }
      }
    }
    if (!p.next_cell.has_value()) {
      ++result.unpredicted;
    } else {
      ++result.predictive_reservations;
      const bool hit = *p.next_cell == event.to;
      if (hit) ++result.predictive_hits;
      auto& level = p.level == prediction::PredictionLevel::kPortableProfile
                        ? result.portable_profile
                        : p.level == prediction::PredictionLevel::kOfficeOccupancy
                              ? result.office_occupancy
                              : result.cell_aggregate;
      ++level.predictions;
      if (hit) ++level.correct;
    }
  });
  manager.on_handoff(
      [&](const mobility::HandoffEvent& event) { server.record_handoff(event); });

  // Fan-out counting at the measured decision point: handoffs out of D for
  // portables that arrived in D from C.
  manager.on_handoff([&](const mobility::HandoffEvent& event) {
    if (event.from != cells.d || event.prev_of_from != cells.c) return;
    Fanout* fanout = &result.others;
    if (event.portable == faculty) {
      fanout = &result.faculty;
    } else {
      for (PortableId s : students) {
        if (event.portable == s) fanout = &result.students;
      }
    }
    if (event.to == cells.a) {
      ++fanout->to_a;
    } else if (event.to == cells.e) {
      ++fanout->toward_b;
    } else if (event.to == cells.f || event.to == cells.g) {
      ++fanout->to_fg;
    }
  });

  // Movers with the calibrated weights.
  mobility::MarkovMover::Config mover_config;
  mover_config.mean_dwell = sim::Duration::minutes(config.mean_dwell_minutes);
  mover_config.horizon = sim::SimTime::hours(config.hours);

  std::vector<std::unique_ptr<mobility::MarkovMover>> movers;
  auto add_mover = [&](PortableId p, const mobility::Fig4Weights& weights) {
    movers.push_back(std::make_unique<mobility::MarkovMover>(
        manager, mobility::fig4_transition_table(map, weights), mover_config, rng.fork()));
    movers.back()->start(p);
  };
  add_mover(faculty, mobility::fig4_faculty_weights());
  for (PortableId s : students) add_mover(s, mobility::fig4_student_weights());
  for (PortableId o : others) add_mover(o, mobility::fig4_other_weights());

  simulator.run();
  if (config.metrics) {
    obs::Registry& m = *config.metrics;
    simulator.collect_metrics(m);
    m.counter("fig4.predictions").add(result.portable_profile.predictions +
                                      result.office_occupancy.predictions +
                                      result.cell_aggregate.predictions);
    m.counter("fig4.predictions_correct").add(result.portable_profile.correct +
                                              result.office_occupancy.correct +
                                              result.cell_aggregate.correct);
    m.counter("fig4.unpredicted").add(result.unpredicted);
    m.counter("fig4.total_handoffs").add(result.total_handoffs);
  }
  return result;
}

}  // namespace imrm::experiments
