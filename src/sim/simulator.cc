#include "sim/simulator.h"

#include <cassert>
#include <memory>
#include <utility>

namespace imrm::sim {

EventId Simulator::at(SimTime t, EventQueue::Callback cb) {
  assert(t >= now_ && "cannot schedule in the past");
  return queue_.schedule(t, std::move(cb));
}

EventId Simulator::after(Duration delay, EventQueue::Callback cb) {
  return at(now_ + delay, std::move(cb));
}

EventId Simulator::every(Duration period, SimTime horizon, EventQueue::Callback cb) {
  assert(period > Duration::zero());
  // Shared callback that reschedules itself until the horizon.
  auto shared = std::make_shared<EventQueue::Callback>(std::move(cb));
  struct Repeater {
    Simulator* self;
    Duration period;
    SimTime horizon;
    std::shared_ptr<EventQueue::Callback> body;
    void operator()() const {
      (*body)();
      const SimTime next = self->now() + period;
      if (next <= horizon) self->at(next, Repeater{*this});
    }
  };
  return at(now_ + period, Repeater{this, period, horizon, std::move(shared)});
}

std::uint64_t Simulator::run_until(SimTime horizon) {
  std::uint64_t count = 0;
  while (!queue_.empty() && queue_.next_time() <= horizon) {
    auto [time, callback] = queue_.pop();
    now_ = time;
    callback();
    ++count;
    ++fired_;
  }
  // Advance the clock to the horizon so successive run_until calls with
  // increasing horizons behave like continuous time, but never rewind and
  // never jump to infinity on a drained queue.
  if (horizon != SimTime::infinity() && horizon > now_) now_ = horizon;
  return count;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto [time, callback] = queue_.pop();
  now_ = time;
  callback();
  ++fired_;
  return true;
}

}  // namespace imrm::sim
