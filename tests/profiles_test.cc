// Tests for portable/cell profiles, the zone profile server, and the
// booking calendar (Table 1 / Section 3.4.3).
#include <gtest/gtest.h>

#include "mobility/floorplan.h"
#include "profiles/booking.h"
#include "profiles/cell_profile.h"
#include "profiles/portable_profile.h"
#include "profiles/profile_server.h"

namespace imrm::profiles {
namespace {

using net::PortableId;
using sim::Duration;
using sim::SimTime;

constexpr CellId kA{0}, kB{1}, kC{2}, kD{3};

TEST(PortableProfile, PredictsMajorityNext) {
  PortableProfile profile(PortableId{1});
  profile.record(kC, kD, kA);
  profile.record(kC, kD, kA);
  profile.record(kC, kD, kB);
  EXPECT_EQ(profile.predict(kC, kD), kA);
}

TEST(PortableProfile, UnknownStateYieldsNothing) {
  PortableProfile profile(PortableId{1});
  profile.record(kC, kD, kA);
  EXPECT_FALSE(profile.predict(kD, kC).has_value());
  EXPECT_FALSE(profile.predict(kA, kB).has_value());
}

TEST(PortableProfile, WindowEvictsOldObservations) {
  PortableProfile profile(PortableId{1}, /*window=*/4);
  for (int i = 0; i < 4; ++i) profile.record(kC, kD, kA);
  // Four newer observations push the old majority out entirely.
  for (int i = 0; i < 4; ++i) profile.record(kC, kD, kB);
  EXPECT_EQ(profile.observations(kC, kD), 4u);
  EXPECT_EQ(profile.predict(kC, kD), kB);
}

TEST(PortableProfile, TieBreaksTowardRecency) {
  PortableProfile profile(PortableId{1});
  profile.record(kC, kD, kA);
  profile.record(kC, kD, kB);
  EXPECT_EQ(profile.predict(kC, kD), kB);  // most recent wins the 1-1 tie
}

TEST(CellProfile, DistributionPerPreviousCell) {
  CellProfile profile(kD);
  profile.record(kC, kA);
  profile.record(kC, kA);
  profile.record(kC, kB);
  profile.record(kA, kC);  // different previous cell

  const auto dist = profile.distribution(kC);
  ASSERT_EQ(dist.size(), 2u);
  double pa = 0.0, pb = 0.0;
  for (const auto& share : dist) {
    if (share.neighbor == kA) pa = share.probability;
    if (share.neighbor == kB) pb = share.probability;
  }
  EXPECT_NEAR(pa, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(pb, 1.0 / 3.0, 1e-12);
}

TEST(CellProfile, AggregateSpansAllPrevious) {
  CellProfile profile(kD);
  profile.record(kC, kA);
  profile.record(kA, kB);
  const auto agg = profile.aggregate_distribution();
  ASSERT_EQ(agg.size(), 2u);
  for (const auto& share : agg) EXPECT_NEAR(share.probability, 0.5, 1e-12);
  EXPECT_EQ(profile.total_observations(), 2u);
}

TEST(CellProfile, PredictPicksMostLikely) {
  CellProfile profile(kD);
  for (int i = 0; i < 9; ++i) profile.record(kC, kA);
  profile.record(kC, kB);
  EXPECT_EQ(profile.predict(kC), kA);
  EXPECT_FALSE(profile.predict(kB).has_value());
}

TEST(CellProfile, WindowBounded) {
  CellProfile profile(kD, /*window=*/8);
  for (int i = 0; i < 20; ++i) profile.record(kC, kA);
  EXPECT_EQ(profile.observations(kC), 8u);
}

// ISSUE 8 satellite: the per-state windows are fixed-capacity rings, so
// sustained handoff churn must not grow a profile past its warm footprint.
TEST(PortableProfile, ChurnPinsMemoryFootprint) {
  constexpr std::uint32_t kCells = 8;
  PortableProfile profile(PortableId{1}, /*window=*/16);
  auto churn = [&](int from, int to) {
    for (int i = from; i < to; ++i) {
      const CellId prev{std::uint32_t(i * 7 % kCells)};
      const CellId cur{std::uint32_t(i * 13 % kCells)};
      const CellId next{std::uint32_t(i * 31 % kCells)};
      profile.record(prev, cur, next);
    }
  };
  // Warm up far enough to see every (previous, current) state.
  churn(0, 2000);
  const std::size_t warm_bytes = profile.memory_bytes();
  ASSERT_GT(warm_bytes, 0u);
  // 20k handoffs of further churn: byte-for-byte no growth, not just "small".
  churn(2000, 20000);
  EXPECT_EQ(profile.memory_bytes(), warm_bytes);
  EXPECT_LT(warm_bytes, 64u * 1024u);
}

TEST(CellProfile, ChurnPinsMemoryFootprint) {
  constexpr std::uint32_t kCells = 8;
  CellProfile profile(kD, /*window=*/32);
  auto churn = [&](int from, int to) {
    for (int i = from; i < to; ++i) {
      profile.record(CellId{std::uint32_t(i * 7 % kCells)},
                     CellId{std::uint32_t(i * 31 % kCells)});
    }
  };
  churn(0, 2000);
  const std::size_t warm_bytes = profile.memory_bytes();
  ASSERT_GT(warm_bytes, 0u);
  churn(2000, 20000);
  EXPECT_EQ(profile.memory_bytes(), warm_bytes);
  // Tallies stay consistent with the bounded windows.
  EXPECT_EQ(profile.total_observations(), 8u * 32u);
  double sum = 0.0;
  for (const auto& share : profile.aggregate_distribution()) {
    sum += share.probability;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

// The ring must serialize oldest-first, i.e. exactly the byte stream the
// vector-backed window produced: a churned profile survives a checkpoint
// round trip with identical bytes and predictions.
TEST(PortableProfile, ChurnedCheckpointRoundTrip) {
  PortableProfile profile(PortableId{4}, /*window=*/4);
  for (int i = 0; i < 100; ++i) {
    profile.record(CellId{std::uint32_t(i % 3)}, CellId{std::uint32_t(i % 5)},
                   CellId{std::uint32_t(i % 7)});
  }
  sim::CheckpointWriter w;
  profile.save_state(w);
  const std::vector<std::uint8_t> bytes = w.take();
  sim::CheckpointReader r(bytes);
  const PortableProfile restored = PortableProfile::restore_state(r);

  sim::CheckpointWriter w2;
  restored.save_state(w2);
  EXPECT_EQ(w2.take(), bytes);
  for (std::uint32_t prev = 0; prev < 3; ++prev) {
    for (std::uint32_t cur = 0; cur < 5; ++cur) {
      EXPECT_EQ(restored.predict(CellId{prev}, CellId{cur}),
                profile.predict(CellId{prev}, CellId{cur}));
    }
  }
}

TEST(CellProfile, ChurnedCheckpointRoundTrip) {
  CellProfile profile(kA, /*window=*/4);
  for (int i = 0; i < 100; ++i) {
    profile.record(CellId{std::uint32_t(i % 3)}, CellId{std::uint32_t(i % 7)});
  }
  sim::CheckpointWriter w;
  profile.save_state(w);
  const std::vector<std::uint8_t> bytes = w.take();
  sim::CheckpointReader r(bytes);
  const CellProfile restored = CellProfile::restore_state(r);

  sim::CheckpointWriter w2;
  restored.save_state(w2);
  EXPECT_EQ(w2.take(), bytes);
  EXPECT_EQ(restored.total_observations(), profile.total_observations());
  for (std::uint32_t prev = 0; prev < 3; ++prev) {
    EXPECT_EQ(restored.predict(CellId{prev}), profile.predict(CellId{prev}));
  }
}

TEST(ProfileServer, RecordUpdatesBothProfiles) {
  ProfileServer server(net::ZoneId{0});
  server.record_handoff(PortableId{1}, kC, kD, kA);
  ASSERT_NE(server.portable_profile(PortableId{1}), nullptr);
  EXPECT_EQ(server.portable_profile(PortableId{1})->predict(kC, kD), kA);
  ASSERT_NE(server.cell_profile(kD), nullptr);
  EXPECT_EQ(server.cell_profile(kD)->predict(kC), kA);
}

TEST(ProfileServer, UnknownEntitiesReturnNull) {
  ProfileServer server(net::ZoneId{0});
  EXPECT_EQ(server.portable_profile(PortableId{9}), nullptr);
  EXPECT_EQ(server.cell_profile(kD), nullptr);
}

TEST(ProfileServer, TracksCacheTraffic) {
  ProfileServer server(net::ZoneId{0});
  server.record_handoff(PortableId{1}, kC, kD, kA);
  server.record_handoff(PortableId{1}, kD, kA, kD);
  server.refresh_on_static(PortableId{1});
  EXPECT_EQ(server.traffic().handoff_updates, 2u);
  EXPECT_EQ(server.traffic().profile_transfers, 2u);
  EXPECT_EQ(server.traffic().refreshes, 1u);
}

TEST(ProfileServer, HandoffEventOverload) {
  ProfileServer server(net::ZoneId{0});
  mobility::HandoffEvent event;
  event.portable = PortableId{3};
  event.prev_of_from = kC;
  event.from = kD;
  event.to = kB;
  server.record_handoff(event);
  EXPECT_EQ(server.portable_profile(PortableId{3})->predict(kC, kD), kB);
}

TEST(ProfileServer, ConfigurableWindows) {
  ProfileServer server(net::ZoneId{0}, ProfileServer::Config{2, 4});
  for (int i = 0; i < 10; ++i) server.record_handoff(PortableId{1}, kC, kD, kA);
  EXPECT_EQ(server.portable_profile(PortableId{1})->observations(kC, kD), 2u);
  EXPECT_EQ(server.cell_profile(kD)->observations(kC), 4u);
}

TEST(BookingCalendar, ActiveAndNextQueries) {
  BookingCalendar calendar;
  calendar.book({SimTime::minutes(60), SimTime::minutes(110), 35});
  calendar.book({SimTime::minutes(120), SimTime::minutes(170), 55});

  EXPECT_FALSE(calendar.active_at(SimTime::minutes(50)).has_value());
  ASSERT_TRUE(calendar.active_at(SimTime::minutes(70)).has_value());
  EXPECT_EQ(calendar.active_at(SimTime::minutes(70))->attendees, 35u);
  EXPECT_FALSE(calendar.active_at(SimTime::minutes(115)).has_value());

  ASSERT_TRUE(calendar.next_after(SimTime::minutes(115)).has_value());
  EXPECT_EQ(calendar.next_after(SimTime::minutes(115))->attendees, 55u);
  EXPECT_FALSE(calendar.next_after(SimTime::minutes(180)).has_value());
}

TEST(BookingCalendar, KeepsMeetingsSortedByStart) {
  BookingCalendar calendar;
  calendar.book({SimTime::minutes(120), SimTime::minutes(170), 2});
  calendar.book({SimTime::minutes(60), SimTime::minutes(110), 1});
  ASSERT_EQ(calendar.size(), 2u);
  EXPECT_EQ(calendar.meetings()[0].attendees, 1u);
  EXPECT_EQ(calendar.meetings()[1].attendees, 2u);
}

TEST(BookingCalendar, MeetingValidity) {
  EXPECT_TRUE((Meeting{SimTime::minutes(0), SimTime::minutes(10), 5}.valid()));
  EXPECT_FALSE((Meeting{SimTime::minutes(10), SimTime::minutes(10), 5}.valid()));
  EXPECT_FALSE((Meeting{SimTime::minutes(0), SimTime::minutes(10), 0}.valid()));
}

}  // namespace
}  // namespace imrm::profiles
