
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profiles/booking.cc" "src/profiles/CMakeFiles/imrm_profiles.dir/booking.cc.o" "gcc" "src/profiles/CMakeFiles/imrm_profiles.dir/booking.cc.o.d"
  "/root/repo/src/profiles/cell_profile.cc" "src/profiles/CMakeFiles/imrm_profiles.dir/cell_profile.cc.o" "gcc" "src/profiles/CMakeFiles/imrm_profiles.dir/cell_profile.cc.o.d"
  "/root/repo/src/profiles/portable_profile.cc" "src/profiles/CMakeFiles/imrm_profiles.dir/portable_profile.cc.o" "gcc" "src/profiles/CMakeFiles/imrm_profiles.dir/portable_profile.cc.o.d"
  "/root/repo/src/profiles/profile_server.cc" "src/profiles/CMakeFiles/imrm_profiles.dir/profile_server.cc.o" "gcc" "src/profiles/CMakeFiles/imrm_profiles.dir/profile_server.cc.o.d"
  "/root/repo/src/profiles/universe.cc" "src/profiles/CMakeFiles/imrm_profiles.dir/universe.cc.o" "gcc" "src/profiles/CMakeFiles/imrm_profiles.dir/universe.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mobility/CMakeFiles/imrm_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/imrm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/qos/CMakeFiles/imrm_qos.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/imrm_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/imrm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
