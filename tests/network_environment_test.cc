// Integration tests for the full wired/wireless environment of Section 4:
// end-to-end Table 2 admission over the backbone, multicast warm-up,
// advance reservation on wireless links, handoff re-routing, max-min
// adaptation across the network, and renegotiation.
#include <gtest/gtest.h>

#include "core/network_environment.h"
#include "mobility/floorplan.h"

namespace imrm::core {
namespace {

using mobility::Fig4Cells;
using qos::kbps;
using sim::Duration;
using sim::SimTime;

qos::QosRequest stream_request(qos::BitsPerSecond b_min, qos::BitsPerSecond b_max) {
  qos::QosRequest r;
  r.bandwidth = {b_min, b_max};
  r.delay_bound = 10.0;
  r.jitter_bound = 10.0;
  r.loss_bound = 0.05;
  r.traffic = {8000.0, 8000.0};
  return r;
}

class NetworkEnvironmentTest : public ::testing::Test {
 protected:
  NetworkEnvironmentTest() { rebuild({}); }

  void rebuild(BackboneConfig config) {
    config_ = config;
    env_ = std::make_unique<NetworkEnvironment>(mobility::fig4_environment(), simulator_,
                                                config);
    cells_ = mobility::fig4_cells(env_->map());
  }

  sim::Simulator simulator_;
  BackboneConfig config_;
  std::unique_ptr<NetworkEnvironment> env_;
  Fig4Cells cells_;
};

TEST_F(NetworkEnvironmentTest, TopologyWiresEveryCell) {
  // server + core + areas + (bs + air) per cell.
  EXPECT_GE(env_->topology().node_count(), 2 + 2 * env_->map().size());
  for (const auto& cell : env_->map().cells()) {
    const auto link = env_->wireless_link(cell.id);
    EXPECT_TRUE(env_->topology().link(link).wireless);
    EXPECT_DOUBLE_EQ(env_->topology().link(link).capacity, qos::mbps(1.6));
  }
}

TEST_F(NetworkEnvironmentTest, OpenConnectionRunsEndToEndAdmission) {
  const auto p = env_->add_portable(cells_.d);
  ASSERT_TRUE(env_->open_connection(p, stream_request(kbps(64), kbps(256))));
  EXPECT_EQ(env_->stats().connections_opened, 1u);
  EXPECT_DOUBLE_EQ(env_->allocated(p), kbps(64));  // mobile: pinned at b_min
  // The route crosses the wireless link of D.
  const auto& link = env_->network().link(env_->wireless_link(cells_.d));
  EXPECT_DOUBLE_EQ(link.sum_b_min(), kbps(64));
}

TEST_F(NetworkEnvironmentTest, MulticastBranchesWarmNeighbors) {
  const auto p = env_->add_portable(cells_.d);
  ASSERT_TRUE(env_->open_connection(p, stream_request(kbps(64), kbps(256))));
  // D has 5 neighbors (C, A, E, F, G); all branches fit on the wired side.
  EXPECT_EQ(env_->stats().multicast_branches_admitted, 5u);
  EXPECT_EQ(env_->stats().multicast_branches_rejected, 0u);
}

TEST_F(NetworkEnvironmentTest, MulticastCanBeDisabled) {
  BackboneConfig config;
  config.enable_multicast = false;
  rebuild(config);
  const auto p = env_->add_portable(cells_.d);
  ASSERT_TRUE(env_->open_connection(p, stream_request(kbps(64), kbps(256))));
  EXPECT_EQ(env_->stats().multicast_branches_admitted, 0u);
}

TEST_F(NetworkEnvironmentTest, HandoffIntoWarmCellCounts) {
  const auto p = env_->add_portable(cells_.c);
  ASSERT_TRUE(env_->open_connection(p, stream_request(kbps(64), kbps(256))));
  ASSERT_TRUE(env_->handoff(p, cells_.d));
  EXPECT_EQ(env_->stats().warm_handoffs, 1u);  // D's branch was set up from C
  EXPECT_EQ(env_->stats().handoff_drops, 0u);
  EXPECT_TRUE(env_->has_connection(p));
}

TEST_F(NetworkEnvironmentTest, AdvanceReservationFollowsPrediction) {
  const auto p = env_->add_portable(cells_.c, /*home_office=*/cells_.a);
  ASSERT_TRUE(env_->open_connection(p, stream_request(kbps(64), kbps(256))));
  ASSERT_TRUE(env_->handoff(p, cells_.d));
  // Occupancy prediction: reservation sits on A's wireless link.
  EXPECT_DOUBLE_EQ(env_->network().link(env_->wireless_link(cells_.a)).advance_reserved(),
                   kbps(64));
  ASSERT_TRUE(env_->handoff(p, cells_.a));
  EXPECT_EQ(env_->stats().reservations_consumed, 1u);
  EXPECT_DOUBLE_EQ(env_->network().link(env_->wireless_link(cells_.a)).advance_reserved(),
                   0.0);
}

TEST_F(NetworkEnvironmentTest, StaticPortableUpgradedByAdaptation) {
  const auto p = env_->add_portable(cells_.d);
  ASSERT_TRUE(env_->open_connection(p, stream_request(kbps(64), kbps(1024))));
  simulator_.run_until(SimTime::minutes(10));  // past T_th
  env_->adapt();
  // Alone on a 1.6 Mbps cell: upgraded to b_max (wired links are ample).
  EXPECT_DOUBLE_EQ(env_->allocated(p), kbps(1024));
}

TEST_F(NetworkEnvironmentTest, AdaptationSplitsExcessMaxMin) {
  const auto p1 = env_->add_portable(cells_.d);
  const auto p2 = env_->add_portable(cells_.d);
  ASSERT_TRUE(env_->open_connection(p1, stream_request(kbps(100), kbps(10000))));
  ASSERT_TRUE(env_->open_connection(p2, stream_request(kbps(100), kbps(400))));
  simulator_.run_until(SimTime::minutes(10));
  env_->adapt();
  // Wireless excess = 1600 - 200 = 1400 kbps. p2 demand-limited at +300;
  // p1 takes the remaining 1100: 100 + 1100 = 1200.
  EXPECT_NEAR(env_->allocated(p2), kbps(400), 1.0);
  EXPECT_NEAR(env_->allocated(p1), kbps(1200), 1.0);
}

TEST_F(NetworkEnvironmentTest, HandoffDropsWhenTargetSaturated) {
  // Saturate D's wireless link with static occupants at fixed bounds.
  std::vector<PortableId> squatters;
  for (int i = 0; i < 25; ++i) {
    const auto q = env_->add_portable(cells_.d);
    ASSERT_TRUE(env_->open_connection(q, stream_request(kbps(64), kbps(64))));
    squatters.push_back(q);
  }
  const auto p = env_->add_portable(cells_.c);
  ASSERT_TRUE(env_->open_connection(p, stream_request(kbps(64), kbps(64))));
  EXPECT_FALSE(env_->handoff(p, cells_.d));
  EXPECT_EQ(env_->stats().handoff_drops, 1u);
  EXPECT_FALSE(env_->has_connection(p));
}

TEST_F(NetworkEnvironmentTest, ReservationBlocksNewButAdmitsPredictedHandoff) {
  // Fill D to one slot short; a foreign reservation then blocks newcomers
  // but the predicted portable still gets in.
  for (int i = 0; i < 24; ++i) {
    const auto q = env_->add_portable(cells_.d);
    ASSERT_TRUE(env_->open_connection(q, stream_request(kbps(64), kbps(64))));
  }
  // Predicted mover: home office is... D is a corridor, so use profile
  // learning instead: teach C->D movement history.
  const auto p = env_->add_portable(cells_.c);
  for (int i = 0; i < 3; ++i) env_->profiles().record_handoff(p, cells_.c, cells_.c, cells_.d);
  // (prev=C, cur=C) is this portable's live state after add; the recorded
  // triplets make the predictor nominate D.
  ASSERT_TRUE(env_->open_connection(p, stream_request(kbps(64), kbps(64))));
  EXPECT_DOUBLE_EQ(env_->network().link(env_->wireless_link(cells_.d)).advance_reserved(),
                   kbps(64));

  // A newcomer cannot squeeze in past the reservation...
  const auto late = env_->add_portable(cells_.d);
  EXPECT_FALSE(env_->open_connection(late, stream_request(kbps(64), kbps(64))));
  // ...but the predicted handoff succeeds by consuming it.
  EXPECT_TRUE(env_->handoff(p, cells_.d));
  EXPECT_EQ(env_->stats().reservations_consumed, 1u);
}

TEST_F(NetworkEnvironmentTest, RenegotiationUpAndDown) {
  const auto p = env_->add_portable(cells_.d);
  ASSERT_TRUE(env_->open_connection(p, stream_request(kbps(64), kbps(128))));
  // Application asks for a bigger envelope: fits, so granted.
  EXPECT_TRUE(env_->renegotiate(p, stream_request(kbps(128), kbps(512))));
  simulator_.run_until(SimTime::minutes(10));
  env_->adapt();
  EXPECT_DOUBLE_EQ(env_->allocated(p), kbps(512));

  // An impossible request is refused and the old connection survives.
  EXPECT_FALSE(env_->renegotiate(p, stream_request(qos::mbps(50), qos::mbps(60))));
  EXPECT_TRUE(env_->has_connection(p));
  env_->adapt();
  EXPECT_DOUBLE_EQ(env_->allocated(p), kbps(512));
}

TEST_F(NetworkEnvironmentTest, CloseReleasesEverything) {
  const auto p = env_->add_portable(cells_.c, cells_.a);
  ASSERT_TRUE(env_->open_connection(p, stream_request(kbps(64), kbps(256))));
  ASSERT_TRUE(env_->handoff(p, cells_.d));
  env_->close_connection(p);
  EXPECT_FALSE(env_->has_connection(p));
  EXPECT_EQ(env_->network().connection_count(), 0u);
  for (const auto& cell : env_->map().cells()) {
    EXPECT_DOUBLE_EQ(env_->network().link(env_->wireless_link(cell.id)).advance_reserved(),
                     0.0);
  }
}

TEST_F(NetworkEnvironmentTest, ConnectionlessPortablesJustMove) {
  const auto p = env_->add_portable(cells_.c);
  EXPECT_TRUE(env_->handoff(p, cells_.d));
  EXPECT_EQ(env_->stats().handoffs, 1u);
  EXPECT_EQ(env_->network().connection_count(), 0u);
}

TEST_F(NetworkEnvironmentTest, PredictedHandoffsAreFasterThanColdOnes) {
  // Occupant of A: the D -> A handoff is predicted (local signaling only);
  // the C -> D handoff is not (end-to-end round trip).
  const auto p = env_->add_portable(cells_.c, /*home_office=*/cells_.a);
  ASSERT_TRUE(env_->open_connection(p, stream_request(kbps(64), kbps(256))));
  ASSERT_TRUE(env_->handoff(p, cells_.d));  // cold
  EXPECT_EQ(env_->stats().e2e_handoffs, 1u);
  const double after_cold = env_->stats().total_handoff_latency_s;
  ASSERT_TRUE(env_->handoff(p, cells_.a));  // warm: reservation in A
  EXPECT_EQ(env_->stats().local_handoffs, 1u);
  const double warm_latency = env_->stats().total_handoff_latency_s - after_cold;
  EXPECT_LT(warm_latency, after_cold);  // local exchange beats the round trip
  // Cold = 2 * hop * path_len (4 hops); warm = 2 * hop.
  EXPECT_NEAR(after_cold, 2.0 * 0.002 * 4.0, 1e-12);
  EXPECT_NEAR(warm_latency, 2.0 * 0.002, 1e-12);
}

TEST_F(NetworkEnvironmentTest, UplinkRoutesReverseDirection) {
  const auto p = env_->add_portable(cells_.d);
  ASSERT_TRUE(env_->open_connection(p, stream_request(kbps(64), kbps(256)),
                                    Direction::kUplink));
  // The uplink consumes the air -> BS direction: the downlink's wireless
  // link (BS -> air) stays empty while its reverse twin carries b_min.
  const auto down = env_->wireless_link(cells_.d);
  const net::LinkId up{down.value() + 1};  // add_duplex allocates the pair
  EXPECT_DOUBLE_EQ(env_->network().link(down).sum_b_min(), 0.0);
  EXPECT_DOUBLE_EQ(env_->network().link(up).sum_b_min(), kbps(64));

  // Handoffs keep the direction.
  ASSERT_TRUE(env_->handoff(p, cells_.e));
  const auto down_e = env_->wireless_link(cells_.e);
  EXPECT_DOUBLE_EQ(env_->network().link(net::LinkId{down_e.value() + 1}).sum_b_min(),
                   kbps(64));
  EXPECT_DOUBLE_EQ(env_->network().link(down_e).sum_b_min(), 0.0);
}

TEST_F(NetworkEnvironmentTest, UplinkAndDownlinkShareNothing) {
  const auto a = env_->add_portable(cells_.d);
  const auto b = env_->add_portable(cells_.d);
  // Both directions can carry a full-capacity minimum simultaneously.
  ASSERT_TRUE(env_->open_connection(a, stream_request(kbps(1500), kbps(1500)),
                                    Direction::kDownlink));
  EXPECT_TRUE(env_->open_connection(b, stream_request(kbps(1500), kbps(1500)),
                                    Direction::kUplink));
}

TEST_F(NetworkEnvironmentTest, MultiZoneProfilesMigrateWithPortables) {
  BackboneConfig config;
  config.zones = 3;
  rebuild(config);
  EXPECT_EQ(env_->universe().zone_count(), 3u);

  // Walk a portable across the whole map: zone crossings migrate its
  // profile, and prediction still works afterwards.
  const auto p = env_->add_portable(cells_.c, cells_.a);
  ASSERT_TRUE(env_->open_connection(p, stream_request(kbps(64), kbps(256))));
  ASSERT_TRUE(env_->handoff(p, cells_.d));
  ASSERT_TRUE(env_->handoff(p, cells_.e));
  ASSERT_TRUE(env_->handoff(p, cells_.b));
  ASSERT_TRUE(env_->handoff(p, cells_.e));
  ASSERT_TRUE(env_->handoff(p, cells_.d));
  EXPECT_GT(env_->universe().migrations(), 0u);
  EXPECT_EQ(env_->stats().profile_migrations, env_->universe().migrations());
  // Wherever the profile resides, it is reachable and remembers the walk.
  ASSERT_NE(env_->universe().portable_profile(p), nullptr);
  EXPECT_EQ(env_->universe().portable_profile(p)->predict(cells_.d, cells_.e), cells_.b);
}

TEST_F(NetworkEnvironmentTest, WiredBottleneckAlsoChecked) {
  // Shrink the wired capacity below the request: admission must reject on
  // the backbone, not only on the air.
  BackboneConfig config;
  config.wired_capacity = kbps(32);
  rebuild(config);
  const auto p = env_->add_portable(cells_.d);
  EXPECT_FALSE(env_->open_connection(p, stream_request(kbps(64), kbps(128))));
  EXPECT_EQ(env_->stats().connections_blocked, 1u);
}

}  // namespace
}  // namespace imrm::core
