#include "workload/channel.h"

#include "obs/metrics.h"

namespace imrm::workload {

void GilbertElliottChannel::start(sim::SimTime horizon) {
  schedule_transition(horizon);
}

void GilbertElliottChannel::bind_metrics(obs::Registry* registry) {
  if (!registry) {
    transitions_counter_ = nullptr;
    capacity_gauge_ = nullptr;
    return;
  }
  transitions_counter_ = &registry->counter("channel.transitions");
  capacity_gauge_ = &registry->gauge("channel.capacity_bps");
  capacity_gauge_->set(current_capacity());
}

void GilbertElliottChannel::schedule_transition(sim::SimTime horizon) {
  const double mean =
      (good_ ? config_.mean_good : config_.mean_bad).to_seconds();
  const sim::SimTime at =
      simulator_->now() + sim::Duration::seconds(rng_.exponential_mean(mean));
  if (at > horizon) return;
  simulator_->at(at, [this, horizon] {
    good_ = !good_;
    ++transitions_;
    if (transitions_counter_) transitions_counter_->add();
    if (capacity_gauge_) capacity_gauge_->set(current_capacity());
    if (on_change_) on_change_(current_capacity());
    schedule_transition(horizon);
  });
}

}  // namespace imrm::workload
