file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_admission.dir/bench_table2_admission.cc.o"
  "CMakeFiles/bench_table2_admission.dir/bench_table2_admission.cc.o.d"
  "bench_table2_admission"
  "bench_table2_admission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_admission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
