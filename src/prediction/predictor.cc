#include "prediction/predictor.h"

namespace imrm::prediction {

std::string to_string(PredictionLevel level) {
  switch (level) {
    case PredictionLevel::kPortableProfile: return "portable-profile";
    case PredictionLevel::kOfficeOccupancy: return "office-occupancy";
    case PredictionLevel::kCellAggregate: return "cell-aggregate";
    case PredictionLevel::kNone: return "none";
  }
  return "unknown";
}

Prediction ThreeLevelPredictor::predict(PortableId portable, CellId previous,
                                        CellId current) const {
  // Level 1: the portable's own profile for this (previous, current) state.
  if (const profiles::PortableProfile* profile = server_->portable_profile(portable)) {
    if (const auto next = profile->predict(previous, current)) {
      return {next, PredictionLevel::kPortableProfile};
    }
  }

  // Level 2a: a neighboring office of which the user is a regular occupant.
  for (CellId neighbor : map_->cell(current).neighbors) {
    const mobility::Cell& cell = map_->cell(neighbor);
    if (cell.cell_class == mobility::CellClass::kOffice && cell.is_occupant(portable)) {
      return {neighbor, PredictionLevel::kOfficeOccupancy};
    }
  }

  // Level 2b: the cell's aggregate handoff history.
  if (const profiles::CellProfile* profile = server_->cell_profile(current)) {
    if (const auto next = profile->predict(previous)) {
      return {next, PredictionLevel::kCellAggregate};
    }
    // Previous-cell-specific history absent: fall back to the overall
    // aggregate of the cell.
    const auto aggregate = profile->aggregate_distribution();
    if (!aggregate.empty()) {
      const auto best = std::max_element(
          aggregate.begin(), aggregate.end(),
          [](const auto& a, const auto& b) { return a.probability < b.probability; });
      return {best->neighbor, PredictionLevel::kCellAggregate};
    }
  }

  // Level 3: nothing to go on; the default algorithm takes over.
  return {std::nullopt, PredictionLevel::kNone};
}

}  // namespace imrm::prediction
