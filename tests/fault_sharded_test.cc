// FaultSchedule::arm_sharded (ISSUE 10 satellite): a fault event landing in
// the interior of a batched window must take effect at its exact sim time on
// every shard, for any (workers, batch). Before per-domain arming, a fault
// armed on one domain could only reach the others as a boundary message at
// the next burst edge — so *when* a shard saw the fault depended on the
// batch size, which the byte-identity sweep below would catch.
#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fault/schedule.h"
#include "obs/metrics.h"
#include "sim/sharded_runner.h"
#include "sim/time.h"

namespace imrm::fault {
namespace {

constexpr std::size_t kDomains = 4;
constexpr std::uint32_t kLink = 7;

struct Outcome {
  std::vector<std::string> log;  // per-domain logs, concatenated in order
  std::uint64_t downs = 0;       // fault.injected.link_down
  std::uint64_t ups = 0;         // fault.injected.link_up
  std::uint64_t crashes = 0;     // fault.injected.cell_crash
};

// Every domain ticks at 1 ms (the interior of the 2 ms window) and records
// whether it currently sees kLink as down; the schedule flaps the link at
// 3.7 ms -> 9.3 ms and crashes cell 2 at 5.1 ms — all window-interior times.
Outcome run(std::size_t workers, std::size_t batch) {
  sim::ShardedRunner::Config config{kDomains, workers, sim::Duration::millis(2),
                                    batch};
  sim::ShardedRunner runner(config);

  std::array<bool, kDomains> down{};
  std::array<std::vector<std::string>, kDomains> logs;

  FaultSchedule schedule;
  schedule.flap(kLink, sim::SimTime::millis(3.7), sim::SimTime::millis(9.3));
  schedule.crash(2, sim::SimTime::millis(5.1));

  FaultSchedule::ShardedHooks hooks;
  hooks.link_down = [&](std::size_t d, std::uint32_t link) {
    if (link == kLink) down[d] = true;
    logs[d].push_back("down:" + std::to_string(link) + "@" +
                      std::to_string(runner.domain(d).now().to_millis()));
  };
  hooks.link_up = [&](std::size_t d, std::uint32_t link) {
    if (link == kLink) down[d] = false;
    logs[d].push_back("up:" + std::to_string(link) + "@" +
                      std::to_string(runner.domain(d).now().to_millis()));
  };
  hooks.cell_crash = [&](std::size_t d, std::uint32_t cell) {
    logs[d].push_back("crash:" + std::to_string(cell) + "@" +
                      std::to_string(runner.domain(d).now().to_millis()));
  };

  obs::Registry metrics;
  schedule.arm_sharded(runner, std::move(hooks), &metrics);

  for (std::size_t d = 0; d < kDomains; ++d) {
    runner.domain(d).every(
        sim::Duration::millis(1), sim::SimTime::millis(16), [&, d] {
          logs[d].push_back(std::to_string(runner.domain(d).now().to_millis()) +
                            (down[d] ? ":down" : ":up"));
        });
  }

  runner.run_until(sim::SimTime::millis(20));

  Outcome out;
  for (std::size_t d = 0; d < kDomains; ++d) {
    out.log.insert(out.log.end(), logs[d].begin(), logs[d].end());
  }
  out.downs = metrics.counter("fault.injected.link_down").value();
  out.ups = metrics.counter("fault.injected.link_up").value();
  out.crashes = metrics.counter("fault.injected.cell_crash").value();
  return out;
}

TEST(FaultSharded, WindowInteriorFaultsAreExactOnEveryShard) {
  const Outcome oracle = run(/*workers=*/1, /*batch=*/1);
  ASSERT_FALSE(oracle.log.empty());

  // Each domain saw the exact timeline: up through 3 ms, down 4..9 ms, up
  // again from 10 ms — and the hook instants themselves at 3.7 / 9.3 / 5.1.
  std::size_t per_domain = oracle.log.size() / kDomains;
  for (std::size_t d = 0; d < kDomains; ++d) {
    const auto begin = oracle.log.begin() + std::ptrdiff_t(d * per_domain);
    const std::vector<std::string> domain_log(begin,
                                              begin + std::ptrdiff_t(per_domain));
    EXPECT_NE(std::find(domain_log.begin(), domain_log.end(), "3.000000:up"),
              domain_log.end()) << "domain " << d;
    EXPECT_NE(std::find(domain_log.begin(), domain_log.end(), "4.000000:down"),
              domain_log.end()) << "domain " << d;
    EXPECT_NE(std::find(domain_log.begin(), domain_log.end(), "9.000000:down"),
              domain_log.end()) << "domain " << d;
    EXPECT_NE(std::find(domain_log.begin(), domain_log.end(), "10.000000:up"),
              domain_log.end()) << "domain " << d;
    EXPECT_NE(std::find(domain_log.begin(), domain_log.end(),
                        "down:7@3.700000"),
              domain_log.end()) << "domain " << d;
    EXPECT_NE(std::find(domain_log.begin(), domain_log.end(),
                        "crash:2@5.100000"),
              domain_log.end()) << "domain " << d;
  }

  // Byte-identity across every (workers, batch) pair — batched bursts
  // included. This is the regression the per-domain arming exists for.
  for (const std::size_t workers : {std::size_t(1), std::size_t(2),
                                    std::size_t(4), std::size_t(8)}) {
    for (const std::size_t batch : {std::size_t(1), std::size_t(8),
                                    std::size_t(64), std::size_t(0)}) {
      const Outcome got = run(workers, batch);
      EXPECT_EQ(got.log, oracle.log)
          << "workers=" << workers << " batch=" << batch;
      // Counted once, not once per domain.
      EXPECT_EQ(got.downs, 1u) << "workers=" << workers << " batch=" << batch;
      EXPECT_EQ(got.ups, 1u) << "workers=" << workers << " batch=" << batch;
      EXPECT_EQ(got.crashes, 1u) << "workers=" << workers << " batch=" << batch;
    }
  }
}

TEST(FaultSharded, PartitionExpandsOnEveryDomainAndCountsOnce) {
  sim::ShardedRunner::Config config{2, 2, sim::Duration::millis(2),
                                    /*batch=*/16};
  sim::ShardedRunner runner(config);

  FaultSchedule schedule;
  const std::uint32_t group = schedule.add_group({3, 5});
  schedule.partition(group, sim::SimTime::millis(2.5), sim::SimTime::millis(6.5));

  std::array<std::vector<std::uint32_t>, 2> downs;
  FaultSchedule::ShardedHooks hooks;
  hooks.link_down = [&](std::size_t d, std::uint32_t link) {
    downs[d].push_back(link);
  };

  obs::Registry metrics;
  schedule.arm_sharded(runner, std::move(hooks), &metrics);
  runner.run_until(sim::SimTime::millis(10));

  const std::vector<std::uint32_t> expected{3, 5};
  EXPECT_EQ(downs[0], expected);
  EXPECT_EQ(downs[1], expected);
  EXPECT_EQ(metrics.counter("fault.injected.partition").value(), 1u);
  EXPECT_EQ(metrics.counter("fault.injected.link_down").value(), 2u);
}

TEST(FaultSharded, EmptyScheduleArmsNothing) {
  sim::ShardedRunner::Config config{2, 1, sim::Duration::millis(2)};
  sim::ShardedRunner runner(config);
  FaultSchedule schedule;
  schedule.arm_sharded(runner, {});
  EXPECT_EQ(runner.run_until(sim::SimTime::millis(10)), 0u);
}

}  // namespace
}  // namespace imrm::fault
