// Unit tests for statistics helpers: binning, summaries, estimators, tables.
#include <gtest/gtest.h>

#include <sstream>

#include "stats/table.h"
#include "stats/timeseries.h"

namespace imrm::stats {
namespace {

using sim::Duration;
using sim::SimTime;

TEST(BinnedSeries, BinsByTime) {
  BinnedSeries s(SimTime::zero(), Duration::minutes(1));
  s.add(SimTime::seconds(10));
  s.add(SimTime::seconds(50));
  s.add(SimTime::seconds(70));
  ASSERT_EQ(s.bin_count(), 2u);
  EXPECT_DOUBLE_EQ(s.bin_value(0), 2.0);
  EXPECT_DOUBLE_EQ(s.bin_value(1), 1.0);
  EXPECT_DOUBLE_EQ(s.total(), 3.0);
}

TEST(BinnedSeries, NonUnitValuesAccumulate) {
  BinnedSeries s(SimTime::zero(), Duration::seconds(10));
  s.add(SimTime::seconds(1), 2.5);
  s.add(SimTime::seconds(2), 1.5);
  EXPECT_DOUBLE_EQ(s.bin_value(0), 4.0);
}

TEST(BinnedSeries, TimesBeforeOriginCountAsUnderflow) {
  BinnedSeries s(SimTime::minutes(10), Duration::minutes(1));
  s.add(SimTime::minutes(5));
  s.add(SimTime::minutes(9), 2.5);
  s.add(SimTime::minutes(10));
  EXPECT_DOUBLE_EQ(s.underflow(), 3.5);
  EXPECT_EQ(s.underflow_count(), 2u);
  // Pre-origin samples no longer pollute bin 0 or the totals.
  EXPECT_DOUBLE_EQ(s.bin_value(0), 1.0);
  EXPECT_DOUBLE_EQ(s.total(), 1.0);
  EXPECT_DOUBLE_EQ(s.max_bin(), 1.0);
}

TEST(BinnedSeries, BinStartReflectsOrigin) {
  BinnedSeries s(SimTime::minutes(10), Duration::minutes(2));
  s.add(SimTime::minutes(13));
  EXPECT_DOUBLE_EQ(s.bin_start(1).to_minutes(), 12.0);
}

TEST(BinnedSeries, MaxBin) {
  BinnedSeries s(SimTime::zero(), Duration::seconds(1));
  s.add(SimTime::seconds(0), 1.0);
  s.add(SimTime::seconds(1), 5.0);
  s.add(SimTime::seconds(2), 3.0);
  EXPECT_DOUBLE_EQ(s.max_bin(), 5.0);
}

TEST(Summary, WelfordMatchesClosedForm) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, EmptyIsSafe) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RatioEstimator, ComputesRatio) {
  RatioEstimator r;
  r.record(true);
  r.record(false);
  r.record(false);
  r.record(true);
  EXPECT_DOUBLE_EQ(r.ratio(), 0.5);
  EXPECT_EQ(r.hits(), 2u);
  EXPECT_EQ(r.trials(), 4u);
}

TEST(RatioEstimator, ZeroTrialsYieldsZero) {
  RatioEstimator r;
  EXPECT_DOUBLE_EQ(r.ratio(), 0.0);
}

TEST(RatioEstimator, BulkRecord) {
  RatioEstimator r;
  r.record_hits(3, 10);
  EXPECT_DOUBLE_EQ(r.ratio(), 0.3);
}

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row_numeric({1.5, 2.25}, 2);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1.50,2.25\n");
}

TEST(Table, RowAccess) {
  Table t({"x"});
  t.add_row({"v"});
  ASSERT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.row(0)[0], "v");
}

TEST(AsciiBars, ScalesToMax) {
  std::ostringstream os;
  print_ascii_bars(os, {1.0, 2.0}, {"a", "b"}, 10);
  const std::string out = os.str();
  EXPECT_NE(out.find("a | ##### 1.0"), std::string::npos);
  EXPECT_NE(out.find("b | ########## 2.0"), std::string::npos);
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
}

}  // namespace
}  // namespace imrm::stats
