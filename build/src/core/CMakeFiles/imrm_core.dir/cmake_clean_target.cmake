file(REMOVE_RECURSE
  "libimrm_core.a"
)
