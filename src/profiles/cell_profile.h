// Cell profile (Table 1): aggregated handoff history of ALL portables
// through a cell — for each previous cell, the probability of handing off
// to each neighbor, over the last N_pC handoffs.
//
// Unlike the portable profile this is not user-specific: it aggregates the
// cell's population behaviour and serves as the second prediction level.
//
// Storage is a flat sorted vector per previous cell with incrementally
// maintained neighbor counts (updated on record, not rebuilt per query):
// distribution() and aggregate_distribution() run on the admission hot path
// at campus scale, so they must read precomputed counts out of contiguous
// memory instead of building a std::map per call. Count vectors are kept in
// ascending neighbor-id order, which is exactly the order the original
// std::map-based implementation emitted. Each previous-cell window is a
// fixed-capacity HistoryWindow ring, so a cell's footprint stays pinned
// however many handoffs churn through it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "net/ids.h"
#include "profiles/history_window.h"
#include "sim/checkpoint.h"

namespace imrm::profiles {

using net::CellId;

class CellProfile {
 public:
  explicit CellProfile(CellId id, std::size_t window = 128) : id_(id), window_(window) {}

  /// Records that a portable which had arrived from `previous` handed off
  /// to `next`.
  void record(CellId previous, CellId next);

  struct NeighborShare {
    CellId neighbor;
    double probability;
  };

  /// Handoff distribution over next cells given the previous cell; empty
  /// when the (previous) state was never observed.
  [[nodiscard]] std::vector<NeighborShare> distribution(CellId previous) const;

  /// Distribution aggregated over all previous cells (used when the previous
  /// cell is unknown, and by lounges which ignore individual behaviour).
  [[nodiscard]] std::vector<NeighborShare> aggregate_distribution() const;

  /// Most likely next cell given the previous cell, or nullopt.
  [[nodiscard]] std::optional<CellId> predict(CellId previous) const;

  [[nodiscard]] std::size_t observations(CellId previous) const;
  [[nodiscard]] std::size_t total_observations() const { return total_; }
  [[nodiscard]] CellId id() const { return id_; }

  /// Estimated heap footprint in bytes.
  [[nodiscard]] std::size_t memory_bytes() const;

  // --- checkpoint/restore (ISSUE 4) ---------------------------------------
  void save_state(sim::CheckpointWriter& w) const;
  [[nodiscard]] static CellProfile restore_state(sim::CheckpointReader& r);

 private:
  // Ascending-id (neighbor, count) run; shared by the per-previous and the
  // aggregate tallies.
  using Counts = std::vector<std::pair<CellId, std::uint32_t>>;

  struct Prev {
    CellId previous;
    HistoryWindow window;  // oldest first, newest last; capacity = window_
    Counts counts;         // tallies of `window`, ascending neighbor id
  };

  static void count_add(Counts& counts, CellId next);
  static void count_remove(Counts& counts, CellId next);

  [[nodiscard]] const Prev* find(CellId previous) const;
  [[nodiscard]] Prev& find_or_insert(CellId previous);

  CellId id_;
  std::size_t window_;
  std::size_t total_ = 0;       // sum of window sizes
  std::vector<Prev> by_previous_;  // sorted by previous id
  Counts aggregate_counts_;     // tallies across every window
};

}  // namespace imrm::profiles
