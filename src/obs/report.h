// Machine-readable run report.
//
// The versioned JSON document that every experiment front end (notably
// examples/scenario_cli --metrics-json) emits after a run: which scenario
// ran with which configuration, how long it took in wall and simulated
// time, the event throughput, and the full metrics snapshot. Downstream
// tooling (bench/run_benchmarks.sh, tools/validate_report.py) keys on
// schema_version, so bump it on any breaking layout change.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/profiler.h"

namespace imrm::obs {

/// Service-mode summary (schema v3): what the admission-control service did
/// under a driven load — offered/processed/shed conservation, rates, the
/// latency percentiles, and the SLO verdict. Written as a `service` member
/// only when `present` (batch scenario reports carry no service key).
struct ServiceBlock {
  bool present = false;
  std::string transport;  // "ring" | "socket"
  std::string pacing;     // "virtual" | "wall"
  double duration_s = 0.0;
  std::uint64_t offered = 0;
  std::uint64_t processed = 0;
  std::uint64_t shed = 0;
  std::uint64_t errors = 0;
  std::uint64_t admit_accepted = 0;
  std::uint64_t admit_rejected = 0;
  std::uint64_t teardowns = 0;
  std::uint64_t handoffs = 0;
  std::uint64_t handoff_drops = 0;
  std::uint64_t probes = 0;
  /// Requests with no reply by the end of the drain window. Always 0 in a
  /// service-side report; a driver-side (socket drive) report may record
  /// stragglers. offered == processed + shed + unanswered.
  std::uint64_t unanswered = 0;
  std::uint64_t peak_queue_depth = 0;
  double offered_rps = 0.0;
  double sustained_rps = 0.0;  // processed / duration
  double shed_fraction = 0.0;  // shed / offered
  double latency_p50_us = 0.0;
  double latency_p90_us = 0.0;
  double latency_p99_us = 0.0;
  double slo_p99_us = 0.0;  // the configured target
  bool slo_met = false;     // latency_p99_us <= slo_p99_us

  void write_json(std::ostream& os) const;
};

/// Closed-adaptation-loop summary (schema v4): what the campus adapt loop
/// did over the day — renegotiation counts, window verdict tallies, the
/// shaper's conformance conservation (offered == bg + wc + nonconforming,
/// in bits), the air hop's packet accounting, and the grant trajectory
/// (pre-fault / minimum-under-fault / final). Written as an `adaptation`
/// member only when `present` (loop-off reports carry no adaptation key).
struct AdaptationBlock {
  bool present = false;
  std::uint64_t flows = 0;
  std::uint64_t renegotiations_triggered = 0;
  std::uint64_t renegotiations_accepted = 0;
  std::uint64_t windows_breached = 0;
  std::uint64_t windows_clean = 0;
  std::uint64_t windows_insufficient = 0;
  // Dual token-bucket shaper conformance, summed over flows; by
  // construction offered_bits == bg_bits + wc_bits + nonconforming_bits.
  std::uint64_t offered_bits = 0;
  std::uint64_t bg_bits = 0;
  std::uint64_t wc_bits = 0;
  std::uint64_t nonconforming_bits = 0;
  std::uint64_t hop_offered_packets = 0;
  std::uint64_t hop_delivered_packets = 0;
  std::uint64_t hop_dropped_packets = 0;
  double granted_bps = 0.0;   // total granted rate at end of run
  double enforced_bps = 0.0;  // total shaper-enforced rate at end of run
  // Grant trajectory across the fault window (0 for sweep aggregates).
  double granted_prefault_bps = 0.0;
  double granted_min_bps = 0.0;
  double granted_final_bps = 0.0;

  void write_json(std::ostream& os) const;
};

struct RunReport {
  /// v5 (ISSUE 10): extends the profile's sharded section for window-batched
  /// barriers — `barriers` now counts coordinator dispatches (full-stop
  /// barriers), with new `windows`, `profiled_wall_ns` and a `batch_windows`
  /// histogram recording the realized burst sizes.
  /// v4 (ISSUE 9): adds the optional `adaptation` block — closed-loop
  /// renegotiation and shaper-conformance accounting, present only for
  /// campus runs with --adapt-loop.
  /// v3 (ISSUE 8): adds the optional `service` block — admission-control
  /// service-mode accounting, present only for `serve`/`drive` runs.
  /// v2 (ISSUE 7): adds the optional `profile` block — wall-clock phase and
  /// shard-lane attribution, present only when profiling was enabled. The
  /// `metrics` section layout is unchanged from v1, so metrics-section
  /// hashes (golden campus JSON, shard determinism checks) are comparable
  /// across the bumps.
  static constexpr int kSchemaVersion = 5;

  std::string tool;      // producing binary, e.g. "scenario_cli"
  std::string scenario;  // subcommand / experiment name
  /// Configuration echo: flag name -> value, in insertion order.
  std::vector<std::pair<std::string, std::string>> config;

  double wall_seconds = 0.0;
  double sim_seconds = 0.0;
  std::uint64_t events_fired = 0;
  Snapshot metrics;
  /// Wall-clock attribution (schema v2). Written as a `profile` member only
  /// when non-empty: disabled-profiling reports carry no profile key at all,
  /// keeping them byte-comparable with profiling compiled out.
  ProfileSnapshot profile;
  /// Service-mode accounting (schema v3); written only when service.present.
  ServiceBlock service;
  /// Adaptation-loop accounting (schema v4); written only when
  /// adaptation.present.
  AdaptationBlock adaptation;

  [[nodiscard]] double events_per_second() const {
    return wall_seconds > 0.0 ? double(events_fired) / wall_seconds : 0.0;
  }

  void write_json(std::ostream& os) const;
};

}  // namespace imrm::obs
