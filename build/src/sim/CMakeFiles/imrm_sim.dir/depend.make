# Empty dependencies file for imrm_sim.
# This may be replaced when dependencies are built.
