// Tests for the fault-injection transport: per-channel loss / delay /
// duplication / reordering semantics, the zero-probability fast path, the
// fault schedule driver, and the unreliable admission probe.
#include <gtest/gtest.h>

#include <vector>

#include "fault/faulty_channel.h"
#include "fault/schedule.h"
#include "fault/signaling.h"
#include "maxmin/protocol.h"
#include "obs/metrics.h"
#include "sim/simulator.h"

namespace imrm::fault {
namespace {

using sim::Duration;
using sim::SimTime;

maxmin::Problem small_problem() {
  maxmin::Problem p;
  p.links = {{10.0}, {20.0}};
  p.connections = {{{0}, maxmin::kInfiniteDemand},
                   {{0, 1}, maxmin::kInfiniteDemand},
                   {{1}, maxmin::kInfiniteDemand}};
  return p;
}

TEST(FaultyChannel, TrivialModelMatchesDirectTransportExactly) {
  // Same protocol run three ways: no transport, DirectTransport, and a
  // FaultyChannel with every probability at zero. All three must produce the
  // same rates after the same number of simulator events — the channel's
  // fast path adds no draws and no extra events.
  auto run = [](int mode) {
    sim::Simulator simulator;
    DirectTransport direct(simulator);
    FaultyChannel faulty(simulator, sim::Rng(99));
    maxmin::DistributedProtocol::Config config;
    if (mode == 1) config.transport = &direct;
    if (mode == 2) config.transport = &faulty;
    maxmin::DistributedProtocol proto(simulator, small_problem(), config);
    proto.start_all();
    proto.run_to_quiescence();
    return std::pair(proto.rates(), simulator.events_fired());
  };
  const auto baseline = run(0);
  EXPECT_EQ(run(1), baseline);
  EXPECT_EQ(run(2), baseline);
}

TEST(FaultyChannel, TrivialSendDrawsNoRandomNumbers) {
  sim::Simulator simulator;
  sim::Rng reference(7);
  FaultyChannel channel(simulator, sim::Rng(7));
  for (int i = 0; i < 50; ++i) {
    channel.send(0, Duration::millis(1), [] {});
  }
  simulator.run();
  // The channel's engine is still in its seeded state: the next draw equals
  // a fresh rng's first draw.
  sim::Rng probe(7);
  EXPECT_EQ(reference.uniform(0.0, 1.0), probe.uniform(0.0, 1.0));
  EXPECT_EQ(channel.sent(), 50u);
  EXPECT_EQ(channel.dropped(), 0u);
}

TEST(FaultyChannel, CertainLossDropsEverything) {
  sim::Simulator simulator;
  FaultyChannel channel(simulator, sim::Rng(1), LinkFaultModel::bernoulli_loss(1.0));
  int delivered = 0;
  for (int i = 0; i < 20; ++i) {
    channel.send(3, Duration::millis(1), [&delivered] { ++delivered; });
  }
  simulator.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(channel.dropped(), 20u);
}

TEST(FaultyChannel, DownChannelDropsUntilHealed) {
  sim::Simulator simulator;
  FaultyChannel channel(simulator, sim::Rng(1));
  channel.set_channel_up(2, false);
  int delivered = 0;
  channel.send(2, Duration::millis(1), [&delivered] { ++delivered; });
  channel.send(1, Duration::millis(1), [&delivered] { ++delivered; });  // other channel up
  simulator.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(channel.dropped_down(), 1u);
  channel.set_channel_up(2, true);
  channel.send(2, Duration::millis(1), [&delivered] { ++delivered; });
  simulator.run();
  EXPECT_EQ(delivered, 2);
}

TEST(FaultyChannel, DuplicateDeliversTwice) {
  sim::Simulator simulator;
  LinkFaultModel model;
  model.duplicate = 1.0;
  FaultyChannel channel(simulator, sim::Rng(4), model);
  int delivered = 0;
  channel.send(0, Duration::millis(1), [&delivered] { ++delivered; });
  simulator.run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(channel.duplicated(), 1u);
}

TEST(FaultyChannel, ReorderedMessageFallsBehindLaterSend) {
  sim::Simulator simulator;
  LinkFaultModel reordering;
  reordering.reorder = 1.0;
  FaultyChannel channel(simulator, sim::Rng(5));
  channel.set_model(0, reordering);
  std::vector<int> order;
  channel.send(0, Duration::millis(1), [&order] { order.push_back(0); });
  channel.send(1, Duration::millis(1), [&order] { order.push_back(1); });
  simulator.run();
  ASSERT_EQ(order.size(), 2u);
  // The reordered message on channel 0 was overtaken by the later send.
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 0);
  EXPECT_EQ(channel.reordered(), 1u);
}

TEST(FaultyChannel, JitterStaysWithinConfiguredBound) {
  sim::Simulator simulator;
  LinkFaultModel jittery;
  jittery.jitter = 0.5;
  FaultyChannel channel(simulator, sim::Rng(6), jittery);
  for (int i = 0; i < 30; ++i) {
    const SimTime sent_at = simulator.now();
    double arrival = -1.0;
    channel.send(0, Duration::millis(10),
                 [&simulator, &arrival] { arrival = simulator.now().to_seconds(); });
    simulator.run();
    const double base = sent_at.to_seconds() + 0.010;
    ASSERT_GE(arrival, base - 1e-12);
    ASSERT_LE(arrival, base + 0.5 * 0.010 + 1e-12);
  }
  EXPECT_GT(channel.delayed(), 0u);
}

TEST(FaultyChannel, GilbertElliottLosesInBursts) {
  sim::Simulator simulator;
  FaultyChannel channel(simulator, sim::Rng(8),
                        LinkFaultModel::gilbert_elliott(0.1, 1.0, 5.0));
  int delivered = 0;
  for (int i = 0; i < 500; ++i) {
    channel.send(0, Duration::millis(1), [&delivered] { ++delivered; });
  }
  simulator.run();
  // Burst loss: a meaningful share dropped, but the good state delivers.
  EXPECT_GT(channel.dropped(), 50u);
  EXPECT_GT(delivered, 100);
  EXPECT_EQ(channel.dropped() + std::uint64_t(delivered), 500u);
}

TEST(FaultyChannel, HealRestoresCleanDelivery) {
  sim::Simulator simulator;
  FaultyChannel channel(simulator, sim::Rng(9), LinkFaultModel::bernoulli_loss(1.0));
  LinkFaultModel worse = LinkFaultModel::bernoulli_loss(1.0);
  channel.set_model(4, worse);
  channel.set_default_model(LinkFaultModel{});  // heal: clears overrides too
  int delivered = 0;
  channel.send(4, Duration::millis(1), [&delivered] { ++delivered; });
  simulator.run();
  EXPECT_EQ(delivered, 1);
}

TEST(FaultyChannel, BindsFaultChannelCounters) {
  sim::Simulator simulator;
  obs::Registry registry;
  FaultyChannel channel(simulator, sim::Rng(10), LinkFaultModel::bernoulli_loss(1.0));
  channel.bind_metrics(&registry);
  for (int i = 0; i < 7; ++i) channel.send(0, Duration::millis(1), [] {});
  simulator.run();
  EXPECT_EQ(registry.counter("fault.channel.sent").value(), 7u);
  EXPECT_EQ(registry.counter("fault.channel.dropped").value(), 7u);
}

TEST(FaultSchedule, FiresHooksInTimeOrderAndExpandsPartitions) {
  FaultSchedule schedule;
  schedule.flap(1, SimTime::seconds(0.1), SimTime::seconds(0.3));
  schedule.crash(0, SimTime::seconds(0.2));
  const std::uint32_t group = schedule.add_group({2, 3});
  schedule.partition(group, SimTime::seconds(0.15), SimTime::seconds(0.25));
  EXPECT_EQ(schedule.end_time(), SimTime::seconds(0.3));

  sim::Simulator simulator;
  std::vector<std::string> log;
  FaultSchedule::Hooks hooks;
  hooks.link_down = [&log](std::uint32_t l) { log.push_back("down:" + std::to_string(l)); };
  hooks.link_up = [&log](std::uint32_t l) { log.push_back("up:" + std::to_string(l)); };
  hooks.cell_crash = [&log](std::uint32_t l) { log.push_back("crash:" + std::to_string(l)); };
  schedule.arm(simulator, hooks);
  simulator.run();
  const std::vector<std::string> expected{"down:1",  "down:2", "down:3", "crash:0",
                                          "up:2",    "up:3",   "up:1"};
  EXPECT_EQ(log, expected);
}

TEST(FaultSchedule, RandomTimelineIsDeterministicInSeed) {
  FaultSchedule::RandomConfig config;
  config.stop = SimTime::seconds(1.0);
  config.links = 4;
  config.flaps = 5;
  config.crashes = 2;
  sim::Rng a(42), b(42);
  const FaultSchedule first = FaultSchedule::random(config, a);
  const FaultSchedule second = FaultSchedule::random(config, b);
  ASSERT_EQ(first.events().size(), second.events().size());
  EXPECT_EQ(first.events().size(), 2 * 5 + 2u);
  for (std::size_t i = 0; i < first.events().size(); ++i) {
    EXPECT_EQ(first.events()[i].at, second.events()[i].at);
    EXPECT_EQ(first.events()[i].kind, second.events()[i].kind);
    EXPECT_EQ(first.events()[i].target, second.events()[i].target);
  }
}

TEST(UnreliableCall, LossFreeProbeAlwaysSucceedsWithoutRetries) {
  SignalingFaults faults;  // trivial
  EXPECT_FALSE(faults.enabled());
  UnreliableCall call(faults, sim::Rng(1));
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(call.attempt());
  EXPECT_EQ(call.retries(), 0u);
  EXPECT_EQ(call.timeouts(), 0u);
}

TEST(UnreliableCall, CertainLossTimesOutAfterRetryBudget) {
  SignalingFaults faults;
  faults.model = LinkFaultModel::bernoulli_loss(1.0);
  faults.max_attempts = 3;
  UnreliableCall call(faults, sim::Rng(2));
  EXPECT_FALSE(call.attempt());
  EXPECT_EQ(call.timeouts(), 1u);
  EXPECT_EQ(call.retries(), 2u);  // attempts beyond the first
}

TEST(UnreliableCall, RetriesRecoverModerateLoss) {
  SignalingFaults faults;
  faults.model = LinkFaultModel::bernoulli_loss(0.3);
  faults.max_attempts = 5;
  UnreliableCall call(faults, sim::Rng(3));
  int granted = 0;
  for (int i = 0; i < 1000; ++i) granted += call.attempt() ? 1 : 0;
  // Per attempt both directions must survive: p = 0.49; five tries make a
  // timeout vanishingly rare, and retries must show up in the telemetry.
  EXPECT_GT(granted, 950);
  EXPECT_GT(call.retries(), 0u);
}

}  // namespace
}  // namespace imrm::fault
