#include "fault/schedule.h"

#include <algorithm>
#include <map>
#include <memory>

#include "obs/metrics.h"
#include "obs/tracer.h"

namespace imrm::fault {

FaultSchedule FaultSchedule::random(const RandomConfig& config, sim::Rng& rng) {
  FaultSchedule schedule;
  const double lo = config.start.to_seconds();
  const double hi = config.stop.to_seconds();
  for (std::size_t i = 0; i < config.flaps; ++i) {
    const auto link = std::uint32_t(rng.uniform_int(0, int(config.links) - 1));
    const double down = rng.uniform(lo, hi);
    const double outage = rng.exponential_mean(config.mean_outage.to_seconds());
    // Outages are clipped to the window so every down has a matching up.
    const double up = std::min(down + outage, hi);
    schedule.flap(link, sim::SimTime::seconds(down), sim::SimTime::seconds(up));
  }
  for (std::size_t i = 0; i < config.crashes; ++i) {
    const auto link = std::uint32_t(rng.uniform_int(0, int(config.links) - 1));
    schedule.crash(link, sim::SimTime::seconds(rng.uniform(lo, hi)));
  }
  return schedule;
}

sim::SimTime FaultSchedule::end_time() const {
  sim::SimTime end = sim::SimTime::zero();
  for (const FaultEvent& event : events_) end = std::max(end, event.at);
  return end;
}

void FaultSchedule::arm(sim::Simulator& simulator, Hooks hooks, obs::Registry* metrics,
                        obs::Tracer* tracer) const {
  if (events_.empty()) return;

  // Shared driver state: the hooks, cached counters, and per-link outage
  // start times so each down→up pair renders as one trace span.
  struct Driver {
    Hooks hooks;
    std::vector<std::vector<std::uint32_t>> groups;
    obs::Counter* downs = nullptr;
    obs::Counter* ups = nullptr;
    obs::Counter* crashes = nullptr;
    obs::Counter* partitions = nullptr;
    obs::Tracer* tracer = nullptr;
    obs::NameId outage_name = obs::kInvalidName;
    obs::NameId crash_name = obs::kInvalidName;
    std::map<std::uint32_t, sim::SimTime> down_since;

    void link_down(sim::SimTime now, std::uint32_t link) {
      if (downs) downs->add();
      down_since.emplace(link, now);
      if (hooks.link_down) hooks.link_down(link);
    }
    void link_up(sim::SimTime now, std::uint32_t link) {
      if (ups) ups->add();
      if (auto it = down_since.find(link); it != down_since.end()) {
        if (tracer && outage_name != obs::kInvalidName) {
          tracer->complete(it->second, now, outage_name, link);
        }
        down_since.erase(it);
      }
      if (hooks.link_up) hooks.link_up(link);
    }
  };

  auto driver = std::make_shared<Driver>();
  driver->hooks = std::move(hooks);
  driver->groups = groups_;
  if (metrics) {
    driver->downs = &metrics->counter("fault.injected.link_down");
    driver->ups = &metrics->counter("fault.injected.link_up");
    driver->crashes = &metrics->counter("fault.injected.cell_crash");
    driver->partitions = &metrics->counter("fault.injected.partition");
  }
  if (tracer) {
    driver->tracer = tracer;
    driver->outage_name = tracer->intern("link-outage", "fault");
    driver->crash_name = tracer->intern("cell-crash", "fault");
  }

  for (const FaultEvent& event : events_) {
    simulator.at(event.at, [driver, &simulator, event] {
      const sim::SimTime now = simulator.now();
      switch (event.kind) {
        case FaultKind::kLinkDown:
          driver->link_down(now, event.target);
          break;
        case FaultKind::kLinkUp:
          driver->link_up(now, event.target);
          break;
        case FaultKind::kCellCrash:
          if (driver->crashes) driver->crashes->add();
          if (driver->tracer && driver->crash_name != obs::kInvalidName) {
            driver->tracer->instant(now, driver->crash_name, event.target);
          }
          if (driver->hooks.cell_crash) driver->hooks.cell_crash(event.target);
          break;
        case FaultKind::kPartition:
          if (driver->partitions) driver->partitions->add();
          if (event.target < driver->groups.size()) {
            for (std::uint32_t link : driver->groups[event.target]) {
              driver->link_down(now, link);
            }
          }
          break;
        case FaultKind::kHeal:
          if (event.target < driver->groups.size()) {
            for (std::uint32_t link : driver->groups[event.target]) {
              driver->link_up(now, link);
            }
          }
          break;
      }
    });
  }
}

}  // namespace imrm::fault
