#include "serve/socket_transport.h"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace imrm::serve {

namespace {

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw TransportError("serve socket: path '" + path + "' exceeds the AF_UNIX limit of " +
                         std::to_string(sizeof(addr.sun_path) - 1) + " bytes");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

/// send(2) until the frame is fully written. MSG_NOSIGNAL turns a vanished
/// peer into EPIPE instead of a process-killing SIGPIPE. False on EPIPE /
/// ECONNRESET; throws on anything unexpected.
bool write_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) return false;
      throw TransportError(std::string("serve socket: write failed: ") +
                           std::strerror(errno));
    }
    sent += std::size_t(n);
  }
  return true;
}

}  // namespace

SocketServerTransport::SocketServerTransport(std::string path) : path_(std::move(path)) {
  const sockaddr_un addr = make_addr(path_);
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw TransportError(std::string("serve socket: socket() failed: ") +
                         std::strerror(errno));
  }
  ::unlink(path_.c_str());  // stale socket from a crashed previous run
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string what = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw TransportError("serve socket: cannot bind '" + path_ + "': " + what);
  }
  if (::listen(listen_fd_, 64) < 0) {
    const std::string what = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw TransportError("serve socket: listen on '" + path_ + "' failed: " + what);
  }
}

SocketServerTransport::~SocketServerTransport() {
  for (const auto& [fd, client] : clients_) ::close(fd);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(path_.c_str());
  }
}

void SocketServerTransport::drop_client(int fd) {
  ::close(fd);
  clients_.erase(fd);
}

void SocketServerTransport::pump(std::chrono::microseconds wait) {
  std::vector<pollfd> fds;
  fds.reserve(clients_.size() + 1);
  fds.push_back({listen_fd_, POLLIN, 0});
  for (const auto& [fd, client] : clients_) fds.push_back({fd, POLLIN, 0});

  const int timeout_ms =
      wait.count() <= 0 ? 0 : int((wait.count() + 999) / 1000);
  const int ready = ::poll(fds.data(), nfds_t(fds.size()), timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) return;
    throw TransportError(std::string("serve socket: poll failed: ") +
                         std::strerror(errno));
  }
  if (ready == 0) return;

  if ((fds[0].revents & POLLIN) != 0) {
    while (true) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        break;  // EAGAIN on a drained backlog; anything else retries next pump
      }
      clients_.emplace(fd, Client{});
      break;  // poll again before accepting more — keeps the loop fair
    }
  }

  for (std::size_t i = 1; i < fds.size(); ++i) {
    if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
    const int fd = fds[i].fd;
    const auto it = clients_.find(fd);
    if (it == clients_.end()) continue;
    std::uint8_t chunk[4096];
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      drop_client(fd);
      continue;
    }
    if (n == 0) {  // orderly EOF
      drop_client(fd);
      continue;
    }
    it->second.assembler.feed(chunk, std::size_t(n));
    try {
      std::vector<std::uint8_t> frame;
      while (it->second.assembler.next(frame)) {
        pending_.push_back(Envelope{std::uint64_t(fd), std::move(frame)});
      }
    } catch (const CodecError& e) {
      // The byte stream is unframeable from here on: answer with a typed
      // error (id 0 — the offset of the bad frame is unknown) and hang up.
      const std::vector<std::uint8_t> reply = encode_reply(
          0, ErrorReply{ServiceError::kMalformedFrame, e.what()});
      write_all(fd, reply.data(), reply.size());
      drop_client(fd);
    }
  }
}

bool SocketServerTransport::next_request(Envelope& env, std::chrono::microseconds wait) {
  if (pending_.empty()) pump(wait);
  if (pending_.empty()) return false;
  env = std::move(pending_.front());
  pending_.pop_front();
  return true;
}

void SocketServerTransport::send_reply(std::uint64_t client,
                                       std::vector<std::uint8_t> frame) {
  const int fd = int(client);
  if (clients_.find(fd) == clients_.end()) return;  // client vanished
  if (!write_all(fd, frame.data(), frame.size())) drop_client(fd);
}

SocketClientTransport::SocketClientTransport(const std::string& path) {
  const sockaddr_un addr = make_addr(path);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw TransportError(std::string("serve socket: socket() failed: ") +
                         std::strerror(errno));
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string what = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw TransportError("serve socket: cannot connect to '" + path + "': " + what);
  }
}

SocketClientTransport::~SocketClientTransport() {
  if (fd_ >= 0) ::close(fd_);
}

bool SocketClientTransport::send_request(std::vector<std::uint8_t> frame) {
  if (fd_ < 0) return false;
  if (!write_all(fd_, frame.data(), frame.size())) {
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  return true;
}

bool SocketClientTransport::next_reply(std::vector<std::uint8_t>& frame,
                                       std::chrono::microseconds wait) {
  if (fd_ < 0) return false;
  if (assembler_.next(frame)) return true;
  pollfd pfd{fd_, POLLIN, 0};
  const int timeout_ms = wait.count() <= 0 ? 0 : int((wait.count() + 999) / 1000);
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready <= 0) return false;
  std::uint8_t chunk[4096];
  const ssize_t n = ::read(fd_, chunk, sizeof chunk);
  if (n <= 0) return false;
  assembler_.feed(chunk, std::size_t(n));
  return assembler_.next(frame);
}

void SocketClientTransport::close() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

}  // namespace imrm::serve
