// Regression tests for the SoA/flat-layout migration (ISSUE 6): the dense
// containers behind CellBandwidth, ReservationDirectory, and ProfileServer
// must behave exactly like the ordered/hashed maps they replaced —
// bookkeeping totals, per-portable queries, serialization bytes, and handle
// stability under portable churn.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "profiles/profile_server.h"
#include "reservation/directory.h"
#include "sim/checkpoint.h"
#include "sim/random.h"

namespace imrm {
namespace {

using net::CellId;
using net::PortableId;

// Reference model of one cell's bandwidth account with the pre-migration
// std::map semantics. Bandwidths are integer-valued in the tests so running
// sums are exact regardless of accumulation order.
struct ReferenceCell {
  double capacity = 0.0;
  double anonymous = 0.0;
  std::map<std::uint32_t, double> reserved;
  std::map<std::uint32_t, double> connections;

  double reserved_specific() const {
    double total = 0.0;
    for (const auto& [p, b] : reserved) total += b;
    return total;
  }
  double allocated() const {
    double total = 0.0;
    for (const auto& [p, b] : connections) total += b;
    return total;
  }
  bool admit_new(std::uint32_t p, double b) {
    if (b > capacity - allocated() - reserved_specific() - anonymous) return false;
    connections[p] = b;
    return true;
  }
  bool admit_handoff(std::uint32_t p, double b) {
    reserved.erase(p);  // consumed by the arrival either way
    if (b > capacity - allocated() - reserved_specific()) return false;
    anonymous -= std::min(anonymous, b);
    connections[p] = b;
    return true;
  }
  void release(std::uint32_t p) { connections.erase(p); }
  void reserve_for(std::uint32_t p, double b) { reserved[p] = b; }
  void cancel(std::uint32_t p) { reserved.erase(p); }
};

TEST(MigrationDeterminism, CellBandwidthMatchesMapReferenceUnderChurn) {
  reservation::CellBandwidth cell(1000.0);
  ReferenceCell ref;
  ref.capacity = 1000.0;
  sim::Rng rng(42);

  for (int step = 0; step < 20000; ++step) {
    const std::uint32_t p = std::uint32_t(rng.uniform_int(0, 49));
    const double b = double(rng.uniform_int(1, 40));
    const bool connected = ref.connections.count(p) > 0;
    switch (rng.uniform_int(0, 4)) {
      case 0: {
        if (connected) break;  // double-admit is a caller bug (asserted)
        const bool got = cell.admit_new(PortableId{p}, b);
        const bool want = ref.admit_new(p, b);
        ASSERT_EQ(got, want) << "admit_new step " << step;
        break;
      }
      case 1: {
        if (connected) break;
        const bool got = cell.admit_handoff(PortableId{p}, b);
        const bool want = ref.admit_handoff(p, b);
        ASSERT_EQ(got, want) << "admit_handoff step " << step;
        break;
      }
      case 2:
        if (!connected) break;  // releasing an absent connection is asserted
        cell.release(PortableId{p});
        ref.release(p);
        break;
      case 3:
        cell.reserve_for(PortableId{p}, b);
        ref.reserve_for(p, b);
        break;
      case 4:
        cell.cancel_reservation(PortableId{p});
        ref.cancel(p);
        break;
    }
    ASSERT_DOUBLE_EQ(cell.allocated(), ref.allocated()) << "step " << step;
    ASSERT_DOUBLE_EQ(cell.reserved_total(), ref.reserved_specific() + ref.anonymous)
        << "step " << step;
    ASSERT_EQ(cell.active_connections(), ref.connections.size()) << "step " << step;
  }
  // Per-portable views at the end.
  for (std::uint32_t p = 0; p < 50; ++p) {
    const auto it = ref.reserved.find(p);
    ASSERT_DOUBLE_EQ(cell.reservation_for(PortableId{p}),
                     it == ref.reserved.end() ? 0.0 : it->second);
    ASSERT_EQ(cell.has_connection(PortableId{p}), ref.connections.count(p) > 0);
  }
}

// Serialization must be insertion-order independent: two accounts that hold
// the same state via different operation interleavings emit identical bytes
// (the pre-migration format sorted by portable id).
TEST(MigrationDeterminism, CellBandwidthSerializationIsOrderIndependent) {
  reservation::CellBandwidth a(500.0), b(500.0);
  const std::vector<std::uint32_t> forward = {3, 7, 11, 19, 23};
  for (const std::uint32_t p : forward) {
    ASSERT_TRUE(a.admit_new(PortableId{p}, 10.0 + p));
    a.reserve_for(PortableId{p}, 2.0 + p);
  }
  for (auto it = forward.rbegin(); it != forward.rend(); ++it) {
    ASSERT_TRUE(b.admit_new(PortableId{*it}, 10.0 + *it));
    b.reserve_for(PortableId{*it}, 2.0 + *it);
  }
  sim::CheckpointWriter wa, wb;
  a.save_state(wa);
  b.save_state(wb);
  EXPECT_EQ(wa.take(), wb.take());
}

std::vector<std::uint8_t> server_bytes(const profiles::ProfileServer& server) {
  sim::CheckpointWriter w;
  server.save_state(w);
  return w.take();
}

TEST(MigrationDeterminism, ProfileServerSerializationRoundTripsByteIdentical) {
  profiles::ProfileServer server(net::ZoneId{0});
  sim::Rng rng(7);
  // A few hundred random handoffs over a small id space builds non-trivial
  // portable and cell histories.
  for (int i = 0; i < 400; ++i) {
    const std::uint32_t p = std::uint32_t(rng.uniform_int(0, 9));
    const std::uint32_t prev = std::uint32_t(rng.uniform_int(0, 5));
    const std::uint32_t from = std::uint32_t(rng.uniform_int(0, 5));
    const std::uint32_t to = std::uint32_t(rng.uniform_int(0, 5));
    server.record_handoff(PortableId{p}, CellId{prev}, CellId{from}, CellId{to});
  }
  const std::vector<std::uint8_t> first = server_bytes(server);

  profiles::ProfileServer restored(net::ZoneId{0});
  sim::CheckpointReader r(first);
  restored.restore_state(r);
  EXPECT_EQ(server_bytes(restored), first);
}

TEST(MigrationDeterminism, ProfileServerSerializationIsReproducible) {
  auto build = [] {
    profiles::ProfileServer server(net::ZoneId{0});
    sim::Rng rng(13);
    for (int i = 0; i < 300; ++i) {
      const std::uint32_t p = std::uint32_t(rng.uniform_int(0, 7));
      const std::uint32_t c = std::uint32_t(rng.uniform_int(0, 4));
      const std::uint32_t d = std::uint32_t(rng.uniform_int(0, 4));
      server.record_handoff(PortableId{p}, CellId::invalid(), CellId{c}, CellId{d});
    }
    return server_bytes(server);
  };
  EXPECT_EQ(build(), build());
}

// Property test: CellId handles into the directory stay valid and correct
// through heavy portable churn (admissions, handoffs, teardowns, and new
// cells appearing), because the dense layout never moves an existing
// account's identity.
TEST(MigrationDeterminism, DirectoryHandlesSurvivePortableChurn) {
  reservation::ReservationDirectory directory;
  std::map<std::uint32_t, std::map<std::uint32_t, double>> ref;  // cell -> conns
  sim::Rng rng(99);
  std::uint32_t n_cells = 4;
  for (std::uint32_t c = 0; c < n_cells; ++c) {
    directory.add_cell(CellId{c}, 1e6);
    ref[c];
  }
  auto cell_of = [&ref](std::uint32_t p) -> int {
    for (const auto& [cell, conns] : ref) {
      if (conns.count(p)) return int(cell);
    }
    return -1;
  };

  for (int step = 0; step < 30000; ++step) {
    const std::uint32_t p = std::uint32_t(rng.uniform_int(0, 199));
    const std::uint32_t c = std::uint32_t(rng.uniform_int(0, int(n_cells) - 1));
    const int at = cell_of(p);
    switch (rng.uniform_int(0, 3)) {
      case 0:
        if (at >= 0) break;  // one connection per portable
        ASSERT_TRUE(directory.at(CellId{c}).admit_new(PortableId{p}, 16.0));
        ref[c][p] = 16.0;
        break;
      case 1: {  // handoff p from wherever it is into c
        if (at == int(c)) break;
        if (at >= 0) {
          directory.at(CellId{std::uint32_t(at)}).release(PortableId{p});
          ref[std::uint32_t(at)].erase(p);
        }
        ASSERT_TRUE(directory.at(CellId{c}).admit_handoff(PortableId{p}, 16.0));
        ref[c][p] = 16.0;
        break;
      }
      case 2:
        if (at < 0) break;
        directory.at(CellId{std::uint32_t(at)}).release(PortableId{p});
        ref[std::uint32_t(at)].erase(p);
        break;
      case 3:
        if (n_cells < 16 && rng.bernoulli(0.01)) {
          directory.add_cell(CellId{n_cells}, 1e6);
          ref[n_cells];
          ++n_cells;
        }
        break;
    }
    if (step % 500 == 0) {
      for (const auto& [cell, conns] : ref) {
        ASSERT_TRUE(directory.has(CellId{cell}));
        ASSERT_EQ(directory.at(CellId{cell}).active_connections(), conns.size())
            << "cell " << cell << " step " << step;
      }
    }
  }
  // Final full agreement, including per-portable membership.
  for (const auto& [cell, conns] : ref) {
    for (std::uint32_t p = 0; p < 200; ++p) {
      ASSERT_EQ(directory.at(CellId{cell}).has_connection(PortableId{p}),
                conns.count(p) > 0);
    }
  }
}

}  // namespace
}  // namespace imrm
