#include "qos/adaptation.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace imrm::qos {

void AdaptationController::add_flow(FlowId flow, const QosRequest& request,
                                    BitsPerSecond granted) {
  assert(request.valid());
  if (flow >= flows_.size()) flows_.resize(std::size_t(flow) + 1);
  FlowState& state = flows_[flow];
  state = FlowState{};
  state.controlled = true;
  state.request = request;
  state.granted = granted;
  state.requested = request.bandwidth.b_max;
  state.target = request.bandwidth.b_max;
}

void AdaptationController::on_delivered(FlowId flow, Seconds delay) {
  if (flow >= flows_.size() || !flows_[flow].controlled) return;
  FlowState& state = flows_[flow];
  ++state.window_delivered;
  if (delay > state.request.delay_bound) ++state.window_delay_violations;
}

void AdaptationController::on_granted(FlowId flow, BitsPerSecond granted) {
  if (flow >= flows_.size() || !flows_[flow].controlled) return;
  flows_[flow].granted = granted;
}

void AdaptationController::tick() {
  for (FlowId flow = 0; flow < flows_.size(); ++flow) {
    if (flows_[flow].controlled) step_flow(flow, flows_[flow]);
  }
}

void AdaptationController::step_flow(FlowId flow, FlowState& state) {
  const LossyHop::LossWindow window = hop_->take_window(flow);
  const std::uint64_t delivered = state.window_delivered;
  const std::uint64_t delay_violations = state.window_delay_violations;
  state.window_delivered = 0;
  state.window_delay_violations = 0;

  WindowVerdict verdict;
  if (window.offered < config_.min_samples) {
    // Not enough evidence either way: hold the streaks where they are.
    verdict = WindowVerdict::kInsufficient;
    ++windows_insufficient_;
  } else {
    // Loss breach: windowed loss above the negotiated p_e. Delay breach:
    // the fraction of deliveries missing the delay bound exceeds the same
    // tolerated violation probability.
    const bool loss_breach = window.loss_rate() > state.request.loss_bound;
    const bool delay_breach =
        delivered > 0 &&
        double(delay_violations) / double(delivered) > state.request.loss_bound;
    if (loss_breach || delay_breach) {
      verdict = WindowVerdict::kBreached;
      ++windows_breached_;
      ++state.breach_streak;
      state.clean_streak = 0;
    } else {
      verdict = WindowVerdict::kClean;
      ++windows_clean_;
      ++state.clean_streak;
      state.breach_streak = 0;
    }
  }
  if (observer_) observer_(flow, window, verdict);

  const BitsPerSecond floor = state.request.bandwidth.b_min;
  const BitsPerSecond ceiling = state.request.bandwidth.b_max;
  if (state.breach_streak >= config_.breach_windows) {
    // Sustained breach: multiplicative decrease of the span above b_min.
    // Resetting the streak means a *persistent* fault keeps shrinking the
    // target every breach_windows windows — depth of breach, not a
    // one-shot reaction to instantaneous loss.
    state.target = floor + config_.down_scale * (state.target - floor);
    state.breach_streak = 0;
  } else if (state.clean_streak >= config_.clean_windows) {
    // Sustained clean: head back to the full negotiated ceiling.
    state.target = ceiling;
  }

  if (state.requested == state.target) return;
  // Concave ramp toward the target; snap once within tolerance of the
  // flow's full span so recovery lands bit-exactly on the original b_max.
  BitsPerSecond next =
      state.requested + config_.ramp_gain * (state.target - state.requested);
  const double span = ceiling - floor;
  if (std::abs(state.target - next) <= config_.snap_tolerance * span) {
    next = state.target;
  }
  next = std::clamp(next, floor, ceiling);
  if (next == state.requested) return;

  ++renegotiations_triggered_;
  const BandwidthRange range{floor, next};
  if (renegotiate_ && renegotiate_(flow, range)) {
    ++renegotiations_accepted_;
    state.requested = next;
  }
}

BitsPerSecond AdaptationController::granted(FlowId flow) const {
  if (flow >= flows_.size() || !flows_[flow].controlled) return 0.0;
  return flows_[flow].granted;
}

BitsPerSecond AdaptationController::requested_max(FlowId flow) const {
  if (flow >= flows_.size() || !flows_[flow].controlled) return 0.0;
  return flows_[flow].requested;
}

BitsPerSecond AdaptationController::target_max(FlowId flow) const {
  if (flow >= flows_.size() || !flows_[flow].controlled) return 0.0;
  return flows_[flow].target;
}

}  // namespace imrm::qos
