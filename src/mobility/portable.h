// Portables (mobile hosts / their users) and the static-mobile distinction.
//
// Section 3.4.2: a portable is *static* once it has stayed in the same cell
// for a threshold period T_th, otherwise *mobile*. Static portables get
// their QoS upgraded and no advance reservations; mobile portables keep
// minimum QoS and get advance reservations in the next-predicted cell.
#pragma once

#include <optional>

#include "mobility/cell.h"
#include "qos/flow_spec.h"
#include "sim/time.h"

namespace imrm::mobility {

struct Portable {
  PortableId id = PortableId::invalid();
  CellId current_cell = CellId::invalid();
  CellId previous_cell = CellId::invalid();
  sim::SimTime entered_cell = sim::SimTime::zero();
  /// The office this user regularly occupies, if any.
  std::optional<CellId> home_office;
};

/// Applies the T_th rule.
class StaticMobileClassifier {
 public:
  explicit StaticMobileClassifier(sim::Duration threshold) : threshold_(threshold) {}

  [[nodiscard]] qos::MobilityClass classify(const Portable& portable,
                                            sim::SimTime now) const {
    return now - portable.entered_cell >= threshold_ ? qos::MobilityClass::kStatic
                                                     : qos::MobilityClass::kMobile;
  }

  /// Time at which the portable will become static if it does not move.
  [[nodiscard]] sim::SimTime static_at(const Portable& portable) const {
    return portable.entered_cell + threshold_;
  }

  [[nodiscard]] sim::Duration threshold() const { return threshold_; }

 private:
  sim::Duration threshold_;
};

}  // namespace imrm::mobility
