// Unreliable synchronous signaling (ISSUE 3 tentpole, part 3 — the
// admission-control side).
//
// The experiment harnesses perform admission as a synchronous call into the
// reservation layer (a probe of the admission test plus the reply). Under
// faults, both the probe and its response cross the lossy wireless control
// channel; a mobile whose probe times out must degrade gracefully to a
// rejection rather than hang — exactly the "stay safe without knowledge"
// posture of distributed admission control (Jaramillo & Ying).
//
// UnreliableCall models that exchange: each attempt draws a request-loss and
// a response-loss from the same Gilbert-Elliott process the FaultyChannel
// uses, retrying up to a bounded budget. attempt() returning false means the
// probe timed out every time — the caller must treat the admission as
// rejected (blocked/dropped), never as granted.
#pragma once

#include <cstdint>
#include <utility>

#include "fault/fault_model.h"
#include "sim/checkpoint.h"
#include "sim/random.h"

namespace imrm::obs {
class Registry;
class Counter;
}  // namespace imrm::obs

namespace imrm::fault {

/// Fault parameters for synchronous admission/reservation signaling.
struct SignalingFaults {
  LinkFaultModel model;
  int max_attempts = 3;  // probe tries before degrading to rejection

  [[nodiscard]] bool enabled() const { return !model.trivial(); }
};

class UnreliableCall {
 public:
  UnreliableCall(SignalingFaults config, sim::Rng rng)
      : config_(config), rng_(std::move(rng)) {}

  /// Caches `fault.probe.*` counters from `registry` (nullptr detaches).
  void bind_metrics(obs::Registry* registry);

  /// One admission probe. True = the request/response pair eventually got
  /// through (possibly after retries); false = every attempt was lost and
  /// the caller must degrade to rejection.
  [[nodiscard]] bool attempt();

  [[nodiscard]] std::uint64_t probes() const { return probes_; }
  [[nodiscard]] std::uint64_t retries() const { return retries_; }
  [[nodiscard]] std::uint64_t timeouts() const { return timeouts_; }

  // --- checkpoint/restore (ISSUE 4) ---------------------------------------
  // Unlike FaultyChannel's seed-independent warm-fork image, a probe
  // checkpoint captures a run already drawing from the stream, so the RNG
  // engine IS serialized along with the two Gilbert-Elliott chain states and
  // the probe counters.
  void save_state(sim::CheckpointWriter& w) const {
    w.rng(rng_.engine());
    w.boolean(request_loss_.good);
    w.boolean(response_loss_.good);
    w.u64(probes_);
    w.u64(retries_);
    w.u64(timeouts_);
  }
  void restore_state(sim::CheckpointReader& r) {
    r.rng(rng_.engine());
    request_loss_.good = r.boolean();
    response_loss_.good = r.boolean();
    probes_ = r.u64();
    retries_ = r.u64();
    timeouts_ = r.u64();
  }

 private:
  SignalingFaults config_;
  sim::Rng rng_;
  LossProcess request_loss_;
  LossProcess response_loss_;

  std::uint64_t probes_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t timeouts_ = 0;

  obs::Counter* probes_counter_ = nullptr;
  obs::Counter* retries_counter_ = nullptr;
  obs::Counter* timeouts_counter_ = nullptr;
};

}  // namespace imrm::fault
