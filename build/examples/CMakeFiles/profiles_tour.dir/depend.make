# Empty dependencies file for profiles_tour.
# This may be replaced when dependencies are built.
