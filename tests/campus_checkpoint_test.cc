// Campus-day checkpoint/restore (ISSUE 4 tentpole): freezing the day at a
// barrier and resuming must be indistinguishable from never having stopped —
// identical CampusDayResult and byte-identical metrics JSON, through every
// policy, with and without signaling faults, at any barrier time.
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "experiments/campus_day.h"
#include "fault/fault_model.h"
#include "obs/metrics.h"
#include "sim/checkpoint.h"
#include "sim/time.h"

namespace imrm::experiments {
namespace {

std::string metrics_json(const obs::Registry& registry) {
  std::ostringstream os;
  registry.snapshot().write_json(os);
  return os.str();
}

CampusDayConfig small_config(CampusPolicy policy) {
  CampusDayConfig config;
  config.policy = policy;
  config.attendees = 12;
  config.squatters = 4;
  config.seed = 5;
  return config;
}

void expect_same_result(const CampusDayResult& a, const CampusDayResult& b) {
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.attendee_drops, b.attendee_drops);
  EXPECT_EQ(a.squatter_blocks, b.squatter_blocks);
  EXPECT_EQ(a.squatter_admits, b.squatter_admits);
  EXPECT_EQ(a.other_drops, b.other_drops);
  EXPECT_EQ(a.handoffs, b.handoffs);
  EXPECT_EQ(a.room_peak_allocated, b.room_peak_allocated);
}

/// Cold run vs checkpoint-at-T + resume, both with live registries; the
/// restored day must match in results AND in metrics JSON bytes.
void check_round_trip(CampusDayConfig config, sim::SimTime at) {
  obs::Registry cold_registry;
  CampusDayConfig cold = config;
  cold.metrics = &cold_registry;
  const CampusDayResult cold_result = run_campus_day(cold);

  CampusDayConfig warm = config;
  obs::Registry ckpt_registry;
  warm.metrics = &ckpt_registry;
  const sim::Checkpoint ckpt = checkpoint_campus_day(warm, at);

  obs::Registry resume_registry;
  warm.metrics = &resume_registry;
  const CampusDayResult resumed = resume_campus_day(warm, ckpt);

  expect_same_result(resumed, cold_result);
  EXPECT_EQ(metrics_json(resume_registry), metrics_json(cold_registry));
}

TEST(CampusCheckpoint, ResumeMatchesUninterruptedRunEveryPolicy) {
  for (const CampusPolicy policy :
       {CampusPolicy::kNone, CampusPolicy::kStatic, CampusPolicy::kBruteForce,
        CampusPolicy::kAggregate, CampusPolicy::kDispatcher}) {
    SCOPED_TRACE(to_string(policy));
    check_round_trip(small_config(policy), sim::SimTime::minutes(95));
  }
}

TEST(CampusCheckpoint, BarrierTimeSweep) {
  // Before the meeting, at its very start, mid-meeting, and after the last
  // event (the whole day already ran in phase 1).
  const CampusDayConfig config = small_config(CampusPolicy::kDispatcher);
  for (const double minutes : {0.0, 30.0, 90.0, 120.0, 1000.0}) {
    SCOPED_TRACE(minutes);
    check_round_trip(config, sim::SimTime::minutes(minutes));
  }
}

TEST(CampusCheckpoint, ResumeMatchesUnderSignalingFaults) {
  CampusDayConfig config = small_config(CampusPolicy::kDispatcher);
  config.faults.model = fault::LinkFaultModel::gilbert_elliott(0.2, 0.9, 4.0);
  config.faults.max_attempts = 2;
  check_round_trip(config, sim::SimTime::minutes(100));
}

TEST(CampusCheckpoint, ImageSurvivesSerializationToBytes) {
  const CampusDayConfig config = small_config(CampusPolicy::kDispatcher);
  const CampusDayResult cold = run_campus_day(config);

  const sim::Checkpoint ckpt = checkpoint_campus_day(config, sim::SimTime::minutes(95));
  const sim::Checkpoint reloaded = sim::Checkpoint::deserialize(ckpt.serialize());
  const CampusDayResult resumed = resume_campus_day(config, reloaded);
  expect_same_result(resumed, cold);
}

TEST(CampusCheckpoint, ConfigFingerprintMismatchThrows) {
  const CampusDayConfig config = small_config(CampusPolicy::kDispatcher);
  const sim::Checkpoint ckpt = checkpoint_campus_day(config, sim::SimTime::minutes(95));

  CampusDayConfig other = config;
  other.seed = 6;
  EXPECT_THROW((void)resume_campus_day(other, ckpt), sim::CheckpointError);

  other = config;
  other.attendees += 1;
  EXPECT_THROW((void)resume_campus_day(other, ckpt), sim::CheckpointError);

  other = config;
  other.policy = CampusPolicy::kAggregate;
  EXPECT_THROW((void)resume_campus_day(other, ckpt), sim::CheckpointError);
}

TEST(CampusCheckpoint, ResumeFromForeignCheckpointThrows) {
  const CampusDayConfig config = small_config(CampusPolicy::kDispatcher);
  EXPECT_THROW((void)resume_campus_day(config, sim::Checkpoint{}), sim::CheckpointError);
}

}  // namespace
}  // namespace imrm::experiments
