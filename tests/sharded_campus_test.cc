// Sharded campus scenario: shard-count invariance (byte-identical metrics)
// and scenario-level accounting invariants.
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "experiments/sharded_campus.h"

namespace imrm::experiments {
namespace {

ShardedCampusConfig small_config(std::size_t shards) {
  ShardedCampusConfig config;
  config.cells = 10;
  config.shards = shards;
  config.portables_per_cell = 5;
  config.horizon = sim::SimTime::minutes(45);
  config.seed = 42;
  return config;
}

std::string metrics_json(const ShardedCampusResult& result) {
  std::ostringstream os;
  result.metrics.write_json(os);
  return os.str();
}

TEST(ShardedCampus, MetricsAreByteIdenticalAcrossShardCounts) {
  const ShardedCampusResult at1 = run_sharded_campus(small_config(1));
  ASSERT_GT(at1.events_fired, 0u);
  ASSERT_GT(at1.boundary_messages, 0u);
  const std::string golden = metrics_json(at1);
  for (const std::size_t shards : {2, 4, 8}) {
    const ShardedCampusResult at_k = run_sharded_campus(small_config(shards));
    EXPECT_EQ(metrics_json(at_k), golden) << "shards=" << shards;
    EXPECT_EQ(at_k.events_fired, at1.events_fired) << "shards=" << shards;
    EXPECT_EQ(at_k.windows, at1.windows) << "shards=" << shards;
    EXPECT_EQ(at_k.boundary_messages, at1.boundary_messages)
        << "shards=" << shards;
  }
}

TEST(ShardedCampus, RepeatedRunsAreByteIdentical) {
  const std::string a = metrics_json(run_sharded_campus(small_config(4)));
  const std::string b = metrics_json(run_sharded_campus(small_config(4)));
  EXPECT_EQ(a, b);
}

TEST(ShardedCampus, ScenarioInvariantsHold) {
  const ShardedCampusResult r = run_sharded_campus(small_config(2));
  // Every DELIVERED probe is answered exactly once (accepted XOR rejected);
  // probes still in flight at the horizon are the only shortfall, so the
  // answered count can never exceed the sent count.
  const obs::CounterSample* ok = r.metrics.counter("cell.probe_ok");
  ASSERT_NE(ok, nullptr);
  EXPECT_GT(r.probes_sent, 0u);
  EXPECT_GT(ok->value, 0u);
  EXPECT_LE(ok->value + r.probes_rejected, r.probes_sent);
  // Handoffs arrive at most once each (in-flight ones excepted) and either
  // continue or drop at the receiving cell.
  const obs::CounterSample* out = r.metrics.counter("cell.handoff_out");
  ASSERT_NE(out, nullptr);
  EXPECT_GT(out->value, 0u);
  EXPECT_LE(r.handoffs, out->value);  // handoffs == handoff_in
  EXPECT_LE(r.handoff_drops, r.handoffs);
  // The probe RTT histogram records accepted probes whose replies landed.
  const obs::HistogramSample* rtt = r.metrics.histogram("cell.probe_rtt_ms");
  ASSERT_NE(rtt, nullptr);
  EXPECT_GT(rtt->count, 0u);
  EXPECT_LE(rtt->count, ok->value);
  // Conservative rounds delivered every cross-cell message.
  EXPECT_GT(r.windows, 0u);
  EXPECT_GT(r.boundary_messages, 0u);
}

TEST(ShardedCampus, SingleCellDegeneratesToLocalOnly) {
  ShardedCampusConfig config = small_config(4);
  config.cells = 1;
  const ShardedCampusResult r = run_sharded_campus(config);
  EXPECT_GT(r.events_fired, 0u);
  EXPECT_EQ(r.probes_sent, 0u);
  EXPECT_EQ(r.handoffs, 0u);
  EXPECT_EQ(r.boundary_messages, 0u);
}

TEST(ShardedCampus, OversubscribedCellBlocksAndReclaims) {
  ShardedCampusConfig config = small_config(2);
  config.cells = 6;
  config.portables_per_cell = 40;       // far past 16 concurrent sessions
  config.abandon_probability = 0.3;     // plenty of leases to reclaim
  config.horizon = sim::SimTime::hours(1);
  const ShardedCampusResult r = run_sharded_campus(config);
  EXPECT_GT(r.blocks, 0u);
  EXPECT_GT(r.lease_reclaims, 0u);
  // Bandwidth accounting must balance: the peak-allocation gauge never saw
  // a cell exceed its capacity.
  const obs::GaugeSample* allocated = r.metrics.gauge("cell.allocated_bps");
  ASSERT_NE(allocated, nullptr);
  EXPECT_LE(allocated->max, config.cell_capacity_bps + 1.0);
}

}  // namespace
}  // namespace imrm::experiments
