#include "profiles/profile_server.h"

#include <algorithm>
#include <vector>

namespace imrm::profiles {

void ProfileServer::record_handoff(const mobility::HandoffEvent& event) {
  record_handoff(event.portable, event.prev_of_from, event.from, event.to);
}

void ProfileServer::record_handoff(net::PortableId portable, CellId prev, CellId from,
                                   CellId to) {
  // <portable id, current cell, previous cell, next cell>: the portable was
  // in `from` (having come from `prev`) and handed off to `to`.
  portable_profile_mut(portable).record(prev, from, to);
  // Cell profile of the departed cell: <previous cell, next cell>.
  cell_profile_mut(from).record(prev, to);
  ++traffic_.handoff_updates;    // old BS notifies the server
  ++traffic_.profile_transfers;  // old BS forwards the cached profile
}

const PortableProfile* ProfileServer::portable_profile(net::PortableId id) const {
  const auto it = portables_.find(id);
  return it == portables_.end() ? nullptr : &it->second;
}

const CellProfile* ProfileServer::cell_profile(CellId id) const {
  const auto it = cells_.find(id);
  return it == cells_.end() ? nullptr : &it->second;
}

PortableProfile& ProfileServer::portable_profile_mut(net::PortableId id) {
  const auto it = portables_.find(id);
  if (it != portables_.end()) return it->second;
  return portables_.emplace(id, PortableProfile(id, config_.portable_window))
      .first->second;
}

CellProfile& ProfileServer::cell_profile_mut(CellId id) {
  const auto it = cells_.find(id);
  if (it != cells_.end()) return it->second;
  return cells_.emplace(id, CellProfile(id, config_.cell_window)).first->second;
}

const BookingCalendar* ProfileServer::calendar_if(CellId id) const {
  const auto it = calendars_.find(id);
  return it == calendars_.end() ? nullptr : &it->second;
}

std::optional<PortableProfile> ProfileServer::extract_portable(net::PortableId id) {
  const auto it = portables_.find(id);
  if (it == portables_.end()) return std::nullopt;
  PortableProfile profile = std::move(it->second);
  portables_.erase(it);
  return profile;
}

void ProfileServer::adopt_portable(PortableProfile profile) {
  const net::PortableId id = profile.id();
  portables_.insert_or_assign(id, std::move(profile));
}

void ProfileServer::refresh_on_static(net::PortableId id) {
  (void)id;
  ++traffic_.refreshes;
}

void ProfileServer::save_state(sim::CheckpointWriter& w) const {
  std::vector<net::PortableId> portable_ids;
  portable_ids.reserve(portables_.size());
  for (const auto& [id, profile] : portables_) portable_ids.push_back(id);
  std::sort(portable_ids.begin(), portable_ids.end());
  w.u64(portable_ids.size());
  for (const net::PortableId id : portable_ids) portables_.at(id).save_state(w);

  std::vector<CellId> cell_ids;
  cell_ids.reserve(cells_.size());
  for (const auto& [id, profile] : cells_) cell_ids.push_back(id);
  std::sort(cell_ids.begin(), cell_ids.end());
  w.u64(cell_ids.size());
  for (const CellId id : cell_ids) cells_.at(id).save_state(w);

  w.u64(traffic_.handoff_updates);
  w.u64(traffic_.profile_transfers);
  w.u64(traffic_.refreshes);
}

void ProfileServer::restore_state(sim::CheckpointReader& r) {
  portables_.clear();
  for (std::uint64_t n = r.u64(); n-- > 0;) {
    PortableProfile profile = PortableProfile::restore_state(r);
    const net::PortableId id = profile.id();
    portables_.emplace(id, std::move(profile));
  }
  cells_.clear();
  for (std::uint64_t n = r.u64(); n-- > 0;) {
    CellProfile profile = CellProfile::restore_state(r);
    const CellId id = profile.id();
    cells_.emplace(id, std::move(profile));
  }
  traffic_.handoff_updates = r.u64();
  traffic_.profile_transfers = r.u64();
  traffic_.refreshes = r.u64();
}

}  // namespace imrm::profiles
