# Empty compiler generated dependencies file for imrm_workload.
# This may be replaced when dependencies are built.
