// Portable profile (Table 1): for every (previous cell, current cell) pair,
// the aggregated history of the portable's last N_pP handoffs out of that
// state, used to predict the next cell.
//
// The aggregate is a sliding window: the profile server records each handoff
// as <previous, current, next>, keeps the most recent N_pP per (previous,
// current) state, and predicts the majority next-cell.
//
// Storage is a sorted flat vector keyed on the packed (previous << 32) |
// current state id. A portable visits a handful of states, so binary search
// over a contiguous array beats the node-per-state std::map this used to be:
// the predictor probes this structure on every handoff at campus scale.
// Packed-key ascending order is exactly the old std::map<std::pair<CellId,
// CellId>, ...> order, so checkpoint bytes are unchanged. Each state's
// window is a fixed-capacity HistoryWindow ring: eviction is an O(1)
// overwrite and the per-portable footprint is pinned no matter how many
// handoffs churn through (tested at 20k in profiles_test).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "net/ids.h"
#include "profiles/history_window.h"
#include "sim/checkpoint.h"

namespace imrm::profiles {

using net::CellId;
using net::PortableId;

class PortableProfile {
 public:
  explicit PortableProfile(PortableId id, std::size_t window = 16)
      : id_(id), window_(window) {}

  /// Records a handoff: the portable moved to `next` while in `current`,
  /// having previously been in `previous`.
  void record(CellId previous, CellId current, CellId next);

  /// The next-predicted-cell field: majority vote over the window, or
  /// nullopt when the state was never observed.
  [[nodiscard]] std::optional<CellId> predict(CellId previous, CellId current) const;

  /// Number of observations stored for a state (for tests/inspection).
  [[nodiscard]] std::size_t observations(CellId previous, CellId current) const;

  [[nodiscard]] PortableId id() const { return id_; }
  [[nodiscard]] std::size_t window() const { return window_; }

  /// Estimated heap footprint in bytes.
  [[nodiscard]] std::size_t memory_bytes() const;

  // --- checkpoint/restore (ISSUE 4): id, window, and the full sliding
  // history in ascending packed-state order (deterministic on both sides,
  // byte-compatible with the original std::map layout).
  void save_state(sim::CheckpointWriter& w) const;
  [[nodiscard]] static PortableProfile restore_state(sim::CheckpointReader& r);

 private:
  struct State {
    std::uint64_t key;      // (previous << 32) | current
    HistoryWindow window;   // oldest first, newest last; capacity = window_
  };

  static std::uint64_t pack(CellId previous, CellId current) {
    return (std::uint64_t(previous.value()) << 32) | current.value();
  }

  [[nodiscard]] const State* find(std::uint64_t key) const;
  [[nodiscard]] State& find_or_insert(std::uint64_t key);

  PortableId id_;
  std::size_t window_;
  std::vector<State> history_;  // sorted by key
};

}  // namespace imrm::profiles
