file(REMOVE_RECURSE
  "libimrm_sim.a"
)
