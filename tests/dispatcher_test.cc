// Tests for the Section 6.4 policy dispatcher: per-cell-class reservation
// dispatch with hosted collective lounge policies.
#include <gtest/gtest.h>

#include <unordered_map>

#include "mobility/floorplan.h"
#include "mobility/manager.h"
#include "prediction/predictor.h"
#include "profiles/profile_server.h"
#include "reservation/dispatcher.h"

namespace imrm::reservation {
namespace {

using mobility::CellClass;
using qos::kbps;
using sim::Duration;
using sim::SimTime;

class DispatcherFixture : public ::testing::Test {
 protected:
  DispatcherFixture()
      : map_(mobility::campus_environment()),
        manager_(map_, simulator_, Duration::minutes(3)), server_(net::ZoneId{0}),
        predictor_(map_, server_) {
    for (const auto& cell : map_.cells()) directory_.add_cell(cell.id, kbps(1600));
    office_ = *map_.find("office-0");
    corridor_ = *map_.find("corridor-0");
    meeting_ = *map_.find("meeting-room");
    cafeteria_ = *map_.find("cafeteria");
    manager_.on_handoff([this](const mobility::HandoffEvent& e) {
      server_.record_handoff(e);
      if (dispatcher_) dispatcher_->on_handoff(e);
    });
  }

  PolicyEnv env() {
    PolicyEnv e;
    e.map = &map_;
    e.directory = &directory_;
    e.profiles = &server_;
    e.demand = [this](net::PortableId p) {
      const auto it = demand_.find(p);
      return it == demand_.end() ? 0.0 : it->second;
    };
    e.classify = [this](net::PortableId p) { return manager_.classify(p); };
    e.portables_in = [this](CellId c) { return manager_.portables_in(c); };
    e.previous_cell = [this](net::PortableId p) {
      return manager_.portable(p).previous_cell;
    };
    return e;
  }

  void make_dispatcher() {
    dispatcher_ = std::make_unique<PolicyDispatcher>(env(), predictor_, server_,
                                                     PolicyDispatcher::Params{});
  }

  net::PortableId spawn(CellId cell, qos::BitsPerSecond b) {
    const auto p = manager_.add_portable(cell);
    demand_[p] = b;
    return p;
  }

  sim::Simulator simulator_;
  mobility::CellMap map_;
  mobility::MobilityManager manager_;
  profiles::ProfileServer server_;
  prediction::ThreeLevelPredictor predictor_;
  ReservationDirectory directory_;
  std::unordered_map<net::PortableId, qos::BitsPerSecond> demand_;
  std::unique_ptr<PolicyDispatcher> dispatcher_;
  CellId office_, corridor_, meeting_, cafeteria_;
};

TEST_F(DispatcherFixture, OccupantAtHomeGetsNoReservation) {
  const auto p = spawn(office_, kbps(28));
  map_.add_occupant(office_, p);
  make_dispatcher();
  dispatcher_->refresh(simulator_.now());
  EXPECT_FALSE(dispatcher_->reserved_cell(p).has_value());
  for (const auto& cell : map_.cells()) {
    EXPECT_DOUBLE_EQ(directory_.at(cell.id).reservation_for(p), 0.0);
  }
}

TEST_F(DispatcherFixture, CorridorWalkerReservedInNeighborOffice) {
  const auto p = spawn(corridor_, kbps(28));
  map_.add_occupant(office_, p);  // regular occupant of the adjacent office
  make_dispatcher();
  dispatcher_->refresh(simulator_.now());
  ASSERT_TRUE(dispatcher_->reserved_cell(p).has_value());
  EXPECT_EQ(*dispatcher_->reserved_cell(p), office_);
  EXPECT_DOUBLE_EQ(directory_.at(office_).reservation_for(p), kbps(28));
}

TEST_F(DispatcherFixture, PortableProfileBeatsOccupancy) {
  const auto p = spawn(corridor_, kbps(28));
  map_.add_occupant(office_, p);
  // But the profile says this user continues down the corridor.
  const CellId next_corridor = *map_.find("corridor-1");
  for (int i = 0; i < 3; ++i) {
    server_.record_handoff(p, manager_.portable(p).previous_cell, corridor_,
                           next_corridor);
  }
  make_dispatcher();
  dispatcher_->refresh(simulator_.now());
  ASSERT_TRUE(dispatcher_->reserved_cell(p).has_value());
  EXPECT_EQ(*dispatcher_->reserved_cell(p), next_corridor);
}

TEST_F(DispatcherFixture, StaticPortablesSkipped) {
  const auto p = spawn(corridor_, kbps(28));
  map_.add_occupant(office_, p);
  simulator_.run_until(SimTime::minutes(10));
  make_dispatcher();
  dispatcher_->refresh(simulator_.now());
  EXPECT_FALSE(dispatcher_->reserved_cell(p).has_value());
}

TEST_F(DispatcherFixture, MeetingRoomPolicyHosted) {
  server_.calendar(meeting_).book({SimTime::minutes(60), SimTime::minutes(110), 12});
  make_dispatcher();
  dispatcher_->refresh(SimTime::minutes(55));
  // The hosted meeting policy reserves for the expected attendees.
  EXPECT_DOUBLE_EQ(directory_.at(meeting_).anonymous_reservation(), 12 * kbps(28));
}

TEST_F(DispatcherFixture, LoungeContributionsCoexistWithPerPortable) {
  // A walker reserved in the office AND the meeting reservation both live in
  // the directory after one refresh (the dispatcher clears exactly once).
  const auto p = spawn(corridor_, kbps(28));
  map_.add_occupant(office_, p);
  server_.calendar(meeting_).book({SimTime::minutes(60), SimTime::minutes(110), 12});
  make_dispatcher();
  dispatcher_->refresh(SimTime::minutes(55));
  EXPECT_DOUBLE_EQ(directory_.at(office_).reservation_for(p), kbps(28));
  EXPECT_DOUBLE_EQ(directory_.at(meeting_).anonymous_reservation(), 12 * kbps(28));
}

TEST_F(DispatcherFixture, CafeteriaPredictionsFlowThroughDispatcher) {
  make_dispatcher();
  // 3 handoffs out of the cafeteria per slot, constant.
  const auto neighbor = map_.cell(cafeteria_).neighbors.front();
  for (int slot = 1; slot <= 3; ++slot) {
    for (int i = 0; i < 3; ++i) {
      const auto p = manager_.add_portable(cafeteria_);
      manager_.move(p, neighbor);
    }
    dispatcher_->refresh(SimTime::minutes(double(slot)));
  }
  double reserved = 0.0;
  for (CellId n : map_.cell(cafeteria_).neighbors) {
    reserved += directory_.at(n).anonymous_reservation();
  }
  EXPECT_GT(reserved, 0.0);
}

}  // namespace
}  // namespace imrm::reservation
