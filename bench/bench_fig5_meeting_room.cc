// Figure 5 + Section 7.1 drop counts: the classroom experiment.
//
// Reproduces the paper's comparison of three advance reservation algorithms
// on the measured class workloads:
//   lecture class of 35 students (offered load 59%) and laboratory class of
//   55 students (94%); cell throughput 1.6 Mbps; each user opens one 16 kbps
//   (75%) or 64 kbps (25%) connection.
//
// Paper's results: brute force 2 / 7 drops, aggregation 0 / 4, meeting-room
// algorithm 0 / 0.
//
// Also plots the four panels of Figure 5 (handoff activity into / outside /
// out of the classroom around the class start and end).
#include <iostream>

#include "experiments/classroom.h"
#include "stats/table.h"

using namespace imrm;
using namespace imrm::experiments;

namespace {

ClassroomConfig config_for(std::size_t size, PolicyKind policy) {
  ClassroomConfig c;
  c.class_size = size;
  c.meeting = {sim::SimTime::minutes(60), sim::SimTime::minutes(110), size};
  c.policy = policy;
  c.seed = 7;
  return c;
}

void print_window(const stats::BinnedSeries& series, int from_min, int to_min,
                  const char* title) {
  std::cout << title << '\n';
  std::vector<double> values;
  std::vector<std::string> labels;
  for (int m = from_min; m <= to_min; ++m) {
    const auto bin = std::size_t(m);
    values.push_back(bin < series.bin_count() ? series.bin_value(bin) : 0.0);
    labels.push_back("t=" + std::to_string(m) + "min");
  }
  stats::print_ascii_bars(std::cout, values, labels, 40);
}

}  // namespace

int main() {
  std::cout << "== Figure 5 / Section 7.1: meeting-room advance reservation ==\n";
  std::cout << "class starts at t=60 min, ends at t=110 min; room capacity 1.6 Mbps\n\n";

  stats::Table table({"class size", "offered load", "policy", "connection drops",
                      "paper reports"});
  const char* expected_35[] = {"2", "0", "0"};
  const char* expected_55[] = {"7", "4", "0"};
  const PolicyKind policies[] = {PolicyKind::kBruteForce, PolicyKind::kAggregate,
                                 PolicyKind::kMeetingRoom};

  ClassroomResult lecture_sample;  // 35-student run, kept for the series plots
  ClassroomResult lab_sample;
  for (std::size_t s = 0; s < 2; ++s) {
    const std::size_t size = s == 0 ? 35 : 55;
    for (std::size_t p = 0; p < 3; ++p) {
      const auto result = run_classroom(config_for(size, policies[p]));
      table.add_row({std::to_string(size),
                     stats::fmt(result.offered_load * 100.0, 0) + "%",
                     result.policy, std::to_string(result.connection_drops),
                     s == 0 ? expected_35[p] : expected_55[p]});
      if (policies[p] == PolicyKind::kMeetingRoom) {
        (s == 0 ? lecture_sample : lab_sample) = std::move(result);
      }
    }
  }
  table.print(std::cout);

  std::cout << "\nsolid = 35-student lecture, dotted = 55-student laboratory\n";
  std::cout << "\n-- Figure 5.a: handoffs INTO the classroom at class start --\n";
  print_window(lecture_sample.into_room, 50, 64, "35-student lecture:");
  print_window(lab_sample.into_room, 50, 64, "55-student laboratory:");

  std::cout << "\n-- Figure 5.b: handoff activity just OUTSIDE at class start --\n";
  print_window(lecture_sample.outside_room, 50, 64, "35-student lecture:");
  print_window(lab_sample.outside_room, 50, 64, "55-student laboratory:");

  std::cout << "\n-- Figure 5.c: handoffs OUT of the classroom at class end --\n";
  print_window(lecture_sample.out_of_room, 108, 118, "35-student lecture:");
  print_window(lab_sample.out_of_room, 108, 118, "55-student laboratory:");

  std::cout << "\n-- Figure 5.d: total handoff activity outside at class end --\n";
  print_window(lecture_sample.outside_at_end, 108, 118, "35-student lecture:");
  print_window(lab_sample.outside_at_end, 108, 118, "55-student laboratory:");
  return 0;
}
