file(REMOVE_RECURSE
  "libimrm_trace.a"
)
